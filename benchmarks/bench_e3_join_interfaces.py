"""E3 — Query 2 / Task 2 / Figure 3: crowd join interfaces.

The paper warns that the naive implementation of a crowd join (one HIT per
pair of the cross product) has "extraordinary monetary cost", and the demo
lets the audience explore "how different join interfaces ... affect accuracy,
cost, and latency".  This benchmark reproduces that comparison: naive
pairwise HITs, pair batching, and the two-column drag-and-drop interface of
Figure 3, across two table sizes.
"""

from repro.experiments import QUERY2_SQL, build_celebrity_engine, print_table

INTERFACES = (
    ("naive 1 pair/HIT", dict(interface="pairs", pairs_per_hit=1)),
    ("batched 10 pairs/HIT", dict(interface="pairs", pairs_per_hit=10)),
    ("two-column 3x3 (Fig. 3)", dict(interface="columns", left_per_hit=3, right_per_hit=3)),
)


def run_join_interfaces():
    rows = []
    for size in (10, 16):
        for label, options in INTERFACES:
            run = build_celebrity_engine(
                n_celebrities=size, n_spotted=size, assignments=3, seed=301, **options
            )
            handle = run.engine.query(QUERY2_SQL)
            results = handle.wait()
            score = run.workload.score_results(results)
            rows.append(
                {
                    "table_size": size,
                    "interface": label,
                    "cross_product": size * size,
                    "hits": handle.stats.hits_posted,
                    "cost_usd": handle.total_cost,
                    "precision": score["precision"],
                    "recall": score["recall"],
                    "minutes": handle.stats.elapsed / 60,
                }
            )
    return rows


def test_e3_join_interfaces(once):
    rows = once(run_join_interfaces)
    print_table(
        "E3: join interface comparison (cost / accuracy / latency)",
        ["table_size", "interface", "cross_product", "hits", "cost_usd", "precision", "recall", "minutes"],
        rows,
    )
    for size in (10, 16):
        naive, batched, columns = [r for r in rows if r["table_size"] == size]
        # Naive pairwise posts one HIT per pair — the cost the paper warns about.
        assert naive["hits"] == size * size
        # Both batching schemes cut HITs (and dollars) by large factors.
        assert batched["hits"] <= naive["hits"] / 5
        assert columns["hits"] <= naive["hits"] / 5
        assert columns["cost_usd"] < naive["cost_usd"] / 5
        # Every interface still finds essentially all true matches.
        assert naive["recall"] >= 0.8
        assert columns["recall"] >= 0.8
        # The drag-and-drop interface is the most precise of the three.
        assert columns["precision"] >= max(naive["precision"], batched["precision"]) - 1e-9
