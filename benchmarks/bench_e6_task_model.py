"""E6 — the Task Model: "classifiers in place of humans".

"If Qurk is aware of a learning model for the task, it trains this model with
HIT results with the hope of eventually reducing monetary costs through
automation."  The benchmark runs a crowd filter over the same catalog for
several passes (cache disabled): pass 1 is answered entirely by the crowd and
trains the model; later passes are increasingly answered by the classifier,
and the dashboard's "classifier savings" figure grows.
"""

from repro.core.tasks.task_model import LearnedTaskModel
from repro.experiments import build_products_engine, print_table


def run_task_model_experiment():
    run = build_products_engine(
        n_products=100, assignments=3, filter_batch=5, enable_task_model=True, seed=601
    )
    engine = run.engine
    entry = engine.registry.require("isTargetColor")
    model = LearnedTaskModel(entry.spec, learning_rate=0.5, confidence_threshold=0.6)
    engine.task_models.register("isTargetColor", model)

    rows = []
    for pass_number in (1, 2, 3):
        handle = engine.query("SELECT name FROM products WHERE isTargetColor(name)")
        results = handle.wait()
        quality = run.workload.filter_accuracy(results, name_column="name")
        rows.append(
            {
                "pass": pass_number,
                "crowd_tasks": handle.stats.tasks_completed - handle.stats.model_answers,
                "model_tasks": handle.stats.model_answers,
                "cost_usd": handle.total_cost,
                "precision": quality["precision"],
                "recall": quality["recall"],
                "model_trusted": model.is_trusted,
                "cumulative_savings": model.stats.dollars_saved,
            }
        )
    return rows


def test_e6_task_model(once):
    rows = once(run_task_model_experiment)
    print_table(
        "E6: the learned Task Model replacing crowd workers over successive passes",
        ["pass", "crowd_tasks", "model_tasks", "cost_usd", "precision", "recall",
         "model_trusted", "cumulative_savings"],
        rows,
    )
    first, second, third = rows
    # Pass 1 is all crowd work and trains a trustworthy model.
    assert first["model_tasks"] == 0
    assert first["model_trusted"]
    # Later passes hand most tasks to the classifier and cost much less.
    assert second["model_tasks"] > second["crowd_tasks"]
    assert second["cost_usd"] < first["cost_usd"] * 0.25
    assert third["model_tasks"] > third["crowd_tasks"]
    assert third["cost_usd"] < first["cost_usd"] * 0.5
    # Accuracy stays high once the classifier answers.
    assert second["precision"] >= 0.85 and second["recall"] >= 0.85
    # Savings accumulate (the dashboard's classifier-savings series rises).
    assert third["cumulative_savings"] > second["cumulative_savings"] > 0
