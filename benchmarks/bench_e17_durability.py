"""E17 — durability overhead and recovery speed.

Three questions about the event-sourced WAL + snapshot layer:

1. **What does journaling cost?**  E15's control-plane workload (concurrent
   crowd filter queries on one marketplace) is run twice from the same seed —
   once plain, once with durability enabled — under each fsync policy.  The
   engine's hot loops are untouched by the WAL (journal writes happen on
   externally-visible crowd events, not per scheduler pass), so the interval
   policy's overhead should stay in the low single digits; ``always`` pays an
   fsync per record and bounds the worst case.

2. **How fast is recovery, and how does it scale?**  Crash a durable run
   after N queries and time :meth:`QurkEngine.recover`.  Replay resubmits the
   logged queries against a fresh same-seed engine, so recovery time tracks
   the replayed work — i.e. it is linear in log length, which is exactly why
   snapshots exist.

3. **What do snapshots buy?**  The same workload with periodic checkpoints:
   each snapshot truncates the WAL, so recovery replays only the tail.  The
   sweep reports recovery time and replayed-record count per snapshot
   interval, with the no-snapshot run as the reference point.

Results feed ``BENCH_SUMMARY.json`` via ``run_all.py`` (e17 is in the CI
``--quick`` subset) and the ROADMAP durability item.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.engine import QurkEngine
from repro.experiments import build_products_engine, print_table
from repro.storage.durability import DurabilityConfig

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"

#: E15's workload shape: one crowd filter task per product per query.
N_QUERIES = 64
TASKS_PER_QUERY = 40
SEED = 1501

#: Acceptance bar from the durability PR: journaling under the default
#: ``interval`` fsync policy may not cost more than 15% wall time on e15's
#: control-plane workload.
MAX_INTERVAL_OVERHEAD_PCT = 15.0


def _spec_payload(tasks_per_query: int) -> dict:
    return {
        "factory": "repro.experiments.harness:build_products_engine",
        "kwargs": {"n_products": tasks_per_query, "filter_batch": 1, "seed": SEED},
    }


def _run_workload(
    n_queries: int,
    tasks_per_query: int,
    *,
    directory: Path | None = None,
    fsync: str = "interval",
    snapshot_every: int | None = None,
    batches: int = 1,
) -> tuple[QurkEngine, float]:
    """Drive e15's workload; optionally durable.  Returns (engine, wall)."""
    engine = build_products_engine(
        n_products=tasks_per_query, filter_batch=1, seed=SEED
    ).engine
    if directory is not None:
        engine.enable_durability(
            DurabilityConfig(
                directory=str(directory),
                fsync=fsync,
                snapshot_every=snapshot_every,
            ),
            spec=_spec_payload(tasks_per_query),
        )
    per_batch = max(1, n_queries // batches)
    started = time.perf_counter()
    submitted = 0
    while submitted < n_queries:
        count = min(per_batch, n_queries - submitted)
        handles = [engine.query(FILTER_SQL) for _ in range(count)]
        submitted += count
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        if not all(handle.is_complete for handle in handles):
            raise AssertionError("not every query completed")
    wall = time.perf_counter() - started
    return engine, wall


def run_wal_overhead(
    n_queries: int = N_QUERIES,
    tasks_per_query: int = TASKS_PER_QUERY,
    repeats: int = 3,
) -> list[dict]:
    """WAL-on vs WAL-off wall time per fsync policy, same seed and workload.

    Each mode runs ``repeats`` times in interleaved round-robin order, and
    overhead is the **median across cycles of the same-cycle paired ratio**
    (mode wall / that cycle's baseline wall).  Host timing noise on shared
    VMs dwarfs the journaling cost itself, but it drifts slowly — pairing
    each durable run with the baseline run measured moments before cancels
    the drift, and the median discards the cycles a scheduler hiccup hits.
    The engine is deterministic, so every repetition does identical work.
    """
    modes: list[str | None] = [None, "off", "interval", "always"]
    walls: dict[str | None, list[float]] = {mode: [] for mode in modes}
    records: dict[str | None, int] = {None: 0}
    for _ in range(repeats):
        for fsync in modes:
            if fsync is None:
                _, wall = _run_workload(n_queries, tasks_per_query)
            else:
                directory = Path(tempfile.mkdtemp(prefix=f"e17-{fsync}-"))
                try:
                    engine, wall = _run_workload(
                        n_queries, tasks_per_query, directory=directory, fsync=fsync
                    )
                    records[fsync] = engine.journal.wal.last_lsn
                    engine.journal.close()
                finally:
                    shutil.rmtree(directory, ignore_errors=True)
            walls[fsync].append(wall)
    rows = []
    for fsync in modes:
        wall = min(walls[fsync])
        ratios = sorted(
            mode_wall / base_wall
            for mode_wall, base_wall in zip(walls[fsync], walls[None])
        )
        median_ratio = ratios[len(ratios) // 2]
        rows.append(
            {
                "mode": "wal off (baseline)" if fsync is None else f"wal on, fsync={fsync}",
                "wall_seconds": round(wall, 3),
                "queries_per_sec": round(n_queries / wall, 2),
                "overhead_pct": round((median_ratio - 1) * 100, 1),
                "wal_records": records[fsync],
            }
        )
    return rows


def run_recovery_time(
    query_counts: tuple[int, ...] = (8, 32, 128), tasks_per_query: int = 10
) -> list[dict]:
    """Recovery wall time vs log length (no snapshots: full replay)."""
    rows = []
    for n_queries in query_counts:
        directory = Path(tempfile.mkdtemp(prefix="e17-recovery-"))
        try:
            engine, run_wall = _run_workload(
                n_queries, tasks_per_query, directory=directory, fsync="interval"
            )
            engine.journal.wal.simulate_crash()
            result = QurkEngine.recover(directory)
            result.engine.journal.close()
            rows.append(
                {
                    "queries_logged": n_queries,
                    "wal_records": result.wal_records,
                    "run_seconds": round(run_wall, 3),
                    "recovery_seconds": round(result.recovery_seconds, 3),
                    "recovered_queries": len(result.engine.queries)
                    + len(result.outcomes),
                    "replayed_queries": len(result.replayed_query_ids),
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return rows


def run_snapshot_interval_sweep(
    n_queries: int = 64,
    tasks_per_query: int = 10,
    intervals: tuple[int | None, ...] = (None, 500, 100),
    batches: int = 8,
) -> list[dict]:
    """Checkpoint cadence vs recovery cost on a batched (drain-y) workload.

    Submissions arrive in ``batches`` waves with a drain between waves — the
    quiescent points where auto-checkpoints can fire.  Denser snapshots mean
    a shorter surviving WAL and fewer replayed records at recovery.
    """
    rows = []
    for snapshot_every in intervals:
        directory = Path(tempfile.mkdtemp(prefix="e17-snap-"))
        try:
            engine, run_wall = _run_workload(
                n_queries,
                tasks_per_query,
                directory=directory,
                fsync="interval",
                snapshot_every=snapshot_every,
                batches=batches,
            )
            snapshots = len(list(directory.glob("snapshot-*.json")))
            engine.journal.wal.simulate_crash()
            result = QurkEngine.recover(directory)
            result.engine.journal.close()
            rows.append(
                {
                    "snapshot_every": snapshot_every or "off",
                    "run_seconds": round(run_wall, 3),
                    "snapshots_taken": snapshots,
                    "surviving_wal_records": result.wal_records,
                    "replayed_queries": len(result.replayed_query_ids),
                    "recovery_seconds": round(result.recovery_seconds, 3),
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return rows


# -- pytest entry points (quick sizes, with the CI regression gates) ---------

#: Wall-clock ceiling for the whole quick benchmark; it runs in a few
#: seconds on a laptop, so tripping this means durability code grew a hot
#: loop (e.g. journaling per scheduler pass instead of per crowd event).
QUICK_GATE_SECONDS = 60.0

#: The quick run halves e15's sizes, so allow more timer noise than the
#: full-size acceptance bar before failing CI.
QUICK_MAX_INTERVAL_OVERHEAD_PCT = 25.0


def test_e17_durability_quick(once):
    def quick() -> dict:
        return {
            "overhead": run_wal_overhead(n_queries=32, tasks_per_query=20),
            "recovery": run_recovery_time(query_counts=(8, 32)),
            "snapshots": run_snapshot_interval_sweep(
                n_queries=32, intervals=(None, 100), batches=4
            ),
        }

    results = once(quick)
    print_table(
        "E17: WAL overhead on e15's workload (quick: 32 queries, 20 tasks each)",
        ["mode", "wall_seconds", "queries_per_sec", "overhead_pct", "wal_records"],
        results["overhead"],
    )
    print_table(
        "E17: recovery time vs log length",
        [
            "queries_logged",
            "wal_records",
            "run_seconds",
            "recovery_seconds",
            "replayed_queries",
        ],
        results["recovery"],
    )
    print_table(
        "E17: snapshot interval sweep",
        [
            "snapshot_every",
            "snapshots_taken",
            "surviving_wal_records",
            "replayed_queries",
            "recovery_seconds",
        ],
        results["snapshots"],
    )

    overhead = {row["mode"]: row for row in results["overhead"]}
    interval = overhead["wal on, fsync=interval"]
    assert interval["wal_records"] > 0
    assert interval["overhead_pct"] <= QUICK_MAX_INTERVAL_OVERHEAD_PCT, (
        f"interval-fsync WAL overhead {interval['overhead_pct']}% exceeds "
        f"{QUICK_MAX_INTERVAL_OVERHEAD_PCT}%"
    )

    # Recovery replays everything when there are no snapshots...
    for row in results["recovery"]:
        assert row["replayed_queries"] == row["queries_logged"]
    # ...and snapshots shrink both the surviving log and the replayed tail.
    no_snap, with_snap = results["snapshots"]
    assert with_snap["snapshots_taken"] > 0
    assert no_snap["snapshots_taken"] == 0
    assert with_snap["surviving_wal_records"] < no_snap["surviving_wal_records"]
    assert with_snap["replayed_queries"] < no_snap["replayed_queries"]

    total = (
        sum(row["wall_seconds"] for row in results["overhead"])
        + sum(row["run_seconds"] + row["recovery_seconds"] for row in results["recovery"])
        + sum(row["run_seconds"] + row["recovery_seconds"] for row in results["snapshots"])
    )
    assert total < QUICK_GATE_SECONDS
