"""E2 — Query 1 / Task 1: schema extension and the Task Cache.

"Observe that the findCEO function is used twice ... the findCEO function
would only be run on MTurk once per company.  We cache a given result to be
used in several places (even possibly in different queries)."

The benchmark runs Query 1 over increasing table sizes, then re-runs it on
the same engine with the cache enabled and disabled, reporting what the
dashboard's "cache savings" panel would show.
"""

from repro.experiments import QUERY1_SQL, build_companies_engine, print_table


def run_caching_experiment():
    rows = []
    for n_companies in (25, 100):
        for cache_enabled in (True, False):
            run = build_companies_engine(
                n_companies=n_companies, assignments=3, enable_cache=cache_enabled, seed=201
            )
            first = run.engine.query(QUERY1_SQL)
            first.wait()
            second = run.engine.query(
                "SELECT companyName, findCEO(companyName).CEO FROM companies"
            )
            second.wait()
            rows.append(
                {
                    "companies": n_companies,
                    "cache": "on" if cache_enabled else "off",
                    "first_cost": first.total_cost,
                    "rerun_cost": second.total_cost,
                    "rerun_cache_hits": second.stats.cache_hits,
                    "dollars_saved": second.stats.dollars_saved_cache,
                }
            )
    return rows


def test_e2_query1_caching(once):
    rows = once(run_caching_experiment)
    print_table(
        "E2: Query 1 with and without the Task Cache",
        ["companies", "cache", "first_cost", "rerun_cost", "rerun_cache_hits", "dollars_saved"],
        rows,
    )
    by_key = {(r["companies"], r["cache"]): r for r in rows}
    for n_companies in (25, 100):
        cached = by_key[(n_companies, "on")]
        uncached = by_key[(n_companies, "off")]
        # With the cache, the re-run is free and every lookup is a hit.
        assert cached["rerun_cost"] == 0.0
        assert cached["rerun_cache_hits"] == n_companies
        # Without the cache, the re-run pays the crowd again.
        assert uncached["rerun_cost"] > 0
        # Cost scales with table size (first run, cache irrelevant).
        assert by_key[(100, "on")]["first_cost"] > by_key[(25, "on")]["first_cost"] * 2
