"""E14 — worker quality control: adaptive redundancy vs a fixed 5-vote blanket.

Section 2 motivates built-in redundancy because "individual turker results
are often inaccurate" — but a blanket redundancy pays the worst-case price
for every task.  This experiment runs the colour filter on a spammer-heavy
marketplace three ways:

* ``fixed-5`` — the seed behaviour: 5 assignments per task, plain majority;
* ``weighted`` — gold probes + reputation-weighted voting, still 5 votes;
* ``adaptive`` — the full quality-control stack: gold probes, weighted
  voting, and wave-based early stopping (3 votes first, 2 more only when
  the weighted confidence stays low).

The headline claim: adaptive redundancy matches or beats fixed-5 accuracy
with at least 25% fewer paid assignments.
"""

from repro.crowd import PopulationMix, QualityConfig
from repro.experiments import build_products_engine, print_table

SPAMMY = PopulationMix(diligent=0.30, noisy=0.25, lazy=0.10, spammer=0.35)
SEED = 602

WEIGHTED_ONLY = QualityConfig(
    gold_frequency=0.6, confidence_threshold=0.7, adaptive_redundancy=False, seed=71
)
FULL_ADAPTIVE = QualityConfig(gold_frequency=0.6, confidence_threshold=0.7, seed=71)


def run_quality_experiment():
    rows = []
    for label, quality in (
        ("fixed-5", None),
        ("weighted", WEIGHTED_ONLY),
        ("adaptive", FULL_ADAPTIVE),
    ):
        run = build_products_engine(
            n_products=40,
            assignments=5,
            filter_batch=4,
            population_mix=SPAMMY,
            seed=SEED,
            quality=quality,
        )
        handle = run.engine.query("SELECT name FROM products WHERE isTargetColor(name)")
        results = handle.wait()
        accuracy = run.workload.filter_accuracy(results, name_column="name")
        spec_stats = run.engine.statistics.spec("isTargetColor")
        manager_stats = run.engine.task_manager.stats
        reputation = run.engine.reputation
        precision, recall = accuracy["precision"], accuracy["recall"]
        rows.append(
            {
                "mode": label,
                "precision": precision,
                "recall": recall,
                "f1": 2 * precision * recall / (precision + recall) if precision + recall else 0.0,
                "assignments": spec_stats.assignments_received,
                "hits": spec_stats.hits_posted,
                "cost_usd": handle.total_cost,
                "early_stopped": manager_stats.early_stopped_tasks,
                "flagged_workers": len(reputation.flagged_workers()) if reputation else 0,
            }
        )
    return rows


def test_e14_quality(once):
    rows = once(run_quality_experiment)
    print_table(
        "E14: quality control on a 35%-spammer marketplace (target redundancy 5)",
        [
            "mode",
            "precision",
            "recall",
            "f1",
            "assignments",
            "hits",
            "cost_usd",
            "early_stopped",
            "flagged_workers",
        ],
        rows,
    )
    by_mode = {row["mode"]: row for row in rows}
    fixed, weighted, adaptive = by_mode["fixed-5"], by_mode["weighted"], by_mode["adaptive"]

    # The headline: adaptive redundancy matches-or-beats fixed-5 accuracy
    # while buying at least 25% fewer assignments (and fewer dollars).
    assert adaptive["f1"] >= fixed["f1"]
    assert adaptive["assignments"] <= 0.75 * fixed["assignments"]
    assert adaptive["cost_usd"] < fixed["cost_usd"]

    # Reputation-weighted voting alone (same 5 votes) must not cost more and
    # must not lose accuracy — down-weighting detected spammers only helps.
    assert weighted["f1"] >= fixed["f1"]
    assert weighted["assignments"] == fixed["assignments"]

    # The machinery actually engaged: tasks stopped early and gold probes
    # flagged spammers.
    assert adaptive["early_stopped"] > 0
    assert adaptive["flagged_workers"] > 0
