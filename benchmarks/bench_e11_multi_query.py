"""E11 — engine-level multi-query scheduling with cross-query HIT batching.

The Task Manager "maintains a global queue of tasks that have been enqueued
by all operators" — across queries.  This benchmark runs the same crowd
filter as 1 vs. 8 concurrent queries on one marketplace and reports the two
scheduler wins: shared HITs (fewer HITs posted than N independent runs would
need, because one query's partial batch is topped up with another query's
tasks) and concurrency (simulated makespan far below the serial sum).
"""

from repro.experiments import build_products_engine, print_table

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
CONCURRENCY = (1, 8)


def run_multi_query_experiment():
    rows = []
    for n_queries in CONCURRENCY:
        run = build_products_engine(n_products=12, filter_batch=10, seed=1101)
        handles = [run.engine.query(FILTER_SQL) for _ in range(n_queries)]
        for handle in handles:
            handle.wait()
        stats = run.engine.task_manager.stats
        rows.append(
            {
                "queries": n_queries,
                "hits": stats.hits_posted,
                "shared_hits": stats.cross_query_hits,
                "hits_per_query": stats.hits_posted / n_queries,
                "makespan_min": run.engine.clock.now / 60,
                "cost_usd": run.engine.total_crowd_cost,
                "clock_advances": run.engine.scheduler.metrics.clock_advances,
            }
        )
    return rows


def test_e11_multi_query(once):
    rows = once(run_multi_query_experiment)
    print_table(
        "E11: 1 vs 8 concurrent queries on one marketplace (crowd filter, 12 products)",
        ["queries", "hits", "shared_hits", "hits_per_query", "makespan_min", "cost_usd", "clock_advances"],
        rows,
    )
    solo, eight = rows
    assert all(r["hits"] > 0 for r in rows)
    # Cross-query batching: 8 concurrent queries need strictly fewer HITs
    # than 8 isolated runs, and some posted HITs mix several queries' tasks.
    assert eight["hits"] < 8 * solo["hits"]
    assert eight["shared_hits"] >= 1
    # Concurrency: the shared clock overlaps the queries' crowd latency, so
    # the 8-query makespan is far below the serial sum of 8 solo runs.
    assert eight["makespan_min"] < 4 * solo["makespan_min"]
