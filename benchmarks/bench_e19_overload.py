"""E19 — overload protection: goodput under a 4x burst against a sick market.

A provisioned capacity of C concurrent queries receives a burst of 4C
point-lookup queries while the marketplace is degraded: pickups slow with
every open HIT (congestion), 30% of accepted assignments are abandoned, and
HITs expire after 600 simulated seconds.  Two engines face the identical
burst:

* **unprotected** — today's defaults: unbounded admission queue, no
  deadlines, no circuit breaker.  Every query eventually completes, but the
  tail finishes hours past any useful deadline and every expiry is re-posted
  into the congested market.
* **protected** — the full overload stack: a bounded admission queue with
  priority shedding, per-query deadlines with ``degradation="partial"``
  (the deadline returns whatever rows have landed), budget/deadline pressure
  that cuts redundancy on struggling queries, and a marketplace circuit
  breaker that stops re-posting while the market is dead.

The headline metric is **goodput** — queries served within the deadline
(full completions plus degraded queries that returned rows) per 1,000
simulated seconds — alongside total crowd spend.  The CI gate requires the
protected engine to deliver at least 2x the unprotected goodput while
spending strictly less.

Results feed ``BENCH_SUMMARY.json`` via ``run_all.py`` (e19 is in the CI
``--quick`` subset).
"""

from __future__ import annotations

import time

import pytest

from repro.core.exec.context import QueryConfig
from repro.crowd.breaker import BreakerConfig
from repro.crowd.faults import FaultProfile
from repro.errors import EngineOverloadedError
from repro.experiments import build_companies_engine, print_table

SEED = 1901
FAULT_SEED = 19
N_COMPANIES = 40
#: Every query looks up this many companies (so a deadline can cut a query
#: mid-flight and leave a meaningful partial prefix).
COMPANIES_PER_QUERY = 3

#: Defaults: capacity 8, burst 32 (4x overload), deadline 2,400 simulated s.
CAPACITY = 8
N_QUERIES = 32
QUEUE_LIMIT = 16
DEADLINE = 2400.0

#: The degraded marketplace: pickups slow 2x flat plus 10% per open HIT,
#: 30% of accepted assignments are abandoned, HITs die after 600s.
FAULTS = dict(
    seed=FAULT_SEED,
    abandonment_rate=0.3,
    pickup_slowdown=2.0,
    hit_lifetime=600.0,
    congestion_per_open_hit=0.1,
)

BREAKER = dict(failure_threshold=6, cooldown=300.0, seed=FAULT_SEED)


def _query_sql(names: list[str]) -> str:
    where = " OR ".join(f"companyName = '{name}'" for name in names)
    return (
        "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
        f"FROM companies WHERE {where}"
    )


def _run_burst(
    *,
    protected: bool,
    n_queries: int,
    capacity: int,
    queue_limit: int,
    deadline: float,
) -> dict:
    engine_kwargs: dict = {"max_concurrent_queries": capacity}
    if protected:
        engine_kwargs.update(
            admission_queue_limit=queue_limit,
            overload_policy="shed",
            circuit_breaker=BreakerConfig(**BREAKER),
        )
    run = build_companies_engine(
        n_companies=N_COMPANIES,
        seed=SEED,
        enable_cache=False,
        fault_profile=FaultProfile(**FAULTS),
        engine_kwargs=engine_kwargs,
    )
    engine = run.engine
    names = [record.name for record in run.workload.records]
    config = (
        QueryConfig(deadline=deadline, degradation="partial", shed_under_pressure=True)
        if protected
        else None
    )
    handles = []
    rejected = 0
    started = time.perf_counter()
    for i in range(n_queries):
        picks = [
            names[(COMPANIES_PER_QUERY * i + j) % len(names)]
            for j in range(COMPANIES_PER_QUERY)
        ]
        # Every 4th query is high-priority: under "shed" those survive a
        # full queue at the expense of the background traffic.
        priority = 2.0 if i % 4 == 0 else 1.0
        try:
            handles.append(
                engine.query(_query_sql(picks), config=config, priority=priority)
            )
        except EngineOverloadedError:
            rejected += 1
    engine.scheduler.drain()
    engine.clock.run_until_idle()
    wall = time.perf_counter() - started

    met = partial = 0
    for handle in handles:
        completions = [
            event
            for event in engine.scheduler.events_for(handle.query_id)
            if event.event == "completed"
        ]
        if (
            completions
            and handle.status.value == "completed"
            and completions[-1].time <= deadline
        ):
            met += 1
        elif handle.status.value == "degraded" and len(handle) > 0:
            partial += 1
    served = met + partial
    metrics = engine.scheduler.metrics
    simulated = max(engine.clock.now, 1.0)
    return {
        "mode": "protected" if protected else "unprotected",
        "queries": n_queries,
        "served": served,
        "full_within_deadline": met,
        "partial_served": partial,
        "simulated_seconds": round(simulated, 1),
        "goodput_per_ks": round(served / simulated * 1000.0, 3),
        "total_cost": round(engine.total_crowd_cost, 2),
        "rejected": rejected + metrics.queries_rejected,
        "shed": metrics.queries_shed,
        "degraded": metrics.queries_degraded,
        "deadline_misses": metrics.deadline_misses,
        "pressured": metrics.queries_pressured,
        "breaker_trips": engine.breaker.stats.trips if engine.breaker else 0,
        "posts_blocked": (
            engine.breaker.stats.posts_blocked if engine.breaker else 0
        ),
        "tasks_requeued": engine.task_manager.stats.tasks_requeued,
        "wall_seconds": round(wall, 3),
    }


def run_overload_burst(
    n_queries: int = N_QUERIES,
    capacity: int = CAPACITY,
    queue_limit: int = QUEUE_LIMIT,
    deadline: float = DEADLINE,
) -> list[dict]:
    """The same 4x burst, unprotected vs fully protected, plus the delta."""
    unprotected = _run_burst(
        protected=False,
        n_queries=n_queries,
        capacity=capacity,
        queue_limit=queue_limit,
        deadline=deadline,
    )
    protected = _run_burst(
        protected=True,
        n_queries=n_queries,
        capacity=capacity,
        queue_limit=queue_limit,
        deadline=deadline,
    )
    ratio = (
        protected["goodput_per_ks"] / unprotected["goodput_per_ks"]
        if unprotected["goodput_per_ks"]
        else float("inf")
    )
    delta = {
        "mode": "protected vs unprotected",
        "queries": n_queries,
        "served": protected["served"] - unprotected["served"],
        "full_within_deadline": protected["full_within_deadline"]
        - unprotected["full_within_deadline"],
        "partial_served": protected["partial_served"],
        "simulated_seconds": round(
            unprotected["simulated_seconds"] - protected["simulated_seconds"], 1
        ),
        "goodput_per_ks": round(ratio, 2),
        "total_cost": round(
            unprotected["total_cost"] - protected["total_cost"], 2
        ),
        "rejected": protected["rejected"],
        "shed": protected["shed"],
        "degraded": protected["degraded"],
        "deadline_misses": protected["deadline_misses"],
        "pressured": protected["pressured"],
        "breaker_trips": protected["breaker_trips"],
        "posts_blocked": protected["posts_blocked"],
        "tasks_requeued": unprotected["tasks_requeued"]
        - protected["tasks_requeued"],
        "wall_seconds": round(
            unprotected["wall_seconds"] + protected["wall_seconds"], 3
        ),
    }
    return [unprotected, protected, delta]


# -- pytest entry point (quick sizes, with the CI regression gates) ----------

#: Acceptance bar: protection must at least double goodput on this scenario.
MIN_GOODPUT_RATIO = 2.0

COLUMNS = [
    "mode",
    "queries",
    "served",
    "full_within_deadline",
    "partial_served",
    "simulated_seconds",
    "goodput_per_ks",
    "total_cost",
    "rejected",
    "shed",
    "degraded",
    "pressured",
    "breaker_trips",
    "wall_seconds",
]


@pytest.mark.overload
def test_e19_overload_quick(once):
    rows = once(
        run_overload_burst,
        n_queries=16,
        capacity=4,
        queue_limit=8,
        deadline=2400.0,
    )
    print_table(
        "E19: overload burst, protected vs unprotected "
        "(quick: 16 queries on capacity 4)",
        COLUMNS,
        rows,
    )
    unprotected, protected, _ = rows
    assert unprotected["goodput_per_ks"] > 0, "scenario too harsh: nothing served"
    ratio = protected["goodput_per_ks"] / unprotected["goodput_per_ks"]
    assert ratio >= MIN_GOODPUT_RATIO, (
        f"protection delivered only {ratio:.2f}x goodput "
        f"(bar: {MIN_GOODPUT_RATIO:.1f}x)"
    )
    # Protection must be cheaper, not just faster: shedding, degradation and
    # the breaker all cut crowd spend.
    assert protected["total_cost"] < unprotected["total_cost"]
    # Every mechanism must actually fire in this scenario.
    assert protected["rejected"] + protected["shed"] > 0
    assert protected["degraded"] > 0
    assert protected["pressured"] > 0
    assert protected["breaker_trips"] > 0
