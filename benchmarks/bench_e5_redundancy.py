"""E5 — Section 2: redundancy vs accuracy vs cost.

"Operator implementations must have redundancy built-in, as individual turker
results are often inaccurate."  The benchmark sweeps the number of
assignments per HIT for a crowd filter under two marketplace mixes (a mostly
reliable population and one with many spammers) and reports the accuracy the
majority vote achieves and what it costs.
"""

from repro.crowd import PopulationMix
from repro.experiments import build_products_engine, print_table

RELIABLE = PopulationMix(diligent=0.60, noisy=0.30, lazy=0.08, spammer=0.02)
SPAMMY = PopulationMix(diligent=0.35, noisy=0.30, lazy=0.10, spammer=0.25)


def run_redundancy_experiment():
    rows = []
    for mix_label, mix in (("2% spammers", RELIABLE), ("25% spammers", SPAMMY)):
        for assignments in (1, 3, 5):
            run = build_products_engine(
                n_products=40, assignments=assignments, filter_batch=4,
                population_mix=mix, seed=501,
            )
            handle = run.engine.query("SELECT name FROM products WHERE isTargetColor(name)")
            results = handle.wait()
            quality = run.workload.filter_accuracy(results, name_column="name")
            rows.append(
                {
                    "population": mix_label,
                    "assignments": assignments,
                    "precision": quality["precision"],
                    "recall": quality["recall"],
                    "cost_usd": handle.total_cost,
                    "hits": handle.stats.hits_posted,
                }
            )
    return rows


def test_e5_redundancy(once):
    rows = once(run_redundancy_experiment)
    print_table(
        "E5: assignments per HIT vs filter accuracy and cost",
        ["population", "assignments", "precision", "recall", "cost_usd", "hits"],
        rows,
    )
    by_key = {(r["population"], r["assignments"]): r for r in rows}

    def f1(row):
        p, r = row["precision"], row["recall"]
        return 2 * p * r / (p + r) if p + r else 0.0

    for population in ("2% spammers", "25% spammers"):
        # Cost grows linearly with redundancy.
        assert by_key[(population, 5)]["cost_usd"] > by_key[(population, 1)]["cost_usd"] * 3
        # Majority voting with 5 workers beats a single worker's answer.
        assert f1(by_key[(population, 5)]) >= f1(by_key[(population, 1)])
        assert by_key[(population, 5)]["precision"] >= by_key[(population, 1)]["precision"]
    # A spammier marketplace needs the redundancy more: at every redundancy
    # level its accuracy trails the mostly-reliable population.
    for assignments in (1, 3, 5):
        assert (
            f1(by_key[("25% spammers", assignments)])
            <= f1(by_key[("2% spammers", assignments)]) + 0.02
        )
