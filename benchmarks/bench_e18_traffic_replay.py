"""E18 — traffic amortization: replaying a skewed query trace against the cache.

The paper's Task Cache reuses an answer "even possibly in different queries"
(Section 3).  This experiment measures what that buys under realistic
traffic: a zipfian-overlap trace of point queries (many requesters keep
asking about the same popular companies) replayed cold (cache off) and warm
(cache on), recording the dollars and HITs the answer tier avoids.

Two scales:

1. **Single engine** — a 10k-query trace over the companies workload,
   zipfian s=1.1 across 50 distinct queries.  Warm vs cold total crowd
   spend and HITs posted; the savings fraction is the headline number.

2. **Cluster** — the same trace split round-robin across N shards.  Without
   sharing, each shard re-buys answers its neighbours already have; with the
   coordinator's answer directory (``share_answers=True``) a task answered
   on shard 0 is a cache hit on shard 1.  The run reports cross-shard hits
   and the spend delta.

Results feed ``BENCH_SUMMARY.json`` via ``run_all.py`` (e18 is in the CI
``--quick`` subset, gated at >= 50% HIT-spend saved warm vs cold).
"""

from __future__ import annotations

import bisect
import random
import time

from repro.experiments import build_companies_engine, print_table

SEED = 1801
N_QUERIES = 10_000
N_COMPANIES = 50
ZIPF_S = 1.1

#: Submission happens in waves with a drain between them — matching how the
#: coordinator syncs its answer directory at drain boundaries.
ROUNDS = 8

QUERY_TEMPLATE = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies WHERE companyName = '{company}'"
)


def _zipf_trace(n_queries: int, n_companies: int, s: float, seed: int) -> list[int]:
    """Company indices drawn from a zipf(s) popularity distribution.

    Popularity ranks are shuffled onto company indices so 'popular' is not
    correlated with generation order, and sampling is inverse-CDF on a
    seeded RNG — the trace is a pure function of its arguments.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank**s) for rank in range(1, n_companies + 1)]
    total = sum(weights)
    cumulative: list[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    order = list(range(n_companies))
    rng.shuffle(order)
    return [
        order[min(bisect.bisect_left(cumulative, rng.random()), n_companies - 1)]
        for _ in range(n_queries)
    ]


def _trace_sql(trace: list[int], records) -> list[str]:
    return [QUERY_TEMPLATE.format(company=records[index].name) for index in trace]


def _replay_single(
    queries: list[str],
    *,
    n_companies: int,
    enable_cache: bool,
    rounds: int,
) -> dict:
    run = build_companies_engine(
        n_companies=n_companies, enable_cache=enable_cache, seed=SEED
    )
    engine = run.engine
    per_round = max(1, len(queries) // rounds)
    started = time.perf_counter()
    submitted = 0
    while submitted < len(queries):
        chunk = queries[submitted : submitted + per_round]
        handles = [engine.query(sql) for sql in chunk]
        submitted += len(chunk)
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        if not all(handle.is_complete for handle in handles):
            raise AssertionError("not every query completed")
    wall = time.perf_counter() - started
    manager = engine.task_manager.stats
    return {
        "total_cost": engine.total_crowd_cost,
        "hits_posted": manager.hits_posted,
        "cache_hits": manager.cache_answers,
        "dollars_saved": engine.task_cache.stats.dollars_saved,
        "wall_seconds": wall,
    }


def run_traffic_replay(
    n_queries: int = N_QUERIES,
    n_companies: int = N_COMPANIES,
    zipf_s: float = ZIPF_S,
    rounds: int = ROUNDS,
) -> list[dict]:
    """Cold (cache off) vs warm (cache on) replay of the same trace."""
    trace = _zipf_trace(n_queries, n_companies, zipf_s, SEED)
    workload_probe = build_companies_engine(n_companies=n_companies, seed=SEED)
    queries = _trace_sql(trace, workload_probe.workload.records)
    distinct = len(set(trace))
    rows = []
    cold = warm = None
    for mode, enable_cache in (("cold (cache off)", False), ("warm (cache on)", True)):
        result = _replay_single(
            queries, n_companies=n_companies, enable_cache=enable_cache, rounds=rounds
        )
        if enable_cache:
            warm = result
        else:
            cold = result
        rows.append(
            {
                "mode": mode,
                "queries": n_queries,
                "distinct_queries": distinct,
                "hits_posted": result["hits_posted"],
                "total_cost": round(result["total_cost"], 2),
                "cache_hits": result["cache_hits"],
                "dollars_saved": round(result["dollars_saved"], 2),
                "wall_seconds": round(result["wall_seconds"], 3),
            }
        )
    saved_pct = (1 - warm["total_cost"] / cold["total_cost"]) * 100 if cold["total_cost"] else 0.0
    rows.append(
        {
            "mode": "saved warm vs cold",
            "queries": n_queries,
            "distinct_queries": distinct,
            "hits_posted": cold["hits_posted"] - warm["hits_posted"],
            "total_cost": round(cold["total_cost"] - warm["total_cost"], 2),
            "cache_hits": warm["cache_hits"],
            "dollars_saved": round(saved_pct, 1),
            "wall_seconds": round(cold["wall_seconds"] - warm["wall_seconds"], 3),
        }
    )
    return rows


def _replay_cluster(
    queries: list[str],
    *,
    n_companies: int,
    n_shards: int,
    rounds: int,
    share_answers: bool,
) -> dict:
    from repro.cluster import EngineSpec, ShardCoordinator

    spec = EngineSpec(
        factory="repro.experiments.harness:build_companies_engine",
        kwargs={"n_companies": n_companies, "seed": SEED},
    )
    per_round = max(1, len(queries) // rounds)
    started = time.perf_counter()
    with ShardCoordinator(spec, n_shards=n_shards, share_answers=share_answers) as cluster:
        submitted = 0
        while submitted < len(queries):
            chunk = queries[submitted : submitted + per_round]
            cluster.submit_many([{"sql": sql} for sql in chunk])
            submitted += len(chunk)
            cluster.drain()
        stats = cluster.stats()
    wall = time.perf_counter() - started
    return {
        "total_cost": stats.totals["total_cost"],
        "hits_posted": stats.totals["hits_posted"],
        "cache_hits": stats.totals["cache_answers"],
        "cross_shard_hits": stats.totals["cross_shard_hits"],
        "entries_imported": stats.totals["cache_entries_imported"],
        "directory_entries": stats.answer_directory_entries,
        "wall_seconds": wall,
    }


def run_cross_shard_sharing(
    n_queries: int = 2_000,
    n_companies: int = N_COMPANIES,
    zipf_s: float = ZIPF_S,
    n_shards: int = 2,
    rounds: int = 4,
) -> list[dict]:
    """The same sharded trace with and without the coordinator directory."""
    trace = _zipf_trace(n_queries, n_companies, zipf_s, SEED + 1)
    workload_probe = build_companies_engine(n_companies=n_companies, seed=SEED)
    queries = _trace_sql(trace, workload_probe.workload.records)
    rows = []
    for label, share in (("isolated shards", False), ("shared directory", True)):
        result = _replay_cluster(
            queries,
            n_companies=n_companies,
            n_shards=n_shards,
            rounds=rounds,
            share_answers=share,
        )
        rows.append(
            {
                "mode": label,
                "shards": n_shards,
                "queries": n_queries,
                "hits_posted": result["hits_posted"],
                "total_cost": round(result["total_cost"], 2),
                "cache_hits": result["cache_hits"],
                "cross_shard_hits": result["cross_shard_hits"],
                "entries_imported": result["entries_imported"],
                "directory_entries": result["directory_entries"],
                "wall_seconds": round(result["wall_seconds"], 3),
            }
        )
    return rows


# -- pytest entry points (quick sizes, with the CI regression gates) ---------

#: The quick replay is a few hundred queries; minutes would mean the cache
#: hot path or the coordinator sync grew something pathological.
QUICK_GATE_SECONDS = 120.0

#: Acceptance bar: at zipfian s=1.1 the warm run must avoid at least half of
#: the cold run's HIT spend.
MIN_SAVED_FRACTION = 0.5


def test_e18_traffic_replay_quick(once):
    def quick() -> dict:
        return {
            "replay": run_traffic_replay(n_queries=600, n_companies=30, rounds=4),
            "sharing": run_cross_shard_sharing(
                n_queries=240, n_companies=16, n_shards=2, rounds=4
            ),
        }

    results = once(quick)
    print_table(
        "E18: zipfian traffic replay, warm vs cold (quick: 600 queries, 30 companies)",
        [
            "mode",
            "queries",
            "distinct_queries",
            "hits_posted",
            "total_cost",
            "cache_hits",
            "dollars_saved",
            "wall_seconds",
        ],
        results["replay"],
    )
    print_table(
        "E18: cross-shard answer sharing (2 shards)",
        [
            "mode",
            "hits_posted",
            "total_cost",
            "cache_hits",
            "cross_shard_hits",
            "entries_imported",
            "directory_entries",
            "wall_seconds",
        ],
        results["sharing"],
    )

    cold, warm, saved = results["replay"]
    assert cold["hits_posted"] > warm["hits_posted"]
    assert warm["cache_hits"] > 0
    saved_fraction = 1 - warm["total_cost"] / cold["total_cost"]
    assert saved_fraction >= MIN_SAVED_FRACTION, (
        f"warm replay saved only {saved_fraction:.0%} of cold spend "
        f"(bar: {MIN_SAVED_FRACTION:.0%})"
    )
    # The warm run credits exactly the spend delta as cache savings.
    assert warm["dollars_saved"] > 0

    isolated, shared = results["sharing"]
    assert shared["cross_shard_hits"] > 0, "no hit was served from an imported entry"
    assert shared["entries_imported"] > 0
    assert shared["total_cost"] <= isolated["total_cost"]

    total = (
        sum(row["wall_seconds"] for row in results["replay"][:2])
        + sum(row["wall_seconds"] for row in results["sharing"])
    )
    assert total < QUICK_GATE_SECONDS
