"""E8 — Section 2: batching tasks into a single HIT.

"As an optimization, the manager can batch several tasks into a single HIT."
The benchmark sweeps the batch size of a crowd filter and reports the
cost/latency/accuracy trade-off: fewer HITs cost less, but very long HITs
degrade answer quality because workers fatigue (the lazy-worker model).
"""

from repro.experiments import build_products_engine, print_table

BATCH_SIZES = (1, 2, 5, 10)


def run_batching_experiment():
    rows = []
    for batch_size in BATCH_SIZES:
        run = build_products_engine(
            n_products=40, assignments=3, filter_batch=batch_size, seed=801
        )
        handle = run.engine.query("SELECT name FROM products WHERE isTargetColor(name)")
        results = handle.wait()
        quality = run.workload.filter_accuracy(results, name_column="name")
        rows.append(
            {
                "batch_size": batch_size,
                "hits": handle.stats.hits_posted,
                "cost_usd": handle.total_cost,
                "precision": quality["precision"],
                "recall": quality["recall"],
                "minutes": handle.stats.elapsed / 60,
            }
        )
    return rows


def test_e8_batching(once):
    rows = once(run_batching_experiment)
    print_table(
        "E8: tasks per HIT vs cost, accuracy and latency (crowd filter, 40 products)",
        ["batch_size", "hits", "cost_usd", "precision", "recall", "minutes"],
        rows,
    )
    by_size = {r["batch_size"]: r for r in rows}
    # HIT count (and therefore cost) drops roughly linearly with batch size.
    assert by_size[1]["hits"] == 40
    assert by_size[10]["hits"] == 4
    assert by_size[10]["cost_usd"] < by_size[1]["cost_usd"] / 5
    # Quality stays usable across batch sizes, but the biggest batches are no
    # better than unbatched HITs (worker fatigue pushes the other way).
    for row in rows:
        assert row["precision"] >= 0.6 and row["recall"] >= 0.75
    f1 = lambda r: 2 * r["precision"] * r["recall"] / (r["precision"] + r["recall"])  # noqa: E731
    assert f1(by_size[10]) <= f1(by_size[1]) + 0.05
