"""Shared configuration for the benchmark suite.

Every benchmark runs a full (simulated) crowd workload, so each one executes
exactly once per session (``rounds=1``) — the interesting output is the table
of cost / accuracy / latency numbers each benchmark prints, mirroring the
corresponding figure or dashboard panel of the paper.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
