"""E1 — Figure 1: the full system, end to end.

Runs the paper's two demo queries (Query 1 schema extension, Query 2 image
join) through the whole stack — parser, optimizer, asynchronous executor,
task manager, HIT compiler, simulated MTurk — and reports the row counts,
monetary cost, HIT counts and simulated completion times a demo visitor
would see on the dashboard.
"""

from repro.dashboard import QueryDashboard
from repro.experiments import (
    QUERY1_SQL,
    QUERY2_SQL,
    build_celebrity_engine,
    build_companies_engine,
    print_table,
)


def run_end_to_end():
    rows = []

    companies = build_companies_engine(n_companies=25, assignments=3, seed=101)
    handle1 = companies.engine.query(QUERY1_SQL)
    results1 = handle1.wait()
    accuracy = companies.workload.score_results(
        results1, company_column="companyName", ceo_column="findCEO.CEO"
    )
    rows.append(
        {
            "query": "Q1 findCEO (25 companies)",
            "rows": len(results1),
            "accuracy": accuracy,
            "hits": handle1.stats.hits_posted,
            "cost_usd": handle1.total_cost,
            "minutes": handle1.stats.elapsed / 60,
        }
    )

    celebrities = build_celebrity_engine(n_celebrities=12, n_spotted=12, assignments=3, seed=102)
    handle2 = celebrities.engine.query(QUERY2_SQL)
    results2 = handle2.wait()
    score = celebrities.workload.score_results(results2)
    rows.append(
        {
            "query": "Q2 samePerson (12x12 images)",
            "rows": len(results2),
            "accuracy": score["f1"],
            "hits": handle2.stats.hits_posted,
            "cost_usd": handle2.total_cost,
            "minutes": handle2.stats.elapsed / 60,
        }
    )
    dashboard_text = QueryDashboard(celebrities.engine).render(handle2.query_id)
    return rows, (handle1, results1, accuracy), (handle2, results2, score), dashboard_text


def test_e1_end_to_end(once):
    rows, q1, q2, dashboard_text = once(run_end_to_end)
    print_table(
        "E1: end-to-end demo queries (Figure 1 stack)",
        ["query", "rows", "accuracy", "hits", "cost_usd", "minutes"],
        rows,
    )
    print(dashboard_text)

    handle1, results1, accuracy = q1
    assert len(results1) == 25
    assert accuracy >= 0.85               # redundancy makes Query 1 reliable
    assert handle1.total_cost > 0

    handle2, results2, score = q2
    assert score["precision"] >= 0.8 and score["recall"] >= 0.7
    # The join never pays for the naive cross product (144 pairs).
    assert handle2.stats.hits_posted < 144
    # Asynchronous HITs take minutes, so simulated completion is minutes-scale.
    assert handle1.stats.elapsed > 60
