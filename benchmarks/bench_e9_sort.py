"""E9 — Section 3: the human-powered rank (ORDER BY) operator.

Compares the two crowd sort implementations described in the companion CIDR
paper the demo cites as [5]: O(n²) pairwise comparisons versus O(n) per-item
ratings, for two input sizes.  The expected shape: comparisons are far more
expensive but recover the true order almost exactly; ratings are cheap but
noisier.
"""

from repro.experiments import build_products_engine, print_table


def run_sort_experiment():
    rows = []
    for n_products in (10, 25):
        for strategy, task in (("comparison", "biggerItem"), ("rating", "rateSize")):
            run = build_products_engine(
                n_products=n_products, assignments=3, sort_batch=5, seed=901
            )
            handle = run.engine.query(f"SELECT name FROM products ORDER BY {task}(name)")
            results = handle.wait()
            observed = [row["name"] for row in results]
            rho = run.workload.rank_correlation(run.workload.true_size_order(), observed)
            rows.append(
                {
                    "items": n_products,
                    "strategy": strategy,
                    "hits": handle.stats.hits_posted,
                    "cost_usd": handle.total_cost,
                    "rank_correlation": rho,
                    "minutes": handle.stats.elapsed / 60,
                }
            )
    return rows


def test_e9_sort(once):
    rows = once(run_sort_experiment)
    print_table(
        "E9: crowd ORDER BY — pairwise comparisons vs ratings",
        ["items", "strategy", "hits", "cost_usd", "rank_correlation", "minutes"],
        rows,
    )
    by_key = {(r["items"], r["strategy"]): r for r in rows}
    for n_products in (10, 25):
        comparison = by_key[(n_products, "comparison")]
        rating = by_key[(n_products, "rating")]
        # Comparison sort pays O(n^2), rating sort O(n).
        assert comparison["cost_usd"] > rating["cost_usd"]
        # Both recover a meaningful order; comparisons are at least as good.
        assert comparison["rank_correlation"] >= 0.85
        assert rating["rank_correlation"] >= 0.5
        assert comparison["rank_correlation"] >= rating["rank_correlation"] - 0.05
    # The comparison-vs-rating cost gap widens with input size.
    gap_small = by_key[(10, "comparison")]["cost_usd"] / max(by_key[(10, "rating")]["cost_usd"], 1e-9)
    gap_large = by_key[(25, "comparison")]["cost_usd"] / max(by_key[(25, "rating")]["cost_usd"], 1e-9)
    assert gap_large > gap_small
