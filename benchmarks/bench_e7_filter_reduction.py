"""E7 — Section 4.1: "filtering-based reduction in cross-product size".

The dashboard lets the audience explore how pre-filtering shrinks a crowd
join.  The benchmark runs Query 2 with no pre-filter and with progressively
tighter machine pre-filters on the image feature distance, reporting how many
pairs the crowd is actually asked about, what the join costs, and whether any
true matches are lost.
"""

from repro.core.operators.crowd_join import CrowdJoinOperator
from repro.experiments import QUERY2_SQL, build_celebrity_engine, print_table

THRESHOLDS = (None, 0.9, 0.55)


def run_filter_reduction():
    rows = []
    for threshold in THRESHOLDS:
        run = build_celebrity_engine(
            n_celebrities=14,
            n_spotted=14,
            interface="columns",
            assignments=3,
            use_prefilter=threshold is not None,
            prefilter_threshold=threshold or 0.0,
            seed=701,
        )
        handle = run.engine.query(QUERY2_SQL)
        results = handle.wait()
        score = run.workload.score_results(results)
        join = next(
            op for op in handle.executor.root.walk() if isinstance(op, CrowdJoinOperator)
        )
        rows.append(
            {
                "prefilter": "none" if threshold is None else f"distance<={threshold}",
                "cross_product": run.workload.cross_product_size(),
                "pairs_asked": join.pairs_asked,
                "pairs_prefiltered": join.pairs_prefiltered,
                "hits": handle.stats.hits_posted,
                "cost_usd": handle.total_cost,
                "precision": score["precision"],
                "recall": score["recall"],
            }
        )
    return rows


def test_e7_filter_reduction(once):
    rows = once(run_filter_reduction)
    print_table(
        "E7: machine pre-filtering before the crowd join",
        ["prefilter", "cross_product", "pairs_asked", "pairs_prefiltered", "hits",
         "cost_usd", "precision", "recall"],
        rows,
    )
    unfiltered, loose, tight = rows
    # Without a pre-filter the crowd sees the whole cross product.
    assert unfiltered["pairs_asked"] == unfiltered["cross_product"]
    # Tighter pre-filters ask the crowd about fewer pairs and cost less.
    assert tight["pairs_asked"] < loose["pairs_asked"] <= unfiltered["pairs_asked"]
    assert tight["cost_usd"] < unfiltered["cost_usd"]
    # The feature threshold is generous enough that recall stays high.
    assert tight["recall"] >= 0.85
    assert tight["precision"] >= unfiltered["precision"] - 0.05
