"""E12 — Section 2: mid-query adaptive re-optimization.

"Query selectivities for HIT-based operators are not known a priori", so the
initial physical plan can be built on badly wrong estimates.  This benchmark
constructs exactly that situation: the statistics manager is primed to
believe ``isTargetColor`` matches almost nothing (as if previous queries had
observed selectivity ~0.05), while 90% of the products truly match.  The
planner therefore expects a tiny ORDER BY input and keeps the comparison
interface for the ``biggerItem`` rank task; in reality the sort receives ~16
rows, for which O(n²) pairwise comparisons are ruinously expensive.

The static run (``adaptive=False``) is stuck with that plan.  The adaptive
run hits the operator-completion barrier when the crowd filter finishes,
re-costs the pending sort with the *observed* cardinality, and swaps it to
the rating interface mid-query — posting measurably fewer HITs and spending
measurably fewer dollars for the same result set.
"""

from repro.core.exec.context import QueryConfig
from repro.engine import QurkEngine
from repro.experiments import print_table
from repro.workloads.products import ProductsWorkload

MISESTIMATED_SQL = (
    "SELECT name FROM products WHERE isTargetColor(name) ORDER BY biggerItem(name)"
)


def build_engine(*, adaptive: bool, n_products: int = 18, seed: int = 1201):
    workload = ProductsWorkload(n_products=n_products, target_fraction=0.9, seed=seed)
    engine = QurkEngine(
        seed=seed,
        enable_cache=False,
        enable_task_model=False,
        default_query_config=QueryConfig(adaptive=adaptive),
    )
    workload.install(engine.database)
    oracle = workload.oracle()
    for task in ("isTargetColor", "biggerItem", "rateSize"):
        engine.register_oracle(task, oracle)
    name_payload = lambda row: {"name": row["name"]}  # noqa: E731 - tiny adapter
    engine.define_task(workload.color_filter_spec(assignments=3), learnable=False)
    engine.define_task(
        workload.size_compare_spec(assignments=3), payload=name_payload, learnable=False
    )
    engine.define_task(
        workload.size_rating_spec(assignments=3), payload=name_payload, learnable=False
    )
    # The deliberate misestimate: prior observations said nothing matches.
    stats = engine.statistics.spec("isTargetColor")
    stats.boolean_total = 36
    stats.boolean_true = 0
    return engine, workload


def run_adaptive_replan():
    rows = []
    for mode, adaptive in (("static", False), ("adaptive", True)):
        engine, workload = build_engine(adaptive=adaptive)
        handle = engine.query(MISESTIMATED_SQL)
        results = handle.wait()
        observed = [row["name"] for row in results]
        truth = [
            name
            for name in workload.true_size_order()
            if name in set(observed)
        ]
        rho = workload.rank_correlation(truth, observed)
        changes = [
            change.describe()
            for change in handle.plan_history()
            if change.kind != "plan"
        ]
        rows.append(
            {
                "mode": mode,
                "results": len(results),
                "hits": handle.stats.hits_posted,
                "cost_usd": handle.total_cost,
                "rank_correlation": rho,
                "plan_changes": "; ".join(changes) or "<none>",
            }
        )
    return rows


def test_e12_adaptive_replan(once):
    rows = once(run_adaptive_replan)
    print_table(
        "E12: mid-query re-planning under a misestimated filter selectivity",
        ["mode", "results", "hits", "cost_usd", "rank_correlation", "plan_changes"],
        rows,
    )
    static, adaptive = rows
    # Both plans produce the same result set size (same filter, same data).
    assert adaptive["results"] == static["results"]
    # The adaptive run is strictly cheaper in both HITs and dollars.
    assert adaptive["hits"] < static["hits"]
    assert adaptive["cost_usd"] < static["cost_usd"]
    # The saving comes from an actual recorded plan change.
    assert "sort-strategy" in adaptive["plan_changes"]
    assert static["plan_changes"] == "<none>"
    # The rating sort is noisier but still recovers a meaningful order.
    assert adaptive["rank_correlation"] >= 0.5
