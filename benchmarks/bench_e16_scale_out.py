"""E16 — horizontal scale-out: sharded engines behind one coordinator.

E15 made a *single* control plane scale to hundreds of concurrent queries;
this benchmark shards the workload across N worker processes, each a full
engine + scheduler + simulated marketplace, behind a
:class:`~repro.cluster.ShardCoordinator`.  Every query is the same small
crowd filter as E15 (one task per product, one task per HIT), so total crowd
work is constant across the curve and the only variable is how many engine
processes share it.

Two effects add up:

* **Parallelism** — on a multi-core box the shards genuinely run at once
  (the coordinator broadcasts ``drain`` to every worker before collecting
  any reply).
* **Smaller per-shard heaps** — even time-sliced on one core, 8 engines
  with 1/8th of the queries each beat one engine holding all of them,
  because several control-plane costs grow with the *per-engine* query and
  HIT population, not with total work.

Reported per shard count: queries/sec, speedup versus the 1-shard cluster,
crowd spend (which must not change — sharding is a runtime decision, not a
semantic one) and worker peak RSS (sum and max across the fleet).
"""

from __future__ import annotations

import os
import time

from repro.cluster import EngineSpec, ShardCoordinator, ShardWorker, make_placement
from repro.cluster.serialization import encode_query
from repro.experiments import print_table

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"

#: The scaling curve: worker processes sharing a fixed query population.
SHARD_COUNTS = (1, 2, 4, 8)

#: Concurrent crowd-filter queries across the whole cluster.
CONCURRENT_QUERIES = 1024

#: Crowd tasks (= HITs) per query.
TASKS_PER_QUERY = 40


def engine_spec(tasks_per_query: int = TASKS_PER_QUERY, *, seed: int = 1601) -> EngineSpec:
    """The recipe every shard worker builds its engine from."""
    return EngineSpec(
        factory="repro.experiments.harness:build_products_engine",
        kwargs={"n_products": tasks_per_query, "filter_batch": 1, "seed": seed},
    )


def _run_level(
    n_shards: int, n_queries: int, tasks_per_query: int, *, seed: int = 1601
) -> dict:
    spec = engine_spec(tasks_per_query, seed=seed)
    with ShardCoordinator(spec, n_shards) as cluster:
        started = time.perf_counter()
        cluster.submit_many([{"sql": FILTER_SQL} for _ in range(n_queries)])
        statuses = cluster.drain()
        wall = time.perf_counter() - started
        if len(statuses) != n_queries or any(s != "completed" for s in statuses.values()):
            raise AssertionError(f"not every query completed: {statuses}")
        stats = cluster.stats()
    return {
        "shards": n_shards,
        "queries": n_queries,
        "tasks_per_query": tasks_per_query,
        "hits": int(stats.totals["hits_posted"]),
        "wall_seconds": round(wall, 3),
        "queries_per_sec": round(n_queries / wall, 3),
        "cost_usd": round(stats.totals["total_cost"], 2),
        "rss_sum_kb": stats.peak_rss_kb_sum,
        "rss_max_kb": stats.peak_rss_kb_max,
    }


def run_scale_out_curve(
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    n_queries: int = CONCURRENT_QUERIES,
    tasks_per_query: int = TASKS_PER_QUERY,
) -> list[dict]:
    """The scaling curve: fixed workload, growing shard count."""
    rows = [_run_level(n, n_queries, tasks_per_query) for n in shard_counts]
    base = rows[0]["queries_per_sec"]
    for row in rows:
        row["speedup_vs_1_shard"] = round(row["queries_per_sec"] / base, 2)
    return rows


def shard_worker_workload(
    shard_id: int = 0,
    n_shards: int = 8,
    n_queries: int = CONCURRENT_QUERIES,
    tasks_per_query: int = TASKS_PER_QUERY,
) -> dict:
    """One shard's exact slice of the curve, runnable in-process.

    ``python -m repro.profile e16 --shard 0 --shards 8`` uses this to put a
    single worker under cProfile: the same placement the coordinator uses
    routes the query stream, only shard ``shard_id``'s queries are submitted
    to an in-process :class:`~repro.cluster.ShardWorker`, and the same
    ``drain`` op the coordinator sends drives it to quiescence.
    """
    placement = make_placement("round-robin", n_shards, 0)
    worker = ShardWorker(engine_spec(tasks_per_query), shard_id)
    queries = [
        encode_query(FILTER_SQL, query_id=f"cq{index + 1}", budget=None, priority=1.0, config=None)
        for index in range(n_queries)
        if placement.shard_of(index, f"cq{index + 1}") == shard_id
    ]
    submitted = worker.handle({"op": "submit_many", "queries": queries})
    if not submitted.get("ok"):
        raise AssertionError(submitted.get("error"))
    drained = worker.handle({"op": "drain"})
    if not drained.get("ok"):
        raise AssertionError(drained.get("error"))
    return {
        "shard": shard_id,
        "n_shards": n_shards,
        "queries": len(queries),
        "statuses": drained["statuses"],
    }


# -- pytest entry points (quick sizes, with the CI wall-clock regression gate) --

#: Generous wall-clock budget for the quick curve (64 queries, 10 tasks each,
#: at 1 and 2 shards).  Tripping it means either the cluster runtime grew a
#: serialization hot spot or a worker stopped overlapping with its peers.
QUICK_GATE_SECONDS = 60.0


def test_e16_scale_out_quick(once):
    rows = once(
        run_scale_out_curve, shard_counts=(1, 2), n_queries=64, tasks_per_query=10
    )
    print_table(
        "E16: scale-out (quick: 64 crowd-filter queries, 10 tasks each, 1/2 shards)",
        [
            "shards",
            "queries",
            "hits",
            "wall_seconds",
            "queries_per_sec",
            "speedup_vs_1_shard",
            "cost_usd",
            "rss_sum_kb",
            "rss_max_kb",
        ],
        rows,
    )
    # Sharding must not change what the crowd is asked or paid: every shard
    # count posts the same HITs and spends the same dollars.
    assert all(row["hits"] == row["queries"] * row["tasks_per_query"] for row in rows)
    assert len({row["cost_usd"] for row in rows}) == 1
    assert sum(row["wall_seconds"] for row in rows) < QUICK_GATE_SECONDS
    if (os.cpu_count() or 1) >= 2:
        # With real parallelism available, 2 shards must not be slower than
        # one engine doing everything (generous bound: process startup and
        # IPC may eat some of the win at these tiny sizes).
        assert rows[1]["queries_per_sec"] > 0.6 * rows[0]["queries_per_sec"]
