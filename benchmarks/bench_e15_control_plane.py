"""E15 — control-plane scaling: hundreds of queries, tens of thousands of HITs.

E13 measured the *data* plane; this one measures the *crowd control plane* —
the engine scheduler, the Task Manager and the marketplace simulator — under
growing concurrency.  Every query is a small crowd filter (one task per
product, one task per HIT), so simulated crowd work per query is constant and
wall time is pure control-plane overhead: scheduler passes, flush scans,
clock advances and HIT/assignment bookkeeping.

Before this PR every scheduler pass iterated all active queries, every flush
scanned every pending group and every marketplace lookup scanned every HIT
ever posted, so cost per unit of work grew with system size and the curve
bent superlinearly.  With the indexed, event-driven control plane
(ready-queue scheduling, dirty-key flushes, status-indexed HITs) cost tracks
work done and queries/sec stays roughly flat as concurrency grows.

Reported per concurrency level: queries/sec, clock-advances/sec and
scheduler-pass cost (µs/pass).  ``baseline`` fields carry the pre-PR numbers
measured on this benchmark immediately before the indexed control plane
landed, so ``BENCH_SUMMARY.json`` records the before/after comparison.
"""

from __future__ import annotations

import time

from repro.experiments import build_products_engine, print_table

FILTER_SQL = "SELECT name FROM products WHERE isTargetColor(name)"

#: The scaling curve: concurrent crowd queries sharing one marketplace.
CONCURRENCIES = (8, 64, 256)

#: Crowd tasks (= HITs, with one-task-per-HIT batching) per query.  At the
#: top of the curve this makes 256 x 40 = 10,240 HITs (30k+ assignments) on
#: one simulated marketplace.
TASKS_PER_QUERY = 40

#: Pre-PR numbers for the same curve, measured on the scan-everything control
#: plane immediately before the indexed one replaced it (commit 96d8098, same
#: machine as the recorded "after" run in BENCH_SUMMARY.json).
PRE_PR_BASELINE = {
    8: {"queries_per_sec": 57.8, "wall_seconds": 0.138, "us_per_pass": 125.9},
    64: {"queries_per_sec": 15.95, "wall_seconds": 4.012, "us_per_pass": 457.3},
    256: {"queries_per_sec": 4.19, "wall_seconds": 61.064, "us_per_pass": 1740.3},
}


def _run_level(n_queries: int, tasks_per_query: int, *, seed: int = 1501) -> dict:
    run = build_products_engine(n_products=tasks_per_query, filter_batch=1, seed=seed)
    engine = run.engine
    started = time.perf_counter()
    handles = [engine.query(FILTER_SQL) for _ in range(n_queries)]
    for handle in handles:
        handle.wait()
    wall = time.perf_counter() - started
    if not all(handle.is_complete for handle in handles):
        raise AssertionError("not every concurrent query completed")
    metrics = engine.scheduler.metrics
    stats = engine.task_manager.stats
    baseline = PRE_PR_BASELINE.get(n_queries)
    row = {
        "queries": n_queries,
        "tasks_per_query": tasks_per_query,
        "hits": stats.hits_posted,
        "wall_seconds": round(wall, 3),
        "queries_per_sec": round(n_queries / wall, 3),
        "clock_advances": metrics.clock_advances,
        "clock_advances_per_sec": round(metrics.clock_advances / wall),
        "noop_clock_advances": getattr(metrics, "noop_clock_advances", 0),
        "passes": metrics.passes,
        "us_per_pass": round(wall / metrics.passes * 1e6, 1) if metrics.passes else None,
        "cost_usd": round(engine.total_crowd_cost, 2),
        "makespan_min": round(engine.clock.now / 60, 1),
    }
    if baseline is not None:
        row["baseline_queries_per_sec"] = baseline["queries_per_sec"]
        row["speedup_vs_baseline"] = round(row["queries_per_sec"] / baseline["queries_per_sec"], 2)
    return row


def run_control_plane_scaling(
    concurrencies: tuple[int, ...] = CONCURRENCIES, tasks_per_query: int = TASKS_PER_QUERY
) -> list[dict]:
    """The scaling curve: same per-query crowd work at growing concurrency."""
    return [_run_level(n, tasks_per_query) for n in concurrencies]


# -- pytest entry points (quick sizes, with the CI wall-clock regression gate) --

#: Generous wall-clock budget for the quick curve (8 + 32 queries, 10 tasks
#: each).  On the indexed control plane it runs in well under a second;
#: tripping the gate means an O(system-size) scan crept back into a per-pass
#: hot loop.
QUICK_GATE_SECONDS = 30.0


def test_e15_control_plane_quick(once):
    rows = once(run_control_plane_scaling, concurrencies=(8, 32), tasks_per_query=10)
    print_table(
        "E15: control-plane scaling (quick: 8/32 concurrent crowd queries, 10 tasks each)",
        [
            "queries",
            "hits",
            "wall_seconds",
            "queries_per_sec",
            "clock_advances",
            "passes",
            "us_per_pass",
        ],
        rows,
    )
    assert all(row["hits"] == row["queries"] * row["tasks_per_query"] for row in rows)
    assert sum(row["wall_seconds"] for row in rows) < QUICK_GATE_SECONDS
    # The control plane must scale: 4x the queries may not cost more than
    # ~12x the wall time (the pre-PR scan-everything plane was ~25x here).
    eight, thirtytwo = rows
    if eight["wall_seconds"] > 0.05:  # ignore timer noise on tiny runs
        assert thirtytwo["wall_seconds"] < 12 * eight["wall_seconds"]
