"""Run every benchmark experiment and write a ``BENCH_*.json`` summary.

The ``bench_e*.py`` modules are pytest files, but each one keeps its workload
in plain ``run_*`` functions; this driver imports those functions directly,
times them, and writes the collected metric rows to ``BENCH_SUMMARY.json`` at
the repository root so the performance trajectory of the engine is recorded
per change, not just eyeballed from pytest output.

Usage::

    python benchmarks/run_all.py            # all benchmarks
    python benchmarks/run_all.py e8 e11     # only the named experiments
    python benchmarks/run_all.py --quick    # CI smoke subset (plan layer + caching)
"""

from __future__ import annotations

import importlib
import json
import sys
import time
from pathlib import Path

try:  # POSIX-only stdlib module; absent on Windows
    import resource
except ImportError:  # pragma: no cover - POSIX CI/dev images always have it
    resource = None  # type: ignore[assignment]

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

#: The ``--quick`` smoke subset: one cheap end-to-end caching experiment, the
#: adaptive re-planning experiment, the engine-overhead benchmark, the
#: worker quality-control experiment and the control-plane scaling
#: benchmark, so plan-layer, data-plane, quality-control and control-plane
#: regressions surface in CI without paying for the full sweep.
QUICK_SELECTORS = ("e2", "e12", "e13", "e14", "e15")


def discover(selectors: list[str]) -> list[Path]:
    modules = sorted(BENCH_DIR.glob("bench_*.py"))
    if not selectors:
        return modules
    wanted = []
    for module in modules:
        tag = module.stem.split("_")[1]  # bench_e8_batching -> e8
        if tag in selectors or module.stem in selectors:
            wanted.append(module)
    return wanted


def peak_rss_kb() -> int | None:
    """Process peak RSS in KiB (``ru_maxrss``), or None off-POSIX.

    The kernel reports a high-water mark for the whole process, so
    per-benchmark values are monotone across a sweep: a benchmark's own
    footprint shows up as the *increase* over the previous entry.  Recording
    the mark after each module makes columnar-memory wins and regressions
    visible in the summary trajectory.
    """
    if resource is None:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return usage // 1024 if sys.platform == "darwin" else usage


def run_module(path: Path) -> dict:
    module = importlib.import_module(path.stem)
    runners = {
        name: fn
        for name, fn in vars(module).items()
        if name.startswith("run_") and callable(fn)
    }
    entry: dict = {
        "status": "ok",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiments": {},
    }
    for name, fn in sorted(runners.items()):
        started = time.perf_counter()
        try:
            result = fn()
        except Exception as error:  # keep the sweep going; record the failure
            entry["status"] = "error"
            entry["experiments"][name] = {"error": f"{type(error).__name__}: {error}"}
            continue
        entry["experiments"][name] = {
            "wall_seconds": round(time.perf_counter() - started, 3),
            "peak_rss_kb": peak_rss_kb(),
            "results": result,
        }
    if not runners:
        entry["status"] = "skipped"
        entry["reason"] = "no run_* functions found"
    entry["peak_rss_kb"] = peak_rss_kb()
    return entry


def main(argv: list[str]) -> int:
    if "--quick" in argv:
        argv = [arg for arg in argv if arg != "--quick"] + list(QUICK_SELECTORS)
    modules = discover(argv)
    if not modules:
        print(f"no benchmarks match {argv!r}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    # Subset runs merge into the existing summary instead of erasing the
    # other benchmarks' recorded results — the summary tracks the whole
    # suite's trajectory even when only a few experiments are re-run.
    previous: dict = {}
    if SUMMARY_PATH.exists():
        try:
            previous = json.loads(SUMMARY_PATH.read_text()).get("benchmarks", {})
        except (json.JSONDecodeError, OSError):
            previous = {}
    # ``ran`` and the per-entry ``recorded_at`` stamps make clear which
    # entries this invocation refreshed; ``total_wall_seconds`` covers only
    # the modules run this time.
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "ran": [path.stem for path in modules],
        "benchmarks": dict(previous),
    }
    failures = 0
    for path in modules:
        print(f"running {path.stem} ...", flush=True)
        entry = run_module(path)
        summary["benchmarks"][path.stem] = entry
        if entry["status"] == "error":
            failures += 1
    summary["total_wall_seconds"] = round(time.perf_counter() - started, 3)
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, default=str) + "\n")
    print(f"wrote {SUMMARY_PATH} ({len(modules)} benchmark module(s), {failures} failure(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
