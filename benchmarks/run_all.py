"""Run every benchmark experiment and write a ``BENCH_*.json`` summary.

The ``bench_e*.py`` modules are pytest files, but each one keeps its workload
in plain ``run_*`` functions; this driver imports those functions directly,
times them, and writes the collected metric rows to ``BENCH_SUMMARY.json`` at
the repository root so the performance trajectory of the engine is recorded
per change, not just eyeballed from pytest output.

Usage::

    python benchmarks/run_all.py            # all benchmarks
    python benchmarks/run_all.py e8 e11     # only the named experiments
    python benchmarks/run_all.py --quick    # CI smoke subset (plan layer + caching)
"""

from __future__ import annotations

import importlib
import inspect
import json
import sys
import time
from pathlib import Path

try:  # POSIX-only stdlib module; absent on Windows
    import resource
except ImportError:  # pragma: no cover - POSIX CI/dev images always have it
    resource = None  # type: ignore[assignment]

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
SUMMARY_PATH = REPO_ROOT / "BENCH_SUMMARY.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(BENCH_DIR))

#: The ``--quick`` smoke subset: one cheap end-to-end caching experiment, the
#: adaptive re-planning experiment, the engine-overhead benchmark, the
#: worker quality-control experiment, the control-plane scaling benchmark,
#: the sharded scale-out curve, the traffic-replay amortization check and
#: the overload-protection goodput gate, so plan-layer, data-plane,
#: quality-control, control-plane, cluster-runtime, durability, answer-tier
#: and overload regressions surface in CI without paying for the full sweep.
QUICK_SELECTORS = ("e2", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19")

#: Quick-mode size overrides for benchmarks whose full curve is minutes
#: long; keys are module stems, values are kwargs for every ``run_*``
#: function that accepts them.  E16 spawns worker processes per level, so
#: CI boxes (often 1-2 CPUs) run a scaled-down curve — the full 1/2/4/8
#: sweep at 1,024 queries stays the default for `run_all.py e16`.
QUICK_OVERRIDES = {
    "bench_e16_scale_out": {
        "shard_counts": (1, 2),
        "n_queries": 128,
        "tasks_per_query": 10,
    },
    # Halved e15 sizes, as in the module's own quick pytest gate; the full
    # 64x40 overhead sweep stays the default for `run_all.py e17`.
    "bench_e17_durability": {
        "n_queries": 32,
        "tasks_per_query": 20,
        "query_counts": (8, 32),
        "intervals": (None, 100),
        "batches": 4,
    },
    # The quick pytest gate's trace sizes; the 10k-query replay stays the
    # default for `run_all.py e18`.
    "bench_e18_traffic_replay": {
        "n_queries": 600,
        "n_companies": 30,
        "rounds": 4,
    },
    # The quick pytest gate's burst size; the full 32-query burst on
    # capacity 8 stays the default for `run_all.py e19`.
    "bench_e19_overload": {
        "n_queries": 16,
        "capacity": 4,
        "queue_limit": 8,
    },
}


def discover(selectors: list[str]) -> list[Path]:
    modules = sorted(BENCH_DIR.glob("bench_*.py"))
    if not selectors:
        return modules
    wanted = []
    for module in modules:
        tag = module.stem.split("_")[1]  # bench_e8_batching -> e8
        if tag in selectors or module.stem in selectors:
            wanted.append(module)
    return wanted


def peak_rss_kb(who: str = "self") -> int | None:
    """Peak RSS in KiB (``ru_maxrss``), or None off-POSIX.

    ``who="self"`` is this process's high-water mark; ``who="children"`` is
    the largest mark among *exited* child processes — which is how cluster
    benchmarks' shard workers show up, since each worker's engine lives in
    its own process and never inflates the driver's own RSS.

    The kernel reports a high-water mark, so per-benchmark values are
    monotone across a sweep: a benchmark's own footprint shows up as the
    *increase* over the previous entry.  Recording the mark after each
    module makes columnar-memory wins and regressions visible in the
    summary trajectory.
    """
    if resource is None:
        return None
    which = resource.RUSAGE_CHILDREN if who == "children" else resource.RUSAGE_SELF
    usage = resource.getrusage(which).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return usage // 1024 if sys.platform == "darwin" else usage


def shard_rss_kb(result) -> tuple[int, int] | None:
    """``(sum, max)`` of per-shard worker RSS reported inside result rows.

    Cluster benchmarks put each level's worker-fleet memory into
    ``rss_sum_kb`` / ``rss_max_kb`` row fields (self-reported by every
    worker before it exits).  Aggregating them here — sum of the largest
    level's fleet, max of any single worker — gives the summary a real
    cluster memory figure; ``RUSAGE_CHILDREN`` alone only sees the single
    biggest child.
    """
    rows = result if isinstance(result, list) else [result]
    sums = [row["rss_sum_kb"] for row in rows if isinstance(row, dict) and "rss_sum_kb" in row]
    maxes = [row["rss_max_kb"] for row in rows if isinstance(row, dict) and "rss_max_kb" in row]
    if not sums and not maxes:
        return None
    return max(sums, default=0), max(maxes, default=0)


def run_module(path: Path, overrides: dict | None = None) -> dict:
    module = importlib.import_module(path.stem)
    runners = {
        name: fn
        for name, fn in vars(module).items()
        if name.startswith("run_") and callable(fn)
    }
    entry: dict = {
        "status": "ok",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "experiments": {},
    }
    if overrides:
        entry["overrides"] = dict(overrides)
    for name, fn in sorted(runners.items()):
        kwargs = {}
        if overrides:
            accepted = inspect.signature(fn).parameters
            kwargs = {key: value for key, value in overrides.items() if key in accepted}
        started = time.perf_counter()
        try:
            result = fn(**kwargs)
        except Exception as error:  # keep the sweep going; record the failure
            entry["status"] = "error"
            entry["experiments"][name] = {"error": f"{type(error).__name__}: {error}"}
            continue
        experiment = {
            "wall_seconds": round(time.perf_counter() - started, 3),
            "peak_rss_kb": peak_rss_kb(),
            "results": result,
        }
        shard_rss = shard_rss_kb(result)
        if shard_rss is not None:
            experiment["shard_rss_sum_kb"], experiment["shard_rss_max_kb"] = shard_rss
        entry["experiments"][name] = experiment
    if not runners:
        entry["status"] = "skipped"
        entry["reason"] = "no run_* functions found"
    entry["peak_rss_kb"] = peak_rss_kb()
    entry["children_peak_rss_kb"] = peak_rss_kb("children")
    return entry


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    if quick:
        argv = [arg for arg in argv if arg != "--quick"] + list(QUICK_SELECTORS)
    modules = discover(argv)
    if not modules:
        print(f"no benchmarks match {argv!r}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    # Subset runs merge into the existing summary instead of erasing the
    # other benchmarks' recorded results — the summary tracks the whole
    # suite's trajectory even when only a few experiments are re-run.
    previous: dict = {}
    if SUMMARY_PATH.exists():
        try:
            previous = json.loads(SUMMARY_PATH.read_text()).get("benchmarks", {})
        except (json.JSONDecodeError, OSError):
            previous = {}
    # ``ran`` and the per-entry ``recorded_at`` stamps make clear which
    # entries this invocation refreshed; ``total_wall_seconds`` covers only
    # the modules run this time.
    summary = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "ran": [path.stem for path in modules],
        "benchmarks": dict(previous),
    }
    failures = 0
    for path in modules:
        print(f"running {path.stem} ...", flush=True)
        overrides = QUICK_OVERRIDES.get(path.stem) if quick else None
        entry = run_module(path, overrides)
        summary["benchmarks"][path.stem] = entry
        if entry["status"] == "error":
            failures += 1
    summary["total_wall_seconds"] = round(time.perf_counter() - started, 3)
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, default=str) + "\n")
    print(f"wrote {SUMMARY_PATH} ({len(modules)} benchmark module(s), {failures} failure(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
