"""E4 — Figure 2: the Query Status Dashboard.

Reproduces the dashboard panel for the two long-running demo queries: budget
vs spend, the optimizer's total-cost estimate, cache savings and classifier
savings, sampled at several points of simulated time while the queries run.
"""

from repro.dashboard import QueryDashboard
from repro.experiments import QUERY1_SQL, build_companies_engine, print_table


def run_dashboard_experiment():
    run = build_companies_engine(n_companies=40, assignments=3, seed=401)
    engine = run.engine
    dashboard = QueryDashboard(engine)

    handle = engine.query(QUERY1_SQL, budget=5.0)
    samples = []
    checkpoints = (120.0, 480.0, 1200.0)
    for checkpoint in checkpoints:
        handle.run_until(checkpoint)
        snapshot = dashboard.snapshot(handle.query_id)
        samples.append(
            {
                "sim_time_s": snapshot.simulated_time,
                "status": snapshot.status,
                "results": snapshot.results_emitted,
                "budget": snapshot.budget,
                "spent": snapshot.spent,
                "estimated_total": snapshot.estimated_total_cost,
                "cache_savings": snapshot.cache_savings,
                "model_savings": snapshot.model_savings,
            }
        )
    handle.wait()
    # Re-run the same query: the dashboard now shows cache savings.
    rerun = engine.query(QUERY1_SQL, budget=5.0)
    rerun.wait()
    final = dashboard.snapshot(rerun.query_id)
    samples.append(
        {
            "sim_time_s": final.simulated_time,
            "status": f"rerun/{final.status}",
            "results": final.results_emitted,
            "budget": final.budget,
            "spent": final.spent,
            "estimated_total": final.estimated_total_cost,
            "cache_savings": final.cache_savings,
            "model_savings": final.model_savings,
        }
    )
    rendered = dashboard.render(handle.query_id)
    return samples, rendered, handle, rerun


def test_e4_dashboard_metrics(once):
    samples, rendered, handle, rerun = once(run_dashboard_experiment)
    print_table(
        "E4: dashboard samples while Query 1 runs (budget $5.00)",
        ["sim_time_s", "status", "results", "budget", "spent", "estimated_total",
         "cache_savings", "model_savings"],
        samples,
    )
    print(rendered)
    # Spend is monotone over time and never exceeds the budget.
    running = samples[:-1]
    assert all(b["spent"] >= a["spent"] for a, b in zip(running, running[1:]))
    assert all(s["spent"] <= 5.0 + 1e-9 for s in samples)
    # The optimizer's estimate is in the right ballpark of the real spend.
    final_spend = handle.total_cost
    assert samples[0]["estimated_total"] > 0
    assert final_spend <= 5.0
    # The rerun is answered from the cache: zero new spend, visible savings.
    assert rerun.total_cost == 0.0
    assert samples[-1]["cache_savings"] > 0
