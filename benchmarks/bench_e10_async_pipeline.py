"""E10 — Section 2: asynchronous execution and HIT parallelism.

"Query execution must be asynchronous because each HIT may take several
minutes to generate results."  The benchmark measures, for Query 1 and
Query 2, how long the query takes in simulated time compared with the sum of
the individual HITs' latencies: because operators communicate through queues
and every HIT is outstanding concurrently, the query finishes in roughly the
time of the slowest HIT waves — orders of magnitude less than serial
execution — and results stream into the results table while HITs are still
outstanding.
"""

from repro.crowd.hit import AssignmentStatus
from repro.experiments import (
    QUERY1_SQL,
    QUERY2_SQL,
    build_celebrity_engine,
    build_companies_engine,
    print_table,
)


def _hit_latencies(platform):
    latencies = []
    for hit in platform.list_hits():
        submitted = [
            a.submitted_at - hit.created_at
            for a in hit.assignments
            if a.status in (AssignmentStatus.SUBMITTED, AssignmentStatus.APPROVED)
            and a.submitted_at is not None
        ]
        if submitted:
            latencies.append(max(submitted))
    return latencies


def run_async_experiment():
    rows = []
    streaming = {}
    for label, sql, build in (
        ("Q1 findCEO (30 companies)", QUERY1_SQL, lambda: build_companies_engine(n_companies=30, seed=1001)),
        ("Q2 samePerson (10x10)", QUERY2_SQL, lambda: build_celebrity_engine(n_celebrities=10, n_spotted=10, seed=1002)),
    ):
        run = build()
        handle = run.engine.query(sql)
        first_result_at = None
        while handle.step():
            if first_result_at is None and len(handle.results_table) > 0:
                first_result_at = run.engine.clock.now
        handle.wait()
        latencies = _hit_latencies(run.engine.platform)
        total = handle.stats.elapsed
        serial = sum(latencies)
        rows.append(
            {
                "query": label,
                "hits": len(latencies),
                "mean_hit_latency_s": sum(latencies) / len(latencies),
                "query_latency_s": total,
                "serial_sum_s": serial,
                "speedup_vs_serial": serial / total if total else 0.0,
                "first_result_s": first_result_at or total,
            }
        )
        streaming[label] = (first_result_at, total)
    return rows, streaming


def test_e10_async_pipeline(once):
    rows, streaming = once(run_async_experiment)
    print_table(
        "E10: asynchronous execution — query latency vs serial HIT latency",
        ["query", "hits", "mean_hit_latency_s", "query_latency_s", "serial_sum_s",
         "speedup_vs_serial", "first_result_s"],
        rows,
    )
    for row in rows:
        # Individual HITs take minutes of simulated time.
        assert row["mean_hit_latency_s"] > 60
        # Concurrent HITs make the whole query far faster than serial execution.
        assert row["query_latency_s"] < row["serial_sum_s"] / 3
        assert row["speedup_vs_serial"] > 3
    # Query 1 streams: the first result lands well before the query finishes.
    first, total = streaming["Q1 findCEO (30 companies)"]
    assert first is not None and first < total
