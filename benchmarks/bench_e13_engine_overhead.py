"""E13 — engine overhead on a crowd-free data plane.

The crowd benchmarks (E1–E12) are dominated by simulated HIT latency and
cost; this one measures the *engine itself*.  A 100k-row, fully local
scan → filter → hash-join → sort → group-by pipeline runs with no crowd
operator anywhere, so wall time is pure Python data-plane overhead: row
construction, schema name resolution, queue draining, and scheduler passes.
A 16-query concurrent variant runs the same local pipeline shape through the
engine scheduler to capture per-pass dispatch overhead on a busy engine.

Reported as rows/sec; ``baseline`` fields carry the pre-vectorization
numbers (measured on this benchmark before the batched data plane landed)
and ``pr3`` fields carry the batched-but-row-exchanging numbers recorded by
the PR 3 sweep, so ``BENCH_SUMMARY.json`` shows the whole tier ladder:
row-at-a-time → batched drain → columnar execution.
"""

from __future__ import annotations

import time

from repro.core.exec.context import ExecutionContext, QueryConfig
from repro.core.exec.executor import QueryExecutor
from repro.core.exec.handle import QueryHandle
from repro.core.exec.scheduler import EngineScheduler
from repro.core.operators.aggregate import AggregateSpec, GroupByOperator
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.operators.project import LocalFilterOperator
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sink import ResultSinkOperator
from repro.core.operators.sort_local import LocalSortOperator
from repro.engine import QurkEngine
from repro.experiments import print_table
from repro.storage.expressions import Arithmetic, ColumnRef, Comparison, Literal
from repro.storage.types import DataType

#: Pre-PR numbers for the same pipelines, measured on the row-at-a-time data
#: plane immediately before the vectorized one replaced it (commit 06efce8,
#: same machine as the recorded "after" run in BENCH_SUMMARY.json).
PRE_PR_BASELINE = {
    "pipeline_100k": {"rows_per_sec": 36_950, "wall_seconds": 2.706},
    "concurrent_16q": {"rows_per_sec": 56_851, "wall_seconds": 5.629},
}

#: The numbers the PR 3 sweep recorded in BENCH_SUMMARY.json for the batched
#: (but still row-exchanging) data plane — the baseline the columnar tier is
#: gated against (the columnar PR's acceptance bar is ≥5x these).
PR3_BATCHED_BASELINE = {
    "pipeline_100k": {"rows_per_sec": 274_291, "wall_seconds": 0.365},
    "concurrent_16q": {"rows_per_sec": 423_960, "wall_seconds": 0.755},
}

N_CATEGORIES = 100


def _build_engine(n_rows: int) -> QurkEngine:
    engine = QurkEngine(seed=13, worker_pool_size=10)
    items = engine.create_table(
        "items",
        [("id", DataType.INTEGER), ("category", DataType.STRING), ("score", DataType.FLOAT)],
    )
    categories = engine.create_table(
        "categories", [("name", DataType.STRING), ("weight", DataType.FLOAT)]
    )
    items.insert_many(
        (i, f"c{i % N_CATEGORIES}", ((i * 7919) % 1000) / 1000.0) for i in range(n_rows)
    )
    categories.insert_many((f"c{i}", 1.0 + i / N_CATEGORIES) for i in range(N_CATEGORIES))
    return engine


def _build_pipeline(engine: QurkEngine, query_id: str, *, join: bool = True) -> QueryExecutor:
    """scan(items) → filter → [hash-join categories] → sort → group-by → sink."""
    scan_items = ScanOperator(engine.database.table("items"))
    filt = LocalFilterOperator(
        Comparison(">", ColumnRef("score"), Literal(0.2)), scan_items.output_schema
    )
    filt.add_child(scan_items)
    upstream = filt
    if join:
        scan_cats = ScanOperator(engine.database.table("categories"))
        joined = LocalHashJoinOperator(
            ColumnRef("category"), ColumnRef("name"), filt.output_schema, scan_cats.output_schema
        )
        joined.add_child(filt)
        joined.add_child(scan_cats)
        upstream = joined
    sort = LocalSortOperator(ColumnRef("score"), upstream.output_schema, ascending=False)
    sort.add_child(upstream)
    aggregates = [
        AggregateSpec("n", "count", None),
        AggregateSpec("total_score", "sum", ColumnRef("score")),
    ]
    if join:
        aggregates.append(
            AggregateSpec(
                "weighted", "avg", Arithmetic("*", ColumnRef("score"), ColumnRef("weight"))
            )
        )
    group = GroupByOperator(["category"], aggregates, sort.output_schema)
    group.add_child(sort)
    results = engine.database.create_results_table(group.output_schema, query_id=query_id)
    sink = ResultSinkOperator(results)
    sink.add_child(group)
    engine.budget_ledger.register(query_id, None)
    context = ExecutionContext(
        query_id=query_id,
        database=engine.database,
        task_manager=engine.task_manager,
        statistics=engine.statistics,
        budget=engine.budget_ledger,
        clock=engine.clock,
        config=QueryConfig(),
    )
    return QueryExecutor(sink, context)


def run_engine_overhead_experiment(n_rows: int = 100_000) -> list[dict]:
    """The single-query 100k-row pipeline: rows/sec through five operators."""
    engine = _build_engine(n_rows)
    executor = _build_pipeline(engine, "bench-e13")
    started = time.perf_counter()
    executor.run()
    wall = time.perf_counter() - started
    results = executor.root.results_table
    expected_groups = min(N_CATEGORIES, n_rows)
    if len(results) != expected_groups:
        raise AssertionError(f"expected {expected_groups} groups, got {len(results)}")
    baseline = PRE_PR_BASELINE["pipeline_100k"]
    pr3 = PR3_BATCHED_BASELINE["pipeline_100k"]
    row = {
        "rows": n_rows,
        "wall_seconds": round(wall, 3),
        "rows_per_sec": round(n_rows / wall),
        "executor_passes": executor.metrics.passes,
        "groups_out": len(results),
        "baseline_rows_per_sec": baseline["rows_per_sec"],
        "speedup_vs_baseline": (
            round((n_rows / wall) / baseline["rows_per_sec"], 2)
            if baseline["rows_per_sec"]
            else None
        ),
        "pr3_rows_per_sec": pr3["rows_per_sec"],
        "speedup_vs_pr3": round((n_rows / wall) / pr3["rows_per_sec"], 2),
    }
    return [row]


def run_concurrent_overhead_experiment(n_queries: int = 16, n_rows: int = 20_000) -> list[dict]:
    """16 concurrent local pipelines driven by the engine scheduler."""
    engine = _build_engine(n_rows)
    scheduler = EngineScheduler(engine.clock, engine.task_manager)
    handles = []
    for q in range(n_queries):
        executor = _build_pipeline(engine, f"bench-e13-q{q}", join=False)
        handle = QueryHandle(
            f"bench-e13-q{q}", "<local pipeline>", executor, executor.root.results_table
        )
        handles.append(scheduler.submit(handle))
    started = time.perf_counter()
    while scheduler.step():
        pass
    wall = time.perf_counter() - started
    if not all(handle.is_complete for handle in handles):
        raise AssertionError("not every concurrent query completed")
    total_rows = n_queries * n_rows
    baseline = PRE_PR_BASELINE["concurrent_16q"]
    pr3 = PR3_BATCHED_BASELINE["concurrent_16q"]
    row = {
        "queries": n_queries,
        "rows_per_query": n_rows,
        "total_rows": total_rows,
        "wall_seconds": round(wall, 3),
        "rows_per_sec": round(total_rows / wall),
        "scheduler_passes": scheduler.metrics.passes,
        "baseline_rows_per_sec": baseline["rows_per_sec"],
        "speedup_vs_baseline": (
            round((total_rows / wall) / baseline["rows_per_sec"], 2)
            if baseline["rows_per_sec"]
            else None
        ),
        "pr3_rows_per_sec": pr3["rows_per_sec"],
        "speedup_vs_pr3": round((total_rows / wall) / pr3["rows_per_sec"], 2),
    }
    return [row]


# -- pytest entry points (the CI wall-clock regression gate) ------------------

#: Wall-clock budgets for the columnar tier, run at the *recorded* benchmark
#: sizes so the gates guard the new level: both sit well below the PR 3
#: batched-plane walls (0.365s / 0.755s) with ~5x headroom over the columnar
#: walls (~0.06s each).  Tripping one means the engine fell off the columnar
#: fast path — e.g. an operator silently falling back to per-row exchange.
COLUMNAR_PIPELINE_GATE_SECONDS = 0.30
COLUMNAR_CONCURRENT_GATE_SECONDS = 0.50


def test_e13_engine_overhead_quick(once):
    rows = once(run_engine_overhead_experiment)
    print_table(
        "E13: crowd-free scan→filter→join→sort→aggregate (columnar tier: 100k rows)",
        ["rows", "wall_seconds", "rows_per_sec", "executor_passes", "groups_out"],
        rows,
    )
    assert rows[0]["groups_out"] == N_CATEGORIES
    assert rows[0]["wall_seconds"] < COLUMNAR_PIPELINE_GATE_SECONDS


def test_e13_concurrent_quick(once):
    rows = once(run_concurrent_overhead_experiment)
    print_table(
        "E13: 16 concurrent local pipelines (columnar tier: 20k rows each)",
        ["queries", "total_rows", "wall_seconds", "rows_per_sec", "scheduler_passes"],
        rows,
    )
    assert rows[0]["wall_seconds"] < COLUMNAR_CONCURRENT_GATE_SECONDS
