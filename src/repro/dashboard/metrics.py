"""Data model behind the Query Status Dashboard (Figure 2).

The dashboard "displays the current budget and estimates for total query
cost" and "describes the benefits gained from two optimizations: caching of
previously executed UDFs on a tuple, and the use of classifiers in place of
humans for various HITs" (Section 4.1).  :class:`QueryDashboardSnapshot`
captures those numbers for one query at one instant; the rendering layer in
:mod:`repro.dashboard.dashboard` turns snapshots into the text view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OperatorSnapshot", "QueryDashboardSnapshot"]


@dataclass(frozen=True)
class OperatorSnapshot:
    """Progress counters for one operator in the running plan."""

    name: str
    depth: int
    rows_in: int
    rows_out: int
    tasks_created: int
    tasks_completed: int
    outstanding_tasks: int


@dataclass(frozen=True)
class QueryDashboardSnapshot:
    """Everything the dashboard shows for one query at one point in time."""

    query_id: str
    sql: str
    status: str
    simulated_time: float
    results_emitted: int
    # Money
    budget: float | None
    spent: float
    committed: float
    estimated_total_cost: float
    remaining_budget: float | None
    # Crowd activity
    hits_posted: int
    tasks_submitted: int
    tasks_completed: int
    open_hits: int
    # Optimization benefits (Section 4.1)
    cache_hits: int
    cache_savings: float
    model_answers: int
    model_savings: float
    # Latency
    elapsed_seconds: float
    estimated_latency: float
    # Plan progress
    operators: tuple[OperatorSnapshot, ...] = field(default_factory=tuple)
    # Engine scheduler view: admission state ("active" / "queued" /
    # "finished") and the query's lifecycle events ("submitted@0s", ...).
    scheduler_state: str = ""
    lifecycle: tuple[str, ...] = field(default_factory=tuple)
    # Engine-wide run-loop counters: scheduling passes, clock advances, and
    # how many of those advances were no-ops (marketplace bookkeeping events
    # that woke no query) — the event-driven control plane absorbs those
    # without a full pass, so a high no-op share is healthy, not wasteful.
    scheduler_passes: int = 0
    clock_advances: int = 0
    noop_clock_advances: int = 0
    # Adaptive re-optimization: the initial plan choice plus every mid-query
    # strategy swap the replanner applied, oldest first.
    plan_changes: tuple[str, ...] = field(default_factory=tuple)
    # Worker quality control.  Reputations and probe/wave counters describe
    # the whole marketplace (engine-wide), not this query alone — workers and
    # HITs are shared across concurrent queries.  Zero / None while quality
    # control is off.
    workers_tracked: int = 0
    mean_worker_accuracy: float | None = None
    flagged_workers: int = 0
    gold_probes_posted: int = 0
    early_stopped_tasks: int = 0
    # Fault tolerance (engine-wide counters; zero without fault injection).
    fault_profile: str = ""
    hits_expired: int = 0
    assignments_abandoned: int = 0
    late_submissions_dropped: int = 0
    duplicate_submissions_ignored: int = 0
    tasks_requeued: int = 0
    tasks_exhausted: int = 0
    # Answer tier (engine-wide): the shared cache's population and churn,
    # plus how many learned models are trusted to answer in place of the
    # crowd.  Zero while the cache is empty and no model has earned trust.
    cache_entries: int = 0
    cache_expirations: int = 0
    cache_admissions_rejected: int = 0
    cache_entries_imported: int = 0
    cross_shard_hits: int = 0
    trusted_models: int = 0
    # Overload protection (engine-wide; all zero/empty with the knobs off).
    # Admission rejections and sheds, deadline outcomes, pressure-mode
    # entries, and the marketplace circuit breaker's state line.
    queries_rejected: int = 0
    queries_shed: int = 0
    deadline_misses: int = 0
    queries_degraded: int = 0
    queries_pressured: int = 0
    breaker_state: str = ""
    breaker_trips: int = 0
    breaker_posts_blocked: int = 0

    @property
    def budget_utilisation(self) -> float | None:
        """Fraction of the budget spent so far (None when unbudgeted)."""
        if self.budget is None or self.budget == 0:
            return None
        return min(self.spent / self.budget, 1.0)

    @property
    def total_savings(self) -> float:
        """Dollars saved by the cache and the task model together."""
        return self.cache_savings + self.model_savings
