"""Merged dashboard for a sharded cluster (Figure 2, fleet edition).

The per-engine :class:`~repro.dashboard.dashboard.QueryDashboard` renders one
marketplace.  A cluster runs N of them, so the coordinator collects every
shard's rendered panel plus its statistics report and this module stitches
them into one view: a cluster header with cross-shard totals (queries by
status, spend, HITs, batching, memory), then each shard's own dashboard
under a shard banner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle: coordinator imports us
    from repro.cluster.coordinator import ClusterStats

__all__ = ["render_cluster"]


def _count_statuses(queries: dict[str, dict[str, Any]]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for report in queries.values():
        counts[report["status"]] = counts.get(report["status"], 0) + 1
    return counts


def render_cluster(stats: "ClusterStats", panels: list[dict[str, Any]]) -> str:
    """One text dashboard for the whole cluster.

    ``stats`` is the coordinator's merged :class:`ClusterStats`; ``panels``
    are the per-shard ``dashboard`` op replies (``{"shard", "text"}``).
    """
    totals = stats.totals
    statuses = _count_statuses(stats.queries)
    status_line = (
        ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
        or "none"
    )
    lines = [
        f"=== Qurk cluster: {len(stats.per_shard)} shard(s), "
        f"{int(totals.get('queries', 0))} query(ies) ===",
        f"queries: {status_line}",
        f"crowd spend: ${totals.get('total_cost', 0.0):.2f}  "
        f"HITs posted: {int(totals.get('hits_posted', 0))} "
        f"(cross-query {int(totals.get('cross_query_hits', 0))}, "
        f"expired {int(totals.get('hits_expired', 0))})",
        f"tasks: {int(totals.get('tasks_submitted', 0))} submitted, "
        f"{int(totals.get('tasks_completed', 0))} completed, "
        f"{int(totals.get('cache_answers', 0))} from cache, "
        f"{int(totals.get('model_answers', 0))} from task models",
        f"scheduler: {int(totals.get('scheduler_passes', 0))} passes, "
        f"{int(totals.get('clock_advances', 0))} clock advances  "
        f"simulated time: {totals.get('simulated_time', 0.0):.1f}s",
        f"memory: {stats.peak_rss_kb_sum} KiB across workers "
        f"(max shard {stats.peak_rss_kb_max} KiB)",
    ]
    overload = (
        int(totals.get("queries_rejected", 0))
        + int(totals.get("queries_shed", 0))
        + int(totals.get("deadline_misses", 0))
        + int(totals.get("queries_degraded", 0))
        + int(totals.get("breaker_trips", 0))
    )
    if overload or stats.rebalanced:
        lines.append(
            f"overload: rejected {int(totals.get('queries_rejected', 0))}, "
            f"shed {int(totals.get('queries_shed', 0))}, "
            f"deadline misses {int(totals.get('deadline_misses', 0))}, "
            f"degraded {int(totals.get('queries_degraded', 0))}, "
            f"breaker trips {int(totals.get('breaker_trips', 0))}, "
            f"rebalanced {stats.rebalanced}"
        )
    for record in stats.health:
        age = record.get("heartbeat_age")
        age_text = "never" if age is None else f"{age:.1f}s ago"
        lines.append(
            f"health shard {record['shard']}: "
            f"{'ok' if record.get('healthy', True) else 'DEGRADED'}, "
            f"heartbeat {age_text}, "
            f"op latency {record.get('latency_ewma', 0.0) * 1000:.1f}ms, "
            f"{record.get('crashes', 0)} crash(es), "
            f"queue depth {record.get('queue_depth', 0)}"
        )
    for panel in sorted(panels, key=lambda p: p["shard"]):
        lines.append("")
        lines.append(f"--- shard {panel['shard']} ---")
        lines.append(panel["text"].rstrip("\n"))
    return "\n".join(lines)
