"""The Query Status Dashboard of Figure 2 (Section 4.1)."""

from repro.dashboard.dashboard import QueryDashboard
from repro.dashboard.metrics import OperatorSnapshot, QueryDashboardSnapshot

__all__ = ["QueryDashboard", "QueryDashboardSnapshot", "OperatorSnapshot"]
