"""The Query Status Dashboard (Figure 2, Section 4.1).

"The Query Status Dashboard provides a window into the system internals and
will give the audience a sense of the time, budget, and optimization
considerations that go into executing a Qurk query."

:class:`QueryDashboard` takes snapshots of running (or finished) queries —
budget vs spend, cost estimates, cache and classifier savings, per-operator
progress — and renders them as text, the terminal-friendly equivalent of the
demo's web dashboard.
"""

from __future__ import annotations

from repro.core.exec.handle import QueryHandle
from repro.dashboard.metrics import OperatorSnapshot, QueryDashboardSnapshot
from repro.errors import DashboardError

__all__ = ["QueryDashboard"]


class QueryDashboard:
    """Builds and renders dashboard snapshots for an engine's queries."""

    def __init__(self, engine) -> None:
        # Typed loosely to avoid an import cycle with repro.engine; the
        # engine exposes .queries, .statistics, .budget_ledger, .platform,
        # .optimizer, .task_models and .clock.
        self.engine = engine

    # -- snapshots ------------------------------------------------------------------------

    def snapshot(self, query_id: str) -> QueryDashboardSnapshot:
        """Capture the dashboard view of one query right now."""
        handle = self.engine.queries.get(query_id)
        if handle is None:
            known = ", ".join(sorted(self.engine.queries)) or "<none>"
            raise DashboardError(f"unknown query {query_id!r}; known queries: {known}")
        return self._snapshot_of(handle)

    def snapshots(self) -> list[QueryDashboardSnapshot]:
        """Snapshots of every query the engine has started, oldest first."""
        return [self._snapshot_of(handle) for handle in self.engine.queries.values()]

    def _snapshot_of(self, handle: QueryHandle) -> QueryDashboardSnapshot:
        stats = handle.stats
        estimate = self.engine.optimizer.estimate_plan_cost(handle.executor.root)
        budget = self.engine.budget_ledger.budget(handle.query_id)
        model_savings = self.engine.task_models.total_savings()
        operators = tuple(self._operator_snapshots(handle))
        scheduler = getattr(self.engine, "scheduler", None)
        scheduler_state = ""
        lifecycle: tuple[str, ...] = ()
        scheduler_passes = clock_advances = noop_clock_advances = 0
        if scheduler is not None:
            scheduler_state = scheduler.state_of(handle.query_id)
            lifecycle = tuple(
                event.describe() for event in scheduler.events_for(handle.query_id)
            )
            scheduler_passes = scheduler.metrics.passes
            clock_advances = scheduler.metrics.clock_advances
            noop_clock_advances = scheduler.metrics.noop_clock_advances
        plan_changes = tuple(change.describe() for change in handle.plan_history())
        platform_stats = self.engine.platform.stats
        manager_stats = self.engine.task_manager.stats
        reputation = getattr(self.engine, "reputation", None)
        workers_tracked = 0
        mean_worker_accuracy = None
        flagged_workers = 0
        if reputation is not None:
            quality_summary = reputation.summary()
            workers_tracked = quality_summary["workers_tracked"]
            mean_worker_accuracy = quality_summary["mean_accuracy"]
            flagged_workers = quality_summary["flagged"]
        fault_profile = getattr(self.engine.platform, "faults", None)
        breaker = getattr(self.engine, "breaker", None)
        cache_stats = self.engine.task_cache.stats
        trusted_models = sum(
            1
            for model in self.engine.task_models.models().values()
            if getattr(model, "is_trusted", False)
        )
        return QueryDashboardSnapshot(
            query_id=handle.query_id,
            sql=handle.sql,
            status=handle.status.value,
            simulated_time=self.engine.clock.now,
            results_emitted=stats.results_emitted,
            budget=budget.limit,
            spent=stats.spent,
            committed=budget.committed,
            estimated_total_cost=estimate.dollars,
            remaining_budget=budget.remaining,
            hits_posted=stats.hits_posted,
            tasks_submitted=stats.tasks_submitted,
            tasks_completed=stats.tasks_completed,
            open_hits=self.engine.platform.open_hit_count(),
            cache_hits=stats.cache_hits,
            cache_savings=stats.dollars_saved_cache,
            model_answers=stats.model_answers,
            model_savings=model_savings,
            elapsed_seconds=self.engine.clock.now - stats.started_at,
            estimated_latency=estimate.latency_seconds,
            operators=operators,
            scheduler_state=scheduler_state,
            lifecycle=lifecycle,
            scheduler_passes=scheduler_passes,
            clock_advances=clock_advances,
            noop_clock_advances=noop_clock_advances,
            plan_changes=plan_changes,
            workers_tracked=workers_tracked,
            mean_worker_accuracy=mean_worker_accuracy,
            flagged_workers=flagged_workers,
            gold_probes_posted=manager_stats.gold_probes_posted,
            early_stopped_tasks=manager_stats.early_stopped_tasks,
            fault_profile=(
                fault_profile.describe()
                if fault_profile is not None and fault_profile.enabled
                else ""
            ),
            hits_expired=platform_stats.hits_expired,
            assignments_abandoned=platform_stats.assignments_abandoned,
            late_submissions_dropped=platform_stats.late_submissions_dropped,
            duplicate_submissions_ignored=platform_stats.duplicate_submissions_ignored,
            tasks_requeued=manager_stats.tasks_requeued,
            tasks_exhausted=manager_stats.tasks_exhausted,
            cache_entries=cache_stats.entries,
            cache_expirations=cache_stats.expirations,
            cache_admissions_rejected=cache_stats.admissions_rejected,
            cache_entries_imported=cache_stats.entries_imported,
            cross_shard_hits=cache_stats.cross_shard_hits,
            trusted_models=trusted_models,
            queries_rejected=(
                scheduler.metrics.queries_rejected if scheduler is not None else 0
            ),
            queries_shed=scheduler.metrics.queries_shed if scheduler is not None else 0,
            deadline_misses=(
                scheduler.metrics.deadline_misses if scheduler is not None else 0
            ),
            queries_degraded=(
                scheduler.metrics.queries_degraded if scheduler is not None else 0
            ),
            queries_pressured=(
                scheduler.metrics.queries_pressured if scheduler is not None else 0
            ),
            breaker_state=breaker.state if breaker is not None else "",
            breaker_trips=breaker.stats.trips if breaker is not None else 0,
            breaker_posts_blocked=(
                breaker.stats.posts_blocked if breaker is not None else 0
            ),
        )

    def _operator_snapshots(self, handle: QueryHandle) -> list[OperatorSnapshot]:
        snapshots: list[OperatorSnapshot] = []

        def visit(operator, depth: int) -> None:
            snapshots.append(
                OperatorSnapshot(
                    name=operator.name,
                    depth=depth,
                    rows_in=operator.metrics.rows_in,
                    rows_out=operator.metrics.rows_out,
                    tasks_created=operator.metrics.tasks_created,
                    tasks_completed=operator.metrics.tasks_completed,
                    outstanding_tasks=operator.outstanding_tasks,
                )
            )
            for child in operator.children:
                visit(child, depth + 1)

        visit(handle.executor.root, 0)
        return snapshots

    # -- rendering --------------------------------------------------------------------------

    def render(self, query_id: str) -> str:
        """Render one query's dashboard as text (the Figure 2 panel)."""
        return self.render_snapshot(self.snapshot(query_id))

    def render_all(self) -> str:
        """Render every query's dashboard, separated by blank lines."""
        return "\n\n".join(self.render_snapshot(snapshot) for snapshot in self.snapshots())

    @staticmethod
    def render_snapshot(snapshot: QueryDashboardSnapshot) -> str:
        lines = [
            f"=== Qurk Query Status: {snapshot.query_id} [{snapshot.status}] ===",
            f"SQL: {snapshot.sql.strip()}" if snapshot.sql else "SQL: <programmatic plan>",
            (
                f"simulated time {snapshot.simulated_time:,.0f}s"
                f" | elapsed {snapshot.elapsed_seconds:,.0f}s"
                f" | est. completion {snapshot.estimated_latency:,.0f}s"
            ),
            (
                f"results emitted: {snapshot.results_emitted}"
                f" | HITs posted: {snapshot.hits_posted} (open: {snapshot.open_hits})"
                f" | tasks {snapshot.tasks_completed}/{snapshot.tasks_submitted}"
            ),
        ]
        budget_text = "unlimited" if snapshot.budget is None else f"${snapshot.budget:,.2f}"
        utilisation = snapshot.budget_utilisation
        utilisation_text = "" if utilisation is None else f" ({utilisation:.0%} used)"
        lines.append(
            f"budget: {budget_text}{utilisation_text}"
            f" | spent: ${snapshot.spent:,.2f}"
            f" | committed: ${snapshot.committed:,.2f}"
            f" | est. total: ${snapshot.estimated_total_cost:,.2f}"
        )
        lines.append(
            f"savings — cache: ${snapshot.cache_savings:,.2f} ({snapshot.cache_hits} hits)"
            f" | classifier: ${snapshot.model_savings:,.2f} ({snapshot.model_answers} answers)"
        )
        if snapshot.cache_entries or snapshot.trusted_models or snapshot.cross_shard_hits:
            tier = (
                f"answer tier (engine-wide): {snapshot.cache_entries} entries"
                f" | expired {snapshot.cache_expirations}"
                f" | rejected {snapshot.cache_admissions_rejected}"
            )
            if snapshot.cache_entries_imported or snapshot.cross_shard_hits:
                tier += (
                    f" | imported {snapshot.cache_entries_imported}"
                    f" | cross-shard hits {snapshot.cross_shard_hits}"
                )
            if snapshot.trusted_models:
                tier += f" | trusted models {snapshot.trusted_models}"
            lines.append(tier)
        if snapshot.workers_tracked:
            accuracy = (
                f"{snapshot.mean_worker_accuracy:.0%}"
                if snapshot.mean_worker_accuracy is not None
                else "n/a"
            )
            lines.append(
                f"worker quality (engine-wide): {snapshot.workers_tracked} tracked"
                f" | mean accuracy {accuracy}"
                f" | flagged {snapshot.flagged_workers}"
                f" | gold probes {snapshot.gold_probes_posted}"
                f" | early-stopped tasks {snapshot.early_stopped_tasks}"
            )
        if snapshot.fault_profile:
            lines.append(
                f"faults, engine-wide ({snapshot.fault_profile}):"
                f" expired HITs {snapshot.hits_expired}"
                f" | abandoned {snapshot.assignments_abandoned}"
                f" | late dropped {snapshot.late_submissions_dropped}"
                f" | duplicates ignored {snapshot.duplicate_submissions_ignored}"
                f" | requeued tasks {snapshot.tasks_requeued}"
                f" | exhausted {snapshot.tasks_exhausted}"
            )
        overload_counts = (
            snapshot.queries_rejected
            or snapshot.queries_shed
            or snapshot.deadline_misses
            or snapshot.queries_degraded
            or snapshot.queries_pressured
            # A recovered breaker (closed again, but with trips on record)
            # is still part of the run's story.
            or snapshot.breaker_trips
            or snapshot.breaker_posts_blocked
        )
        if overload_counts or snapshot.breaker_state not in ("", "closed"):
            line = (
                f"overload (engine-wide): rejected {snapshot.queries_rejected}"
                f" | shed {snapshot.queries_shed}"
                f" | deadline misses {snapshot.deadline_misses}"
                f" | degraded {snapshot.queries_degraded}"
                f" | pressured {snapshot.queries_pressured}"
            )
            if snapshot.breaker_state:
                line += (
                    f" | breaker {snapshot.breaker_state}"
                    f" (trips {snapshot.breaker_trips},"
                    f" blocked {snapshot.breaker_posts_blocked})"
                )
            lines.append(line)
        if snapshot.scheduler_state:
            lifecycle = " -> ".join(snapshot.lifecycle) or "<no events>"
            lines.append(f"scheduler: {snapshot.scheduler_state} | {lifecycle}")
            lines.append(
                f"run loop (engine-wide): {snapshot.scheduler_passes} passes"
                f" | {snapshot.clock_advances} clock advances"
                f" ({snapshot.noop_clock_advances} absorbed as no-ops)"
            )
        for change in snapshot.plan_changes:
            lines.append(f"plan change: {change}")
        lines.append("plan:")
        for operator in snapshot.operators:
            indent = "  " * (operator.depth + 1)
            lines.append(
                f"{indent}{operator.name}: out={operator.rows_out}"
                f" tasks={operator.tasks_completed}/{operator.tasks_created}"
                f" outstanding={operator.outstanding_tasks}"
            )
        return "\n".join(lines)
