"""Schemas and columns for the Qurk storage engine.

A :class:`Schema` is an ordered collection of :class:`Column` objects.  Rows
(:mod:`repro.storage.row`) are validated against a schema on insertion.
Schemas support the operations query processing needs: projection, renaming
with a table qualifier, concatenation (for joins), and extension (for the
schema-widening UDF operator of Query 1).

Schemas sit on the engine's per-row hot path — every named value access
resolves a column, and joins/projections derive a schema per emitted row —
so resolution is backed by a name→index map built once per schema, and all
derivations (:meth:`Schema.project`, :meth:`Schema.concat`,
:meth:`Schema.extend`, :meth:`Schema.qualified`) are memoized per instance:
deriving the same shape twice returns the *same* schema object, which lets
rows share one schema per operator output instead of allocating one per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.types import DataType, coerce_value

__all__ = ["Column", "Schema"]

#: Sentinel index for unqualified names shared by several columns.
_AMBIGUOUS = -1


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, optionally qualified as ``table.column``.
    data_type:
        Logical type of values stored in the column.
    nullable:
        Whether NULL values are accepted (default True, as in the paper's
        setting where crowd answers may be missing).
    """

    name: str
    data_type: DataType = DataType.ANY
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    @property
    def unqualified_name(self) -> str:
        """The column name without any ``table.`` qualifier."""
        return self.name.rsplit(".", 1)[-1]

    @property
    def qualifier(self) -> str | None:
        """The table qualifier, or None when the name is unqualified."""
        if "." in self.name:
            return self.name.rsplit(".", 1)[0]
        return None

    def with_qualifier(self, qualifier: str) -> "Column":
        """Return a copy of this column qualified as ``qualifier.name``."""
        return Column(f"{qualifier}.{self.unqualified_name}", self.data_type, self.nullable)

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column with a new name."""
        return Column(new_name, self.data_type, self.nullable)

    def validate(self, value: Any) -> Any:
        """Validate and coerce ``value`` for storage in this column."""
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return coerce_value(value, self.data_type)

    def __str__(self) -> str:
        return f"{self.name} {self.data_type}"


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of columns.

    Column lookup accepts either the exact (possibly qualified) name or an
    unambiguous unqualified name, mirroring SQL name resolution.  Resolution
    goes through a dict built once at construction; exact (qualified) names
    win over unqualified ones, and ambiguous unqualified names map to a
    sentinel so they still raise.
    """

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        lookup: dict[str, int] = {}
        seen: set[str] = set()
        dupes: set[str] = set()
        for i, column in enumerate(self.columns):
            name = column.name
            if name in seen:
                dupes.add(name)
            seen.add(name)
            unqualified = column.unqualified_name
            lookup[unqualified] = _AMBIGUOUS if unqualified in lookup else i
        if dupes:
            raise SchemaError(f"duplicate column names: {', '.join(sorted(dupes))}")
        # Exact (qualified) matches overwrite unqualified candidates: they win.
        for i, column in enumerate(self.columns):
            lookup[column.name] = i
        # The dataclass is frozen for value semantics; the caches below are
        # derived data, invisible to __eq__/__hash__.
        object.__setattr__(self, "_lookup", lookup)
        object.__setattr__(self, "_names", tuple(c.name for c in self.columns))
        object.__setattr__(
            self, "_shape", tuple((c.data_type, c.nullable) for c in self.columns)
        )
        object.__setattr__(self, "_derived", {})

    # -- construction -------------------------------------------------------

    @classmethod
    def of(cls, *columns: Column | tuple[str, DataType] | str) -> "Schema":
        """Build a schema from columns, ``(name, type)`` pairs, or bare names."""
        built: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                built.append(spec)
            elif isinstance(spec, tuple):
                name, data_type = spec
                built.append(Column(name, data_type))
            elif isinstance(spec, str):
                built.append(Column(spec))
            else:  # pragma: no cover - defensive
                raise SchemaError(f"cannot build a column from {spec!r}")
        return cls(tuple(built))

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        index = self._lookup.get(name)
        return index is not None and index != _AMBIGUOUS

    @property
    def names(self) -> tuple[str, ...]:
        """All column names, in order."""
        return self._names

    def column(self, name: str) -> Column:
        """Return the column called ``name`` (qualified or unambiguous)."""
        return self.columns[self.index_of(name)]

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a column index.

        Exact (qualified) matches win; otherwise the unqualified name must be
        unambiguous across the schema.
        """
        index = self._lookup.get(name)
        if index is None:
            raise SchemaError(f"unknown column {name!r}; have {', '.join(self._names)}")
        if index == _AMBIGUOUS:
            raise SchemaError(f"column reference {name!r} is ambiguous")
        return index

    def try_index_of(self, name: str) -> int | None:
        """Like :meth:`index_of`, but returns None for unknown/ambiguous names."""
        index = self._lookup.get(name)
        return None if index is None or index == _AMBIGUOUS else index

    def indices_of(self, names: Iterable[str]) -> tuple[int, ...]:
        """Resolve several names to indices at once (memoized per name tuple)."""
        key = ("indices", tuple(names))
        cached = self._derived.get(key)
        if cached is None:
            cached = tuple(self.index_of(name) for name in key[1])
            self._remember(key, cached)
        return cached

    # -- derivation ---------------------------------------------------------
    #
    # Each derivation is memoized on this instance: operators derive rows in
    # a loop from the same input schema(s), so the second and later calls hit
    # the cache and every derived row shares one schema object per shape.
    # The memo is a bounded cache — an engine-lifetime schema (a base
    # table's) would otherwise pin every query's derived schemas forever.

    _DERIVED_CACHE_LIMIT = 512

    def _remember(self, key: tuple, value: Any) -> None:
        if len(self._derived) >= self._DERIVED_CACHE_LIMIT:
            self._derived.clear()
        self._derived[key] = value

    def qualified(self, qualifier: str) -> "Schema":
        """Return a copy of this schema with every column qualified."""
        key = ("qualified", qualifier)
        cached = self._derived.get(key)
        if cached is None:
            cached = Schema(tuple(c.with_qualifier(qualifier) for c in self.columns))
            self._remember(key, cached)
        return cached

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema containing only the named columns, in the given order."""
        key = ("project", tuple(names))
        cached = self._derived.get(key)
        if cached is None:
            cached = Schema(tuple(self.column(name) for name in key[1]))
            self._remember(key, cached)
        return cached

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by join operators).

        Memoized by the identity of ``other`` — hashing a whole schema per
        joined row costs more than the concat itself.  The memo entry keeps a
        strong reference to ``other``, so a live entry's id cannot be
        recycled by a different schema (eviction drops pin and entry
        together, so a recycled id can only ever miss).
        """
        key = ("concat", id(other))
        cached = self._derived.get(key)
        if cached is None or cached[0] is not other:
            cached = (other, Schema(self.columns + other.columns))
            self._remember(key, cached)
        return cached[1]

    def extend(self, *new_columns: Column) -> "Schema":
        """Return a schema with extra columns appended (Query 1 schema widening).

        Memoized by column identity (operators extend with one fixed column
        tuple per open); the memo entry pins the column objects, so a live
        entry's ids can never be recycled by different columns.
        """
        key = ("extend", tuple(map(id, new_columns)))
        cached = self._derived.get(key)
        if cached is None:
            cached = (new_columns, Schema(self.columns + new_columns))
            self._remember(key, cached)
        return cached[1]

    def same_shape_as(self, other: "Schema") -> bool:
        """True when both schemas have identical column types and nullability.

        Rows validated against one schema of a shape can be rebound to any
        other schema of the same shape without re-coercing values.
        """
        return self._shape == other._shape

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"
