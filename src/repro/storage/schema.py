"""Schemas and columns for the Qurk storage engine.

A :class:`Schema` is an ordered collection of :class:`Column` objects.  Rows
(:mod:`repro.storage.row`) are validated against a schema on insertion.
Schemas support the operations query processing needs: projection, renaming
with a table qualifier, concatenation (for joins), and extension (for the
schema-widening UDF operator of Query 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.types import DataType, coerce_value

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, optionally qualified as ``table.column``.
    data_type:
        Logical type of values stored in the column.
    nullable:
        Whether NULL values are accepted (default True, as in the paper's
        setting where crowd answers may be missing).
    """

    name: str
    data_type: DataType = DataType.ANY
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    @property
    def unqualified_name(self) -> str:
        """The column name without any ``table.`` qualifier."""
        return self.name.rsplit(".", 1)[-1]

    @property
    def qualifier(self) -> str | None:
        """The table qualifier, or None when the name is unqualified."""
        if "." in self.name:
            return self.name.rsplit(".", 1)[0]
        return None

    def with_qualifier(self, qualifier: str) -> "Column":
        """Return a copy of this column qualified as ``qualifier.name``."""
        return Column(f"{qualifier}.{self.unqualified_name}", self.data_type, self.nullable)

    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column with a new name."""
        return Column(new_name, self.data_type, self.nullable)

    def validate(self, value: Any) -> Any:
        """Validate and coerce ``value`` for storage in this column."""
        if value is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return coerce_value(value, self.data_type)

    def __str__(self) -> str:
        return f"{self.name} {self.data_type}"


@dataclass(frozen=True)
class Schema:
    """An ordered, immutable collection of columns.

    Column lookup accepts either the exact (possibly qualified) name or an
    unambiguous unqualified name, mirroring SQL name resolution.
    """

    columns: tuple[Column, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(dupes)}")

    # -- construction -------------------------------------------------------

    @classmethod
    def of(cls, *columns: Column | tuple[str, DataType] | str) -> "Schema":
        """Build a schema from columns, ``(name, type)`` pairs, or bare names."""
        built: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                built.append(spec)
            elif isinstance(spec, tuple):
                name, data_type = spec
                built.append(Column(name, data_type))
            elif isinstance(spec, str):
                built.append(Column(spec))
            else:  # pragma: no cover - defensive
                raise SchemaError(f"cannot build a column from {spec!r}")
        return cls(tuple(built))

    # -- inspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    @property
    def names(self) -> tuple[str, ...]:
        """All column names, in order."""
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name`` (qualified or unambiguous)."""
        return self.columns[self.index_of(name)]

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a column index.

        Exact (qualified) matches win; otherwise the unqualified name must be
        unambiguous across the schema.
        """
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        matches = [i for i, col in enumerate(self.columns) if col.unqualified_name == name]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchemaError(f"column reference {name!r} is ambiguous")
        raise SchemaError(f"unknown column {name!r}; have {', '.join(self.names)}")

    # -- derivation ---------------------------------------------------------

    def qualified(self, qualifier: str) -> "Schema":
        """Return a copy of this schema with every column qualified."""
        return Schema(tuple(c.with_qualifier(qualifier) for c in self.columns))

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema containing only the named columns, in the given order."""
        return Schema(tuple(self.column(name) for name in names))

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (used by join operators)."""
        return Schema(self.columns + other.columns)

    def extend(self, *new_columns: Column) -> "Schema":
        """Return a schema with extra columns appended (Query 1 schema widening)."""
        return Schema(self.columns + tuple(new_columns))

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"
