"""Row representation used throughout the storage engine and executor.

A :class:`Row` is an immutable mapping from column name to value, bound to a
:class:`~repro.storage.schema.Schema`.  Operators derive new rows rather than
mutating existing ones, which keeps asynchronous execution (where a tuple may
simultaneously sit in several operator input queues) safe.

Values are validated (coerced) exactly once, when data enters the engine
through the public constructor.  Every derivation of an already-validated row
(:meth:`Row.project`, :meth:`Row.concat`, :meth:`Row.extended`,
:meth:`Row.replaced`, :meth:`Row.with_schema`) goes through the trusted
:meth:`Row.unchecked` fast path, which skips re-validation — the values are
known-good, and the memoized schema derivations mean no new schema object is
allocated either.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.storage.schema import Column, Schema

__all__ = ["Row"]


class Row:
    """An immutable tuple of values bound to a schema.

    Values can be retrieved positionally (``row[0]``), by column name
    (``row["companies.name"]`` or ``row["name"]`` when unambiguous), or via
    :meth:`get` with a default.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Iterable[Any]):
        values = tuple(values)
        if len(values) != len(schema):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(schema)} columns"
            )
        self._schema = schema
        self._values = tuple(
            column.validate(value) for column, value in zip(schema.columns, values)
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def unchecked(cls, schema: Schema, values: tuple[Any, ...]) -> "Row":
        """Bind already-validated ``values`` to ``schema`` without re-coercion.

        The trusted fast path used by all row derivations: ``values`` must be
        a tuple of exactly ``len(schema)`` values that were previously
        validated against columns of the same types.  Callers holding
        arbitrary external data must use the validating constructor instead.
        """
        row = object.__new__(cls)
        row._schema = schema
        row._values = values
        return row

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from a name → value mapping; missing columns become NULL."""
        known = set(schema.names) | {c.unqualified_name for c in schema.columns}
        unknown = [k for k in mapping if k not in known]
        if unknown:
            raise SchemaError(f"values supplied for unknown columns: {unknown}")
        values = []
        for column in schema.columns:
            if column.name in mapping:
                values.append(mapping[column.name])
            elif column.unqualified_name in mapping:
                values.append(mapping[column.unqualified_name])
            else:
                values.append(None)
        return cls(schema, values)

    # -- access -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this row conforms to."""
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """All values, in schema order."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, key: int | str) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value of column ``name``, or ``default`` if absent.

        The common hit path is a single dict lookup; unknown and ambiguous
        names return ``default`` without raising/catching anything.
        """
        index = self._schema.try_index_of(name)
        return default if index is None else self._values[index]

    def to_dict(self) -> dict[str, Any]:
        """Return a plain ``{column name: value}`` dictionary."""
        return dict(zip(self._schema.names, self._values))

    # -- derivation ---------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Row":
        """Return a row containing only the named columns."""
        names = tuple(names)
        schema = self._schema.project(names)
        indices = self._schema.indices_of(names)
        values = self._values
        return Row.unchecked(schema, tuple(values[i] for i in indices))

    def concat(self, other: "Row") -> "Row":
        """Concatenate two rows (used by join operators)."""
        return Row.unchecked(
            self._schema.concat(other._schema), self._values + other._values
        )

    def extended(self, new_columns: Iterable[Column], new_values: Iterable[Any]) -> "Row":
        """Return a row with extra columns appended (Query 1 schema widening).

        The existing values are trusted; only the new values are validated.
        """
        new_columns = tuple(new_columns)
        new_values = tuple(new_values)
        if len(new_values) != len(new_columns):
            raise SchemaError(
                f"extended with {len(new_columns)} columns but {len(new_values)} values"
            )
        schema = self._schema.extend(*new_columns)
        validated = tuple(
            column.validate(value) for column, value in zip(new_columns, new_values)
        )
        return Row.unchecked(schema, self._values + validated)

    def replaced(self, name: str, value: Any) -> "Row":
        """Return a copy of this row with one column's value replaced."""
        index = self._schema.index_of(name)
        validated = self._schema.columns[index].validate(value)
        return Row.unchecked(
            self._schema, self._values[:index] + (validated,) + self._values[index + 1:]
        )

    def with_schema(self, schema: Schema) -> "Row":
        """Rebind this row's values to a different (same-width) schema.

        Rebinding between same-shaped schemas (e.g. a scan qualifying base
        rows with the table alias) reuses the validated values; a change of
        column types falls back to full validation.
        """
        if schema is self._schema or schema.same_shape_as(self._schema):
            return Row.unchecked(schema, self._values)
        return Row(schema, self._values)

    # -- equality / debugging ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._schema.names == other._schema.names and self._values == other._values

    def __hash__(self) -> int:
        try:
            return hash((self._schema.names, self._values))
        except TypeError:
            # Rows holding unhashable payloads (images, lists) fall back to id.
            return object.__hash__(self)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Row({parts})"
