"""Row representation used throughout the storage engine and executor.

A :class:`Row` is an immutable mapping from column name to value, bound to a
:class:`~repro.storage.schema.Schema`.  Operators derive new rows rather than
mutating existing ones, which keeps asynchronous execution (where a tuple may
simultaneously sit in several operator input queues) safe.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.storage.schema import Column, Schema

__all__ = ["Row"]


class Row:
    """An immutable tuple of values bound to a schema.

    Values can be retrieved positionally (``row[0]``), by column name
    (``row["companies.name"]`` or ``row["name"]`` when unambiguous), or via
    :meth:`get` with a default.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Iterable[Any]):
        values = tuple(values)
        if len(values) != len(schema):
            raise SchemaError(
                f"row has {len(values)} values but schema has {len(schema)} columns"
            )
        self._schema = schema
        self._values = tuple(
            column.validate(value) for column, value in zip(schema, values)
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_mapping(cls, schema: Schema, mapping: Mapping[str, Any]) -> "Row":
        """Build a row from a name → value mapping; missing columns become NULL."""
        known = set(schema.names) | {c.unqualified_name for c in schema}
        unknown = [k for k in mapping if k not in known]
        if unknown:
            raise SchemaError(f"values supplied for unknown columns: {unknown}")
        values = []
        for column in schema:
            if column.name in mapping:
                values.append(mapping[column.name])
            elif column.unqualified_name in mapping:
                values.append(mapping[column.unqualified_name])
            else:
                values.append(None)
        return cls(schema, values)

    # -- access -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema this row conforms to."""
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """All values, in schema order."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, key: int | str) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value of column ``name``, or ``default`` if absent."""
        try:
            return self[name]
        except SchemaError:
            return default

    def to_dict(self) -> dict[str, Any]:
        """Return a plain ``{column name: value}`` dictionary."""
        return dict(zip(self._schema.names, self._values))

    # -- derivation ---------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Row":
        """Return a row containing only the named columns."""
        names = list(names)
        schema = self._schema.project(names)
        return Row(schema, (self[name] for name in names))

    def concat(self, other: "Row") -> "Row":
        """Concatenate two rows (used by join operators)."""
        return Row(self._schema.concat(other.schema), self._values + other.values)

    def extended(self, new_columns: Iterable[Column], new_values: Iterable[Any]) -> "Row":
        """Return a row with extra columns appended (Query 1 schema widening)."""
        new_columns = tuple(new_columns)
        schema = self._schema.extend(*new_columns)
        return Row(schema, self._values + tuple(new_values))

    def replaced(self, name: str, value: Any) -> "Row":
        """Return a copy of this row with one column's value replaced."""
        index = self._schema.index_of(name)
        values = list(self._values)
        values[index] = value
        return Row(self._schema, values)

    def with_schema(self, schema: Schema) -> "Row":
        """Rebind this row's values to a different (same-width) schema."""
        return Row(schema, self._values)

    # -- equality / debugging ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._schema.names == other._schema.names and self._values == other._values

    def __hash__(self) -> int:
        try:
            return hash((self._schema.names, self._values))
        except TypeError:
            # Rows holding unhashable payloads (images, lists) fall back to id.
            return object.__hash__(self)

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Row({parts})"
