"""A small expression tree evaluated against rows.

The executor and planner manipulate expressions for projections, filter
predicates, and UDF invocations.  Crowd-powered UDFs (``findCEO``,
``samePerson``) are *not* evaluated here — the planner turns them into crowd
operators — but their call sites are represented as
:class:`FunctionCall`/:class:`FieldAccess` nodes so a query can be parsed and
analysed uniformly.
"""

from __future__ import annotations

import operator as _operator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.errors import ExpressionError
from repro.storage.row import Row

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.storage.batch import RowBatch
    from repro.storage.schema import Schema

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "FunctionCall",
    "FieldAccess",
    "Comparison",
    "BooleanOp",
    "Not",
    "Arithmetic",
    "compile_expression",
    "compile_batch_expression",
    "compile_batch_predicate",
    "walk",
    "find_calls",
]


class Expression:
    """Base class for expression tree nodes."""

    def evaluate(self, row: Row) -> Any:
        """Evaluate this expression against ``row``."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        """Child expressions, used by tree walks."""
        return ()

    def references(self) -> set[str]:
        """All column names referenced anywhere in this expression tree."""
        refs: set[str] = set()
        for node in walk(self):
            if isinstance(node, ColumnRef):
                refs.add(node.name)
        return refs


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column of the input row."""

    name: str

    def evaluate(self, row: Row) -> Any:
        return row[self.name]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a named function.

    If ``implementation`` is provided the call can be evaluated locally;
    otherwise evaluation raises, because the call refers to a crowd task that
    the planner must have rewritten into an operator before execution.
    """

    name: str
    args: tuple[Expression, ...]
    implementation: Callable[..., Any] | None = None

    def children(self) -> Sequence[Expression]:
        return self.args

    def evaluate(self, row: Row) -> Any:
        if self.implementation is None:
            raise ExpressionError(
                f"function {self.name!r} has no local implementation; "
                "crowd UDFs must be planned into operators before evaluation"
            )
        return self.implementation(*(arg.evaluate(row) for arg in self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class FieldAccess(Expression):
    """Access a named field of a tuple-valued expression (``findCEO(x).CEO``).

    Tuple-valued crowd UDFs return mappings or named tuples; the field is
    looked up by name at evaluation time.
    """

    base: Expression
    field: str

    def children(self) -> Sequence[Expression]:
        return (self.base,)

    def evaluate(self, row: Row) -> Any:
        value = self.base.evaluate(row)
        if value is None:
            return None
        if isinstance(value, dict):
            if self.field not in value:
                raise ExpressionError(f"tuple value has no field {self.field!r}")
            return value[self.field]
        if hasattr(value, self.field):
            return getattr(value, self.field)
        raise ExpressionError(
            f"cannot access field {self.field!r} of {type(value).__name__} value"
        )

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison with SQL NULL semantics (NULL compares to NULL → None)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, row: Row) -> bool | None:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BooleanOp(Expression):
    """AND / OR over two boolean sub-expressions, with NULL propagation."""

    op: str  # "and" | "or"
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ExpressionError(f"unknown boolean operator {self.op!r}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, row: Row) -> bool | None:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op == "and":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return bool(left) and bool(right)
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left) or bool(right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.upper()} {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation with NULL propagation."""

    operand: Expression

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, row: Row) -> bool | None:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not value

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic over numeric expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, row: Row) -> Any:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _ARITHMETIC[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ExpressionError(f"cannot compute {left!r} {self.op} {right!r}") from exc

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def compile_expression(expression: Expression, schema: "Schema") -> Callable[[Row], Any]:
    """Compile an expression to a callable with all column names pre-resolved.

    :meth:`Expression.evaluate` resolves every :class:`ColumnRef` by name on
    every call — a per-row dict lookup (and, pre-vectorization, a linear
    scan).  Operators on the local hot path instead compile their expressions
    once per open against their input schema; the compiled callable reads row
    values positionally and raises the same errors as interpretation for
    unknown/ambiguous names (at compile time) and type failures (at run
    time).
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row: value
    if isinstance(expression, ColumnRef):
        index = schema.index_of(expression.name)
        return lambda row: row._values[index]
    if isinstance(expression, Comparison):
        left = compile_expression(expression.left, schema)
        right = compile_expression(expression.right, schema)
        comparator = _COMPARATORS[expression.op]
        op = expression.op

        def compare(row: Row) -> bool | None:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return comparator(lhs, rhs)
            except TypeError as exc:
                raise ExpressionError(f"cannot compare {lhs!r} {op} {rhs!r}") from exc

        return compare
    if isinstance(expression, BooleanOp):
        left = compile_expression(expression.left, schema)
        right = compile_expression(expression.right, schema)
        if expression.op == "and":

            def conjoin(row: Row) -> bool | None:
                lhs = left(row)
                rhs = right(row)
                if lhs is False or rhs is False:
                    return False
                if lhs is None or rhs is None:
                    return None
                return bool(lhs) and bool(rhs)

            return conjoin

        def disjoin(row: Row) -> bool | None:
            lhs = left(row)
            rhs = right(row)
            if lhs is True or rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return bool(lhs) or bool(rhs)

        return disjoin
    if isinstance(expression, Not):
        operand = compile_expression(expression.operand, schema)

        def negate(row: Row) -> bool | None:
            value = operand(row)
            return None if value is None else not value

        return negate
    if isinstance(expression, Arithmetic):
        left = compile_expression(expression.left, schema)
        right = compile_expression(expression.right, schema)
        arith = _ARITHMETIC[expression.op]
        op = expression.op

        def apply(row: Row) -> Any:
            lhs = left(row)
            rhs = right(row)
            if lhs is None or rhs is None:
                return None
            try:
                return arith(lhs, rhs)
            except (TypeError, ZeroDivisionError) as exc:
                raise ExpressionError(f"cannot compute {lhs!r} {op} {rhs!r}") from exc

        return apply
    if isinstance(expression, FunctionCall) and expression.implementation is not None:
        args = tuple(compile_expression(arg, schema) for arg in expression.args)
        implementation = expression.implementation
        return lambda row: implementation(*(arg(row) for arg in args))
    # Anything else (FieldAccess over crowd results, unimplemented calls,
    # future node types) falls back to tree interpretation.
    return expression.evaluate


#: C-implemented counterparts of the comparison lambdas, for the column
#: fast paths (``map(operator.gt, col, const_col)`` runs the loop in C).
_FAST_COMPARATORS: dict[str, Callable[[Any, Any], Any]] = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_FAST_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
}

#: Node types whose evaluation yields only True / False / None.  Their raw
#: output column doubles as a selection vector: among those three values only
#: True is truthy, so ``itertools.compress`` keeps exactly the rows the
#: per-row strict ``predicate(row) is True`` check would keep.
_BOOLEAN_NODES = (Comparison, BooleanOp, Not)


def compile_batch_expression(
    expression: Expression, schema: "Schema"
) -> Callable[["RowBatch"], Sequence[Any]]:
    """Compile an expression to a column kernel: one call evaluates all rows.

    The returned callable maps a :class:`~repro.storage.batch.RowBatch` to a
    sequence holding the expression's value for each row, in order — exactly
    the values the per-row :func:`compile_expression` callable would produce
    row by row, including NULL propagation and :class:`ExpressionError`
    messages for type failures (property-tested in
    ``tests/storage/test_batch_kernels.py``).

    Kernels run their inner loops in C where semantics allow: comparisons and
    arithmetic over NULL-free columns go through ``map(operator.op, ...)``,
    and fall back to an elementwise loop that replicates the per-row
    three-valued logic whenever a NULL is present or a type error must be
    reported.  Equality fast paths additionally require NULL-free inputs
    because ``operator.eq(None, None)`` is True while SQL says NULL.

    Error ordering: a column kernel evaluates subexpressions column-at-a-
    time, so when several cells would raise, the cell it reaches first can
    differ from the one per-row evaluation reaches first (column-major vs
    row-major order).  Any :class:`ExpressionError` therefore triggers a
    row-at-a-time re-evaluation of the whole expression, which raises the
    exact error the per-row path raises — the error path pays for the rerun,
    the success path pays one try frame.
    """
    kernel = _compile_batch_node(expression, schema)
    compiled_row = compile_expression(expression, schema)

    def with_row_major_errors(batch: "RowBatch") -> Sequence[Any]:
        try:
            return kernel(batch)
        except ExpressionError:
            for row in batch.to_rows():
                compiled_row(row)
            raise  # per-row found no error: keep the kernel's diagnosis

    return with_row_major_errors


def _compile_batch_node(
    expression: Expression, schema: "Schema"
) -> Callable[["RowBatch"], Sequence[Any]]:
    """The recursive kernel compiler behind :func:`compile_batch_expression`.

    Kernels compose without the row-major error wrapper — only the root of
    the tree rewinds to per-row evaluation, so nested failures propagate up
    raw and are re-diagnosed exactly once.
    """
    if isinstance(expression, Literal):
        value = expression.value
        return lambda batch: (value,) * len(batch)
    if isinstance(expression, ColumnRef):
        index = schema.index_of(expression.name)
        return lambda batch: batch.column_at(index)
    if isinstance(expression, Comparison):
        left = _compile_batch_node(expression.left, schema)
        right = _compile_batch_node(expression.right, schema)
        fast = _FAST_COMPARATORS[expression.op]
        comparator = _COMPARATORS[expression.op]
        op = expression.op

        def compare_columns(batch: "RowBatch") -> Sequence[Any]:
            lcol = left(batch)
            rcol = right(batch)
            if None not in lcol and None not in rcol:
                try:
                    return list(map(fast, lcol, rcol))
                except TypeError:
                    pass  # report via the exact-semantics loop below
            out = []
            append = out.append
            for lhs, rhs in zip(lcol, rcol):
                if lhs is None or rhs is None:
                    append(None)
                    continue
                try:
                    append(comparator(lhs, rhs))
                except TypeError as exc:
                    raise ExpressionError(
                        f"cannot compare {lhs!r} {op} {rhs!r}"
                    ) from exc
            return out

        return compare_columns
    if isinstance(expression, BooleanOp):
        left = _compile_batch_node(expression.left, schema)
        right = _compile_batch_node(expression.right, schema)
        if expression.op == "and":

            def conjoin_columns(batch: "RowBatch") -> Sequence[Any]:
                return [
                    False
                    if (lhs is False or rhs is False)
                    else (
                        None
                        if (lhs is None or rhs is None)
                        else bool(lhs) and bool(rhs)
                    )
                    for lhs, rhs in zip(left(batch), right(batch))
                ]

            return conjoin_columns

        def disjoin_columns(batch: "RowBatch") -> Sequence[Any]:
            return [
                True
                if (lhs is True or rhs is True)
                else (
                    None if (lhs is None or rhs is None) else bool(lhs) or bool(rhs)
                )
                for lhs, rhs in zip(left(batch), right(batch))
            ]

        return disjoin_columns
    if isinstance(expression, Not):
        operand = _compile_batch_node(expression.operand, schema)
        return lambda batch: [
            None if value is None else not value for value in operand(batch)
        ]
    if isinstance(expression, Arithmetic):
        left = _compile_batch_node(expression.left, schema)
        right = _compile_batch_node(expression.right, schema)
        fast = _FAST_ARITHMETIC[expression.op]
        arith = _ARITHMETIC[expression.op]
        op = expression.op

        def apply_columns(batch: "RowBatch") -> Sequence[Any]:
            lcol = left(batch)
            rcol = right(batch)
            if None not in lcol and None not in rcol:
                try:
                    return list(map(fast, lcol, rcol))
                except (TypeError, ZeroDivisionError):
                    pass  # report via the exact-semantics loop below
            out = []
            append = out.append
            for lhs, rhs in zip(lcol, rcol):
                if lhs is None or rhs is None:
                    append(None)
                    continue
                try:
                    append(arith(lhs, rhs))
                except (TypeError, ZeroDivisionError) as exc:
                    raise ExpressionError(
                        f"cannot compute {lhs!r} {op} {rhs!r}"
                    ) from exc
            return out

        return apply_columns
    if isinstance(expression, FunctionCall) and expression.implementation is not None:
        args = tuple(
            _compile_batch_node(arg, schema) for arg in expression.args
        )
        implementation = expression.implementation
        if not args:
            return lambda batch: [implementation() for _ in range(len(batch))]
        return lambda batch: [
            implementation(*values) for values in zip(*(arg(batch) for arg in args))
        ]
    # Anything else (FieldAccess over crowd results, unimplemented calls,
    # future node types) interprets the tree per materialized row — same
    # fallback as compile_expression.
    return lambda batch: [expression.evaluate(row) for row in batch.to_rows()]


def compile_batch_predicate(
    expression: Expression, schema: "Schema"
) -> Callable[["RowBatch"], Sequence[Any]]:
    """Compile a predicate to a selection-vector kernel.

    The returned mask keeps exactly the rows where the per-row predicate is
    strictly ``True`` (the local filter's SQL WHERE semantics).  For boolean
    nodes the raw kernel output already is such a mask — only True is truthy
    among {True, False, None} — while other node types (a bare column
    reference, a UDF call) are wrapped in a strict ``is True`` check so a
    truthy non-boolean value does not slip through compress.
    """
    kernel = compile_batch_expression(expression, schema)
    if isinstance(expression, _BOOLEAN_NODES):
        return kernel
    return lambda batch: [value is True for value in kernel(batch)]


def walk(expression: Expression) -> Iterator[Expression]:
    """Yield ``expression`` and every descendant, pre-order."""
    yield expression
    for child in expression.children():
        yield from walk(child)


def find_calls(expression: Expression, name: str | None = None) -> list[FunctionCall]:
    """Return every :class:`FunctionCall` in the tree, optionally filtered by name."""
    calls = [node for node in walk(expression) if isinstance(node, FunctionCall)]
    if name is not None:
        calls = [call for call in calls if call.name == name]
    return calls
