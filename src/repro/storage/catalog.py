"""Catalog of tables known to a Qurk database instance."""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["Catalog"]


class Catalog:
    """Name → :class:`Table` registry with SQL-ish create/drop semantics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema, *, if_not_exists: bool = False) -> Table:
        """Create a table, or return the existing one when ``if_not_exists``."""
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[key] = table
        return table

    def register(self, table: Table, *, replace: bool = False) -> Table:
        """Register an externally constructed table under its own name."""
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        return table

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        """Drop a table by name."""
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[key]

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise CatalogError(f"unknown table {name!r}; known tables: {known}") from None

    def has_table(self, name: str) -> bool:
        """Return True when a table with this name exists."""
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(table.name for table in self._tables.values())

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
