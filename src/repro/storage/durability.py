"""Durability orchestration: tie the WAL and snapshots to a live engine.

The engine is deterministic: a same-seed run replays byte-identically.
Recovery leans on that instead of trying to serialise in-flight crowd
state (open HITs are closures on the simulated clock's event heap and
cannot meaningfully travel through JSON).  The write-ahead log records
every externally-visible event, but only one record type drives replay:
``query_submitted``.  Recovery rebuilds a fresh engine from the same
recipe, restores the latest quiescent snapshot, re-submits the logged
queries in their original order, and lets the deterministic machinery
regenerate everything that happened after the snapshot.  The remaining
event types (HIT postings, settlements, budget movements, deliveries,
lifecycle transitions) exist for crash-point injection, audit, and
debugging — they are the evidence that the replayed run retraces the
original, not the mechanism that drives it.

``query_submitted`` records group-commit: the WAL's strict append order
plus the forced-durable record at every ``drain()`` entry put each
submission on disk before any of its crowd effects happen.  Event tails
lost by ``interval`` or ``off`` fsyncing are therefore always
regenerable: any submission whose effects survived is itself on disk,
and replay recreates the lost tail bit-for-bit.  (A crash before the
first drain barrier can lose not-yet-flushed submissions — a bounded,
policy-chosen window; ``always`` closes it by fsyncing every append.)

Snapshots are only taken at quiescent points (no pending clock events,
no runnable queries, no outstanding HITs) — exactly the states from
which a fresh engine plus re-submission is indistinguishable from the
original process.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import RecoveryError
from repro.storage.snapshot import load_latest_snapshot
from repro.storage.wal import WALRecord, WriteAheadLog

__all__ = [
    "DurabilityConfig",
    "EngineJournal",
    "RecoveryResult",
    "capture_engine_state",
    "restore_engine_state",
    "build_engine_from_payload",
    "recover_engine",
]

#: File name of the event log inside a durability directory.
WAL_FILENAME = "wal.log"

#: Snapshot-state schema version (independent of the on-disk envelope
#: version in :mod:`repro.storage.snapshot`).
STATE_VERSION = 1


@dataclass(frozen=True)
class DurabilityConfig:
    """How an engine journals and checkpoints itself.

    Parameters
    ----------
    directory:
        Where the WAL and snapshots live.  One directory per engine.
    fsync:
        WAL fsync policy — ``"always"``, ``"interval"``, or ``"off"``.
        Submissions group-commit: the forced-durable record at drain
        entry persists every pending submission before any crowd work
        happens, so recovery is exact under every policy.  The policy
        bounds how much *tail* (post-drain audit records, and pre-drain
        submissions not yet flushed) a crash may lose.
    fsync_every:
        Records between fsyncs under the ``"interval"`` policy.
    snapshot_every:
        Auto-checkpoint after this many journal records, at the next
        quiescent point (end of a completed drain).  ``None`` disables
        auto-checkpointing entirely — recovery then replays the whole
        log from its base LSN.
    """

    directory: str
    fsync: str = "interval"
    fsync_every: int = 256
    snapshot_every: int | None = 200

    def wal_path(self) -> Path:
        return Path(self.directory) / WAL_FILENAME


class EngineJournal:
    """The engine's single gateway to its write-ahead log.

    Components (ledger, task manager, scheduler) call :meth:`record`
    without knowing whether durability is even enabled — during replay
    the journal is *suspended* (``replaying`` is True) so the re-executed
    run does not re-log events that are already on disk.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self.replaying = False
        self._records_since_snapshot = 0

    def record(self, record_type: str, data: dict, *, durable: bool = False) -> int | None:
        """Append one event; returns its LSN, or None while replaying."""
        if self.replaying:
            return None
        lsn = self.wal.append(record_type, data, durable=durable)
        self._records_since_snapshot += 1
        return lsn

    def on_append(self, listener: Callable[[int, str], None]) -> None:
        """Register a post-append hook ``(lsn, type)`` (fault injection)."""
        self.wal.on_append(listener)

    def snapshot_taken(self) -> None:
        self._records_since_snapshot = 0

    def snapshot_due(self, snapshot_every: int | None) -> bool:
        if snapshot_every is None:
            return False
        return self._records_since_snapshot >= snapshot_every

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    def close(self) -> None:
        if self.wal.is_open:
            self.wal.flush()
            self.wal.close()


# ---------------------------------------------------------------------------
# Engine state capture / restore
# ---------------------------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Lower tuples to lists, exactly as JSON round-tripping would."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, list):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def _base_table_counts(engine) -> dict[str, int]:
    """Row counts for base tables (results tables are per-query artefacts)."""
    counts: dict[str, int] = {}
    for name in engine.database.catalog.table_names():
        if name.startswith("__results_"):
            continue
        counts[name] = len(engine.database.table(name))
    return counts


def capture_engine_state(engine) -> dict:
    """Everything a quiescent engine needs to resume, as a JSON-able dict.

    Completed-query *outcomes* (statuses + result rows) are captured so
    that a recovered engine can still report every query it ever ran,
    including ones whose submissions were truncated out of the WAL by
    the snapshot.  Outcomes recovered from an earlier snapshot are
    carried forward, so chains of checkpoint→crash→recover never lose
    history.
    """
    outcomes = [dict(outcome) for outcome in getattr(engine, "_recovered_outcomes", [])]
    carried = {outcome["query_id"] for outcome in outcomes}
    for query_id, handle in engine.queries.items():
        if query_id in carried:
            continue
        outcomes.append(
            {
                "query_id": query_id,
                "sql": handle.sql,
                "status": handle.status.value,
                "error": None if handle.error is None else str(handle.error),
                "rows": [_jsonify(row.to_dict()) for row in handle.results()],
            }
        )
    reputation = engine.task_manager.reputation
    return {
        "state_version": STATE_VERSION,
        "clock_now": engine.clock.now,
        "next_query_seq": engine._next_query_seq,
        "worker_pool": engine.worker_pool.state_dict(),
        "platform": engine.platform.state_dict(),
        "statistics": engine.statistics.state_dict(),
        "budget": engine.budget_ledger.state_dict(),
        "task_cache": engine.task_cache.state_dict(),
        "task_models": engine.task_models.state_dict(),
        "reputation": None if reputation is None else reputation.state_dict(),
        "task_manager": engine.task_manager.state_dict(),
        "catalog": _base_table_counts(engine),
        "outcomes": outcomes,
    }


def restore_engine_state(engine, state: dict) -> None:
    """Load a captured state into a freshly-built engine.

    Base-table contents are *not* stored in the snapshot — they come
    from the engine recipe that rebuilt the engine — so restore verifies
    the rebuilt catalog matches what the snapshot saw.  A mismatch means
    the recipe changed (or loaded different data) and replay would
    silently diverge; better to refuse loudly.
    """
    version = state.get("state_version")
    if version != STATE_VERSION:
        raise RecoveryError(
            f"snapshot state version {version!r} is not supported (expected {STATE_VERSION})"
        )
    rebuilt = _base_table_counts(engine)
    if rebuilt != state["catalog"]:
        raise RecoveryError(
            "rebuilt engine catalog does not match the snapshot: "
            f"snapshot saw {state['catalog']}, recipe produced {rebuilt}; "
            "recovery must use the same engine recipe and data as the original run"
        )
    engine.clock.restore_time(state["clock_now"])
    engine._next_query_seq = int(state["next_query_seq"])
    engine.worker_pool.load_state_dict(state["worker_pool"])
    engine.platform.load_state_dict(state["platform"])
    engine.statistics.load_state_dict(state["statistics"])
    engine.budget_ledger.load_state_dict(state["budget"])
    engine.task_cache.load_state_dict(state["task_cache"])
    engine.task_models.load_state_dict(state["task_models"])
    if state["reputation"] is not None:
        if engine.task_manager.reputation is None:
            raise RecoveryError(
                "snapshot carries worker-reputation state but the rebuilt engine "
                "has quality control disabled"
            )
        engine.task_manager.reputation.load_state_dict(state["reputation"])
    engine.task_manager.load_state_dict(state["task_manager"])
    engine._recovered_outcomes = [dict(outcome) for outcome in state["outcomes"]]


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def build_engine_from_payload(spec: dict):
    """Rebuild an engine from a WAL-header recipe ``{"factory", "kwargs"}``.

    Mirrors the cluster's ``EngineSpec.build`` contract: ``factory`` is a
    ``"module:callable"`` path whose result is either an engine or an
    object exposing one via an ``engine`` attribute (the testing
    harnesses return such wrappers).
    """
    if not isinstance(spec, dict) or "factory" not in spec:
        raise RecoveryError(
            "WAL header carries no engine recipe; pass factory= to recover explicitly"
        )
    factory_path = spec["factory"]
    kwargs = spec.get("kwargs") or {}
    module_name, _, attr = factory_path.partition(":")
    if not module_name or not attr:
        raise RecoveryError(f"invalid engine factory path {factory_path!r}")
    try:
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
    except (ImportError, AttributeError) as error:
        raise RecoveryError(f"cannot import engine factory {factory_path!r}: {error}") from error
    built = factory(**kwargs)
    engine = getattr(built, "engine", built)
    if not hasattr(engine, "scheduler") or not hasattr(engine, "query"):
        raise RecoveryError(f"factory {factory_path!r} did not produce a query engine")
    return engine


@dataclass
class RecoveryResult:
    """What :func:`recover_engine` found and rebuilt."""

    engine: Any
    outcomes: list[dict] = field(default_factory=list)
    replayed_query_ids: list[str] = field(default_factory=list)
    #: Every record that survived in the log, in LSN order — callers
    #: layering their own durable records on the engine's WAL (the shard
    #: worker's ``cluster_alias`` mapping) read them back from here.
    records: list[WALRecord] = field(default_factory=list)
    wal_records: int = 0
    truncated_bytes: int = 0
    corruption: str | None = None
    snapshot_lsn: int | None = None
    recovery_seconds: float = 0.0


def recover_engine(
    path: str | Path,
    *,
    fsync: str = "interval",
    fsync_every: int = 256,
    snapshot_every: int | None = 200,
    factory: Callable[[], Any] | None = None,
) -> RecoveryResult:
    """Rebuild a crashed engine from its durability directory.

    The sequence is: open the WAL (truncating any torn tail), rebuild a
    fresh engine from the logged recipe (or ``factory``), load the
    newest readable snapshot, then re-submit every ``query_submitted``
    record past the snapshot LSN and drain.  Determinism makes the
    result byte-identical (``fingerprint_engine``) to an uninterrupted
    run of the same recipe and submissions.
    """
    started = time.perf_counter()
    directory = Path(path)
    wal_path = directory / WAL_FILENAME
    if not wal_path.exists():
        raise RecoveryError(f"no WAL at {wal_path}; nothing to recover")
    wal, info = WriteAheadLog.open(wal_path, fsync=fsync, fsync_every=fsync_every)
    try:
        if factory is not None:
            built = factory()
            engine = getattr(built, "engine", built)
        else:
            engine = build_engine_from_payload(info.spec)
        if getattr(engine, "journal", None) is not None:
            raise RecoveryError(
                "engine recipe enabled durability itself; recovery must own the WAL"
            )

        snapshot = load_latest_snapshot(directory)
        config = DurabilityConfig(
            directory=str(directory),
            fsync=fsync,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
        )
        journal = engine.enable_durability(config, spec=info.spec, _wal=wal)
        journal.replaying = True
        snapshot_lsn: int | None = None
        try:
            if snapshot is not None:
                snapshot_lsn, state = snapshot
                restore_engine_state(engine, state)

            replayed: list[str] = []
            floor = snapshot_lsn if snapshot_lsn is not None else wal.base_lsn
            for record in info.records:
                if record.lsn <= floor:
                    continue
                if record.type == "query_submitted":
                    data = record.data
                    handle = engine.query(
                        data["sql"],
                        budget=data.get("budget"),
                        priority=data.get("priority", 1.0),
                    )
                    if handle.query_id != data["query_id"]:
                        raise RecoveryError(
                            f"replay produced query id {handle.query_id!r} where the log "
                            f"recorded {data['query_id']!r}; the engine recipe is not the "
                            "one that wrote this WAL"
                        )
                    replayed.append(handle.query_id)
                elif record.type == "drain":
                    # Reproduce the original drain grouping: a drain that had
                    # started when the process died is re-run to completion,
                    # which is exactly what the uninterrupted run did.
                    engine.scheduler.drain()
                    engine.clock.run_until_idle()
            # Submissions logged after the last drain (or a crash before any
            # drain started) still need driving to their terminal states.
            engine.scheduler.drain()
            engine.clock.run_until_idle()
        finally:
            journal.replaying = False
        # Records already on disk past the snapshot count towards the next
        # auto-checkpoint, so a recovered engine does not let its log grow
        # twice as long before snapshotting again.
        journal._records_since_snapshot = sum(1 for r in info.records if r.lsn > floor)
    except Exception:
        wal.close()
        raise

    return RecoveryResult(
        engine=engine,
        outcomes=[dict(outcome) for outcome in getattr(engine, "_recovered_outcomes", [])],
        replayed_query_ids=replayed,
        records=list(info.records),
        wal_records=len(info.records),
        truncated_bytes=info.truncated_bytes,
        corruption=info.corruption,
        snapshot_lsn=snapshot_lsn,
        recovery_seconds=time.perf_counter() - started,
    )
