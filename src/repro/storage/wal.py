"""Append-only, checksummed event write-ahead log.

Record framing is length-prefixed and CRC-checked::

    [length: u32 BE] [crc32(payload): u32 BE] [payload: length bytes]

where the payload is compact JSON — ``{"lsn": n, "type": t, "data":
{...}}``, with data keys in (deterministic) insertion order.  The first record of every file is a *header* record
carrying the format version, the base LSN (the LSN the log was truncated
up to; 0 for a fresh log) and an optional engine-spec payload describing
how to rebuild the engine the log belongs to.

Durability is modelled honestly enough for the crash tests to mean
something: appended records sit in an application-level buffer until
:meth:`WriteAheadLog.flush`, which writes, flushes *and* fsyncs in one
step — so "flushed" and "durable" coincide, and
:meth:`WriteAheadLog.simulate_crash` (drop the buffer, close the file)
models a process kill that loses exactly the non-fsynced tail.  Three
fsync policies govern when that happens automatically:

``always``
    every append is flushed + fsynced before returning;
``interval``
    flush + fsync every ``fsync_every`` appends;
``off``
    flush only on close (and at a large buffer cap, as any real page
    cache eventually would).

Records appended with ``durable=True`` are flushed + fsynced immediately
under *every* policy.  The engine uses this as a group-commit barrier at
scheduler drain entry: because appends are strictly ordered, that one
durable record drags every buffered submission to disk before any of its
crowd effects happen, and recovery reproduces the full run even when an
``interval``/``off`` crash loses the trailing event records (which replay
regenerates deterministically).

Opening an existing log scans it record by record and **cleanly
truncates** at the first torn or corrupt record boundary — a short
header, a short payload, a CRC mismatch or undecodable JSON all mark the
end of the valid prefix; everything after it is discarded and reported in
the returned :class:`WALRecoveryInfo` rather than raised.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, NamedTuple

from repro.errors import WALCorruptionError, WALError

__all__ = [
    "WAL_VERSION",
    "WALRecord",
    "WALRecoveryInfo",
    "WriteAheadLog",
    "FSYNC_POLICIES",
]

WAL_VERSION = 1

#: Valid values for the ``fsync`` policy knob.
FSYNC_POLICIES = ("always", "interval", "off")

_FRAME = struct.Struct(">II")  # (payload length, crc32 of payload)

#: Upper bound on a single record's payload; a length word above this is
#: treated as corruption, not an allocation request.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: Under ``fsync="off"`` the buffer still flushes at this many records —
#: an unbounded buffer is a memory leak, and real page caches write back
#: eventually too.  The crash model stays honest: only the *unflushed*
#: tail is lost.
OFF_POLICY_BUFFER_CAP = 4096


class WALRecord(NamedTuple):
    """One decoded log record."""

    lsn: int
    type: str
    data: dict[str, Any]


@dataclass
class WALRecoveryInfo:
    """What scanning an existing log found.

    ``records`` excludes the header record.  ``truncated_bytes`` counts
    bytes discarded past the last valid record boundary (0 for a clean
    log) and ``corruption`` names why they were discarded.
    """

    base_lsn: int
    spec: dict[str, Any] | None
    records: list[WALRecord] = field(default_factory=list)
    truncated_bytes: int = 0
    corruption: str | None = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.base_lsn


def _encode_payload(payload: dict[str, Any]) -> bytes:
    try:
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WALError(f"WAL payload is not JSON-serialisable: {error}") from error
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


#: ``'{"lsn":%d,"type":%s,"data":%s}'`` assembled by hand on the append hot
#: path: journaling sits on every crowd event, so one ``json.dumps`` over
#: just the data dict (keys in deterministic insertion order) beats dumping
#: a freshly-built wrapper dict with ``sort_keys`` — the scan side decodes
#: either framing identically.
_RECORD_TEMPLATE = b'{"lsn":%d,"type":%s,"data":%s}'
#: One shared compact encoder: ``json.dumps(..., separators=...)`` builds a
#: fresh ``JSONEncoder`` per call, which roughly triples encode cost.
_encode_json = json.JSONEncoder(separators=(",", ":")).encode

try:  # pragma: no cover - exercised whenever orjson is installed
    import orjson as _orjson

    _ORJSON_OPTS = _orjson.OPT_NON_STR_KEYS  # match stdlib's int-key coercion

    def _encode_data(data: Any) -> bytes:
        """Compact JSON bytes for one record's data dict (orjson, ~10x)."""
        return _orjson.dumps(data, option=_ORJSON_OPTS)

except ImportError:  # pragma: no cover - stdlib fallback

    def _encode_data(data: Any) -> bytes:
        return _encode_json(data).encode("utf-8")


#: Record-type strings are drawn from a handful of event names; cache their
#: JSON-quoted bytes instead of re-encoding the same string per append.
_TYPE_CACHE: dict[str, bytes] = {}
_crc32 = zlib.crc32
_pack_frame = _FRAME.pack


class WriteAheadLog:
    """One append-only log file; use :meth:`create` or :meth:`open`."""

    def __init__(self, path: str | Path, *, fsync: str = "interval", fsync_every: int = 256):
        if fsync not in FSYNC_POLICIES:
            raise WALError(f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}")
        if fsync_every < 1:
            raise WALError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self.spec: dict[str, Any] | None = None
        self._file: Any = None
        self._buffer: list[bytes] = []
        self._buffered_records = 0
        self._since_flush = 0
        self._base_lsn = 0
        self._last_lsn = 0
        #: Fired after every append (post flush-policy handling) with
        #: ``(lsn, record_type)`` — the crash-point injector's hook.
        self._append_listeners: list[Callable[[int, str], None]] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        spec: dict[str, Any] | None = None,
        base_lsn: int = 0,
        fsync: str = "interval",
        fsync_every: int = 256,
    ) -> "WriteAheadLog":
        """Start a fresh log at ``path`` (truncating any existing file)."""
        wal = cls(path, fsync=fsync, fsync_every=fsync_every)
        wal._base_lsn = wal._last_lsn = base_lsn
        wal.spec = spec
        wal.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(wal.path, "wb")
        handle.write(_encode_payload(wal._header_payload()))
        handle.flush()
        os.fsync(handle.fileno())
        wal._file = handle
        return wal

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 256,
    ) -> tuple["WriteAheadLog", WALRecoveryInfo]:
        """Open an existing log for append, truncating any torn tail.

        Returns the log (positioned for appends after the last valid
        record) and everything the recovery scan found.
        """
        info, valid_end = cls.scan(path)
        if info.truncated_bytes:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        wal = cls(path, fsync=fsync, fsync_every=fsync_every)
        wal._base_lsn = info.base_lsn
        wal._last_lsn = info.last_lsn
        wal.spec = info.spec
        wal._file = open(path, "ab")
        return wal, info

    @classmethod
    def scan(cls, path: str | Path) -> tuple[WALRecoveryInfo, int]:
        """Decode ``path`` without opening it for writes.

        Returns the recovery info and the byte offset of the end of the
        valid prefix.  A missing/empty file or an unreadable *header* is a
        :class:`WALCorruptionError` — with no header there is no log to
        recover; corruption after the header truncates cleanly instead.
        """
        try:
            raw = Path(path).read_bytes()
        except OSError as error:
            raise WALCorruptionError(f"cannot read WAL {path}: {error}") from error

        offset = 0
        records: list[WALRecord] = []
        header: dict[str, Any] | None = None
        corruption: str | None = None
        while offset < len(raw):
            if offset + _FRAME.size > len(raw):
                corruption = f"torn frame header at byte {offset}"
                break
            length, crc = _FRAME.unpack_from(raw, offset)
            if length == 0 or length > MAX_RECORD_BYTES:
                corruption = f"implausible record length {length} at byte {offset}"
                break
            body_start = offset + _FRAME.size
            body = raw[body_start : body_start + length]
            if len(body) < length:
                corruption = f"torn record payload at byte {offset}"
                break
            if zlib.crc32(body) != crc:
                corruption = f"CRC mismatch at byte {offset}"
                break
            try:
                payload = json.loads(body.decode("utf-8"))
                lsn, rtype, data = payload["lsn"], payload["type"], payload["data"]
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                corruption = f"undecodable record at byte {offset}"
                break
            if header is None:
                if rtype != "header" or data.get("version") != WAL_VERSION:
                    raise WALCorruptionError(
                        f"WAL {path} has no valid header record (found {rtype!r})"
                    )
                header = data
            else:
                expected = (records[-1].lsn if records else header["base_lsn"]) + 1
                if lsn != expected:
                    corruption = f"LSN gap at byte {offset}: got {lsn}, expected {expected}"
                    break
                records.append(WALRecord(lsn=lsn, type=rtype, data=data))
            offset = body_start + length
        if header is None:
            raise WALCorruptionError(f"WAL {path} is empty or its header is unreadable")
        info = WALRecoveryInfo(
            base_lsn=header["base_lsn"],
            spec=header.get("spec"),
            records=records,
            truncated_bytes=len(raw) - offset,
            corruption=corruption,
        )
        return info, offset

    def _header_payload(self) -> dict[str, Any]:
        return {
            "lsn": self._base_lsn,
            "type": "header",
            "data": {"version": WAL_VERSION, "base_lsn": self._base_lsn, "spec": self.spec},
        }

    # -- appends --------------------------------------------------------------

    @property
    def base_lsn(self) -> int:
        return self._base_lsn

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    @property
    def is_open(self) -> bool:
        return self._file is not None

    @property
    def unflushed_records(self) -> int:
        return self._buffered_records

    def on_append(self, callback: Callable[[int, str], None]) -> None:
        """Register a post-append hook (``(lsn, type)``); crash injection."""
        self._append_listeners.append(callback)

    def append(self, record_type: str, data: dict[str, Any], *, durable: bool = False) -> int:
        """Append one record; returns its LSN.

        ``durable=True`` forces an immediate flush + fsync regardless of
        the configured policy.
        """
        if self._file is None:
            raise WALError("write-ahead log is closed")
        if record_type == "header":
            raise WALError("'header' is reserved for the file header record")
        lsn = self._last_lsn + 1
        encoded_type = _TYPE_CACHE.get(record_type)
        if encoded_type is None:
            encoded_type = _TYPE_CACHE.setdefault(
                record_type, _encode_json(record_type).encode("utf-8")
            )
        try:
            body = _RECORD_TEMPLATE % (lsn, encoded_type, _encode_data(data))
        except (TypeError, ValueError) as error:
            raise WALError(f"WAL payload is not JSON-serialisable: {error}") from error
        self._last_lsn = lsn
        # Frame and body appended separately: the flush-time join copies
        # once either way, and skipping the per-record concat is measurable
        # at journaling rates.
        buffer = self._buffer
        buffer.append(_pack_frame(len(body), _crc32(body)))
        buffer.append(body)
        self._buffered_records += 1
        if durable or self.fsync == "always":
            self.flush()
        elif self.fsync == "interval":
            self._since_flush += 1
            if self._since_flush >= self.fsync_every:
                self.flush()
        elif self._buffered_records >= OFF_POLICY_BUFFER_CAP:
            self.flush()
        # Listeners fire *after* the flush-policy decision so a simulated
        # crash at this LSN loses exactly what a real crash would.
        if self._append_listeners:
            for callback in list(self._append_listeners):
                callback(lsn, record_type)
        return lsn

    def flush(self) -> None:
        """Write buffered records, flush and fsync — make them durable."""
        if self._file is None:
            raise WALError("write-ahead log is closed")
        if self._buffer:
            self._file.write(b"".join(self._buffer))
            self._buffer.clear()
            self._buffered_records = 0
        self._file.flush()
        os.fsync(self._file.fileno())
        self._since_flush = 0

    def close(self) -> None:
        if self._file is None:
            return
        self.flush()
        self._file.close()
        self._file = None

    def simulate_crash(self) -> None:
        """Die without flushing: the buffered (non-durable) tail is lost."""
        if self._file is None:
            return
        self._buffer.clear()
        self._buffered_records = 0
        self._file.close()
        self._file = None

    # -- truncation -----------------------------------------------------------

    def truncate_to(self, lsn: int) -> None:
        """Drop every record with LSN <= ``lsn`` (post-snapshot cleanup).

        Rewrites the file atomically (temp + rename) with a fresh header
        whose ``base_lsn`` is ``lsn``, keeping any records past it.
        """
        if self._file is None:
            raise WALError("write-ahead log is closed")
        if lsn < self._base_lsn or lsn > self._last_lsn:
            raise WALError(
                f"truncate_to({lsn}) outside log range [{self._base_lsn}, {self._last_lsn}]"
            )
        self.flush()
        info, _ = self.scan(self.path)
        keep = [record for record in info.records if record.lsn > lsn]
        self._base_lsn = lsn
        tmp_path = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(_encode_payload(self._header_payload()))
            for record in keep:
                handle.write(
                    _encode_payload({"lsn": record.lsn, "type": record.type, "data": record.data})
                )
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        _fsync_directory(self.path.parent)
        self._file = open(self.path, "ab")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (best effort off-POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
