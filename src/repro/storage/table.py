"""In-memory heap tables with optional secondary indexes.

Crowd workloads "rarely approach hundreds of thousands of tuples" (Section 2
of the paper), so a simple row-store with secondary indexes is a faithful and
sufficient Storage Engine.  Tables also serve as the *results tables* that
queries emit into and users poll (Section 2), so they support append +
versioned reads (``rows_since``).

Two structures make tables first-class citizens of the columnar data plane:

- a **cached column snapshot** (:meth:`to_batch`): the table's rows
  transposed into a :class:`~repro.storage.batch.RowBatch` once per version;
  every scan of an unchanged table reuses the same snapshot, so repeated
  queries pay the transpose once.
- **secondary indexes** (:mod:`repro.storage.indexes`): hash for equality,
  sorted for range, maintained incrementally by every insert path and
  answering row *positions* that an index scan gathers straight out of the
  column snapshot.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.errors import SchemaError, StorageError
from repro.storage import accel
from repro.storage.indexes import INDEX_KINDS, HashIndex, SortedIndex
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.types import DataType

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.storage.batch import RowBatch

__all__ = ["Table"]


class Table:
    """An append-oriented in-memory table.

    Rows receive a monotonically increasing row id on insertion, which
    supports the polling pattern of Qurk results tables: a caller remembers
    the last row id it has seen and asks for everything newer.
    """

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise StorageError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._row_ids = itertools.count()
        self._ids: list[int] = []
        self._indexes: dict[str, HashIndex | SortedIndex] = {}
        self._version = 0
        self._batch_cache: tuple[int, "RowBatch"] | None = None
        # Native column store, filled alongside _rows by every insert path:
        # to_batch() then assembles the snapshot without a row transpose.
        self._column_store: list[list[Any]] = [[] for _ in schema]
        # Dictionary encodings for string columns (encode once at insert;
        # scans expose the codes so joins/group-bys answer many times).
        self._encodings: dict[int, accel.ColumnEncoding] = {
            i: accel.ColumnEncoding()
            for i, column in enumerate(schema)
            if column.data_type is DataType.STRING
        }
        self._code_columns: dict[int, list[int]] = {i: [] for i in self._encodings}

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Row | Mapping[str, Any] | Iterable[Any]) -> int:
        """Insert one row and return its row id.

        Accepts a :class:`Row`, a mapping of column names to values, or a
        bare sequence of values in schema order.
        """
        row = self._as_row(row)
        row_id = next(self._row_ids)
        position = len(self._rows)
        self._rows.append(row)
        self._ids.append(row_id)
        self._store_values(row.values)
        self._version += 1
        for column, index in self._indexes.items():
            index.add(row[column], position)
        return row_id

    def insert_many(self, rows: Iterable[Row | Mapping[str, Any] | Iterable[Any]]) -> list[int]:
        """Insert several rows, returning their row ids."""
        return [self.insert(row) for row in rows]

    def append_rows(self, rows: Iterable[Row]) -> int:
        """Append already-validated rows in bulk, returning the count.

        The fast path for the results sink: rows whose schema matches this
        table's column layout are appended without re-validation.  Rows with
        a different layout fall back to :meth:`insert`.
        """
        count = 0
        names = self.schema.names
        append_row = self._rows.append
        append_id = self._ids.append
        row_ids = self._row_ids
        indexes = self._indexes
        for row in rows:
            if row.schema.names != names:
                self.insert(row)
                count += 1
                continue
            position = len(self._rows)
            append_row(row)
            append_id(next(row_ids))
            self._store_values(row.values)
            for column, index in indexes.items():
                index.add(row[column], position)
            count += 1
        if count:
            self._version += 1
        return count

    def _store_values(self, values: tuple) -> None:
        """Mirror one validated row into the column store (+ string codes)."""
        for column, value in zip(self._column_store, values):
            column.append(value)
        for i, codes in self._code_columns.items():
            codes.append(self._encodings[i].encode(values[i]))

    def insert_batch(self, batch: "RowBatch") -> int:
        """Insert a column-major batch; validated when schemas differ."""
        if batch.schema.names == self.schema.names:
            return self.append_rows(batch.to_rows())
        inserted = 0
        for row in batch.to_rows():
            self.insert(row)
            inserted += 1
        return inserted

    def to_batch(self) -> "RowBatch":
        """The table as a column-major :class:`RowBatch`, cached per version.

        Until the next mutation, every caller gets the *same* snapshot
        object, so N queries scanning an unchanged table pay one transpose.
        """
        cached = self._batch_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.storage.batch import RowBatch

        if accel.HAVE_NUMPY and len(self._rows) >= 256:
            # Bind columns as object ndarrays directly (lazy tuples) and
            # seed the numeric/codes caches — one conversion per version,
            # shared by every query that scans this snapshot.
            batch = RowBatch.of_columns(
                self.schema,
                tuple(
                    accel.object_array(column) for column in self._column_store
                ),
                len(self._rows),
            )
            for i, codes in self._code_columns.items():
                batch._set_codes(
                    i,
                    accel.np.asarray(codes, dtype=accel.np.intp),
                    self._encodings[i],
                )
            for i, column in enumerate(self.schema):
                if column.data_type in (DataType.FLOAT, DataType.INTEGER):
                    array = accel.numeric_array(
                        self._column_store[i],
                        assume_floats=column.data_type is DataType.FLOAT,
                    )
                    if array is not None:
                        batch._set_num(i, array)
        else:
            batch = RowBatch.of_columns(
                self.schema,
                tuple(tuple(column) for column in self._column_store),
                len(self._rows),
            )
            if accel.HAVE_NUMPY:
                for i, codes in self._code_columns.items():
                    batch._set_codes(
                        i,
                        accel.np.asarray(codes, dtype=accel.np.intp),
                        self._encodings[i],
                    )
        self._batch_cache = (self._version, batch)
        return batch

    def truncate(self) -> None:
        """Remove every row (row ids keep counting up)."""
        self._rows.clear()
        self._ids.clear()
        for column in self._column_store:
            column.clear()
        for codes in self._code_columns.values():
            codes.clear()  # encodings keep their dictionaries; codes stay valid
        self._version += 1
        for index in self._indexes.values():
            index.clear()

    def _as_row(self, row: Row | Mapping[str, Any] | Iterable[Any]) -> Row:
        if isinstance(row, Row):
            if row.schema.names != self.schema.names:
                # Re-validate against our schema (allows unqualified inserts).
                return Row(self.schema, row.values)
            return row
        if isinstance(row, Mapping):
            return Row.from_mapping(self.schema, row)
        return Row(self.schema, row)

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over every row in insertion order."""
        return iter(self._rows)

    def rows(self) -> list[Row]:
        """Return a snapshot list of all rows."""
        return list(self._rows)

    def rows_since(self, row_id: int) -> list[tuple[int, Row]]:
        """Return ``(row_id, row)`` pairs for rows inserted after ``row_id``.

        Pass ``-1`` to read everything.  This is the polling primitive used
        by :class:`repro.core.exec.handle.QueryHandle`.
        """
        return [(rid, row) for rid, row in zip(self._ids, self._rows) if rid > row_id]

    def last_row_id(self) -> int:
        """The id of the most recently inserted row, or -1 when empty."""
        return self._ids[-1] if self._ids else -1

    def select(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Return rows satisfying a Python predicate (used by tests/examples)."""
        return [row for row in self._rows if predicate(row)]

    # -- indexes -------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash") -> None:
        """Create (or rebuild) a secondary index on ``column``.

        ``kind`` is ``"hash"`` (equality lookups, join build sides) or
        ``"sorted"`` (range predicates).  The index is built from the current
        rows and maintained incrementally by every insert path afterwards.
        """
        if column not in self.schema:
            raise SchemaError(f"cannot index unknown column {column!r} on {self.name}")
        index_type = INDEX_KINDS.get(kind)
        if index_type is None:
            raise StorageError(
                f"unknown index kind {kind!r}; have {', '.join(sorted(INDEX_KINDS))}"
            )
        qualified = self.schema.column(column).name
        index = index_type(qualified)
        column_index = self.schema.index_of(qualified)
        for position, row in enumerate(self._rows):
            index.add(row._values[column_index], position)
        self._indexes[qualified] = index

    def index_on(self, column: str) -> HashIndex | SortedIndex | None:
        """The index covering ``column``, or None."""
        name = self.schema.try_index_of(column)
        if name is None:
            return None
        return self._indexes.get(self.schema.columns[name].name)

    def lookup(self, column: str, value: Any) -> list[Row]:
        """Return rows where ``column == value``, via index when available."""
        index = self.index_on(column)
        if index is not None and value is not None:
            return [self._rows[pos] for pos in index.positions_equal(value)]
        return [row for row in self._rows if row[column] == value]

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Names of columns that currently have an index."""
        return tuple(self._indexes)

    def distinct_count(self, column: str) -> int | None:
        """Distinct non-NULL values in ``column``: from an index when one
        exists (O(1) for hash), computed otherwise, None for unhashable data.
        """
        index = self.index_on(column)
        if isinstance(index, HashIndex):
            return index.distinct_count()
        if isinstance(index, SortedIndex):
            return index.distinct_count()
        position = self.schema.try_index_of(column)
        if position is None:
            return None
        try:
            return len(
                {row._values[position] for row in self._rows}
                - {None}
            )
        except TypeError:
            return None

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, schema={self.schema})"
