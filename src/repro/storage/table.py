"""In-memory heap tables with optional secondary indexes.

Crowd workloads "rarely approach hundreds of thousands of tuples" (Section 2
of the paper), so a simple row-store with hash indexes is a faithful and
sufficient Storage Engine.  Tables also serve as the *results tables* that
queries emit into and users poll (Section 2), so they support append +
versioned reads (``rows_since``).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.errors import SchemaError, StorageError
from repro.storage.row import Row
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.storage.batch import RowBatch

__all__ = ["Table"]


class Table:
    """An append-oriented in-memory table.

    Rows receive a monotonically increasing row id on insertion, which
    supports the polling pattern of Qurk results tables: a caller remembers
    the last row id it has seen and asks for everything newer.
    """

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise StorageError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        self._row_ids = itertools.count()
        self._ids: list[int] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Row | Mapping[str, Any] | Iterable[Any]) -> int:
        """Insert one row and return its row id.

        Accepts a :class:`Row`, a mapping of column names to values, or a
        bare sequence of values in schema order.
        """
        row = self._as_row(row)
        row_id = next(self._row_ids)
        position = len(self._rows)
        self._rows.append(row)
        self._ids.append(row_id)
        for column, index in self._indexes.items():
            index.setdefault(row[column], []).append(position)
        return row_id

    def insert_many(self, rows: Iterable[Row | Mapping[str, Any] | Iterable[Any]]) -> list[int]:
        """Insert several rows, returning their row ids."""
        return [self.insert(row) for row in rows]

    def append_rows(self, rows: Iterable[Row]) -> int:
        """Append already-validated rows in bulk, returning the count.

        The fast path for the results sink: rows whose schema matches this
        table's column layout are appended without re-validation.  Rows with
        a different layout fall back to :meth:`insert`.
        """
        count = 0
        names = self.schema.names
        append_row = self._rows.append
        append_id = self._ids.append
        row_ids = self._row_ids
        indexes = self._indexes
        for row in rows:
            if row.schema.names != names:
                self.insert(row)
                count += 1
                continue
            position = len(self._rows)
            append_row(row)
            append_id(next(row_ids))
            for column, index in indexes.items():
                index.setdefault(row[column], []).append(position)
            count += 1
        return count

    def insert_batch(self, batch: "RowBatch") -> int:
        """Insert a column-major batch; validated when schemas differ."""
        if batch.schema.names == self.schema.names:
            return self.append_rows(batch.to_rows())
        inserted = 0
        for row in batch.to_rows():
            self.insert(row)
            inserted += 1
        return inserted

    def to_batch(self) -> "RowBatch":
        """Snapshot the table as a column-major :class:`RowBatch`."""
        from repro.storage.batch import RowBatch

        return RowBatch.from_rows(self.schema, self._rows)

    def truncate(self) -> None:
        """Remove every row (row ids keep counting up)."""
        self._rows.clear()
        self._ids.clear()
        for index in self._indexes.values():
            index.clear()

    def _as_row(self, row: Row | Mapping[str, Any] | Iterable[Any]) -> Row:
        if isinstance(row, Row):
            if row.schema.names != self.schema.names:
                # Re-validate against our schema (allows unqualified inserts).
                return Row(self.schema, row.values)
            return row
        if isinstance(row, Mapping):
            return Row.from_mapping(self.schema, row)
        return Row(self.schema, row)

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def scan(self) -> Iterator[Row]:
        """Iterate over every row in insertion order."""
        return iter(self._rows)

    def rows(self) -> list[Row]:
        """Return a snapshot list of all rows."""
        return list(self._rows)

    def rows_since(self, row_id: int) -> list[tuple[int, Row]]:
        """Return ``(row_id, row)`` pairs for rows inserted after ``row_id``.

        Pass ``-1`` to read everything.  This is the polling primitive used
        by :class:`repro.core.exec.handle.QueryHandle`.
        """
        return [(rid, row) for rid, row in zip(self._ids, self._rows) if rid > row_id]

    def last_row_id(self) -> int:
        """The id of the most recently inserted row, or -1 when empty."""
        return self._ids[-1] if self._ids else -1

    def select(self, predicate: Callable[[Row], bool]) -> list[Row]:
        """Return rows satisfying a Python predicate (used by tests/examples)."""
        return [row for row in self._rows if predicate(row)]

    # -- indexes -------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Create (or rebuild) a hash index on ``column``."""
        if column not in self.schema:
            raise SchemaError(f"cannot index unknown column {column!r} on {self.name}")
        index: dict[Any, list[int]] = {}
        for position, row in enumerate(self._rows):
            index.setdefault(row[column], []).append(position)
        self._indexes[self.schema.column(column).name] = index

    def lookup(self, column: str, value: Any) -> list[Row]:
        """Return rows where ``column == value``, via index when available."""
        qualified = self.schema.column(column).name
        if qualified in self._indexes:
            return [self._rows[pos] for pos in self._indexes[qualified].get(value, [])]
        return [row for row in self._rows if row[column] == value]

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Names of columns that currently have an index."""
        return tuple(self._indexes)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, schema={self.schema})"
