"""Optional numpy acceleration for the columnar data plane.

The pure-Python column kernels in :mod:`repro.storage.expressions` and the
tuple-based :class:`~repro.storage.batch.RowBatch` derivations are the
*reference* semantics: everything in this module is a guarded fast path that
must produce value-identical results and silently steps aside when numpy is
unavailable or a column is not eligible (mixed types, NULLs, objects).

The design follows the encode-once / answer-many shape:

- **Column arrays are built once and reused.**  A batch caches, per column,
  the object ndarray (for gathers), the numeric ndarray (for masks, argsort
  and aggregation), and the dictionary codes (below).  Derivations — slice,
  take, compress, vstack — propagate these caches with O(selected) ndarray
  ops instead of rebuilding from the Python tuples.
- **String columns are dictionary-encoded at insert time.**
  :class:`ColumnEncoding` assigns each distinct value a small integer code
  when it first enters a table; scans expose the codes as an int ndarray.
  Joins then bucket the build side by sorting codes (pure numpy) instead of
  hashing 100k Python strings, and group-bys aggregate with ``bincount``
  over codes instead of bucketing rows.

Determinism notes, load-bearing for the batch-vs-row property tests:
``np.bincount`` accumulates sequentially in input order, which is exactly
the order the per-group Python ``sum`` sees, so float sums are bit-identical
(numpy's pairwise ``np.sum`` would NOT be).  Stable ``argsort`` on a negated
key equals Python's stable ``list.sort(reverse=True)``.  Numeric eligibility
rejects object/string/bool dtypes, NULLs, and NaNs where ordering differs.
"""

from __future__ import annotations

from typing import Any, Sequence

try:  # pragma: no cover - exercised implicitly by every accelerated path
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "np",
    "ColumnEncoding",
    "object_array",
    "numeric_array",
    "sortable_array",
    "array_kernel",
]

#: Whether the accelerated paths are available at all.
HAVE_NUMPY = _np is not None

#: The numpy module (or None) — importers use ``accel.np`` so every numpy
#: touch point stays behind the single HAVE_NUMPY guard.
np = _np


class ColumnEncoding:
    """Append-only dictionary encoding for one table column.

    Codes are assigned in first-appearance order and never change, so a code
    array sliced/gathered along with its batch always decodes through the
    same ``values`` list, even as the table keeps growing.
    """

    __slots__ = ("values", "index")

    def __init__(self) -> None:
        self.values: list[Any] = []
        self.index: dict[Any, int] = {}

    def encode(self, value: Any) -> int:
        """The code for ``value``, assigning the next code on first sight."""
        code = self.index.get(value)
        if code is None:
            code = len(self.values)
            self.index[value] = code
            self.values.append(value)
        return code

    def code_of(self, value: Any) -> int | None:
        """The existing code for ``value``, or None (never assigns)."""
        return self.index.get(value)

    def __len__(self) -> int:
        return len(self.values)


def object_array(column: Sequence[Any]) -> "Any":
    """The column as a 1-D object ndarray (original objects, no conversion).

    ``np.empty + fill`` keeps nested sequences (tuple/list values) as single
    elements where ``np.asarray`` would try to build a 2-D array.
    """
    arr = _np.empty(len(column), dtype=object)
    try:
        arr[:] = column
    except ValueError:  # ragged/nested values broke broadcasting; fill one by one
        for i, value in enumerate(column):
            arr[i] = value
    return arr


def numeric_array(column: Sequence[Any], *, assume_floats: bool = False) -> "Any | None":
    """The column as an int/float ndarray, or None if not homogeneous numeric.

    Bool, string, object and mixed columns (including any ``None``) are
    rejected — the Python reference path keeps their exact semantics.  A
    float array is only accepted when every source value actually *is* a
    float: a mixed int/float column silently coerces ints to float64, which
    loses exactness beyond 2**53 where Python's int/float comparisons and
    sums stay exact.  ``assume_floats`` skips that sweep for callers that
    already guarantee it (FLOAT table columns are coerced on insert).
    """
    try:
        arr = _np.asarray(column)
    except (TypeError, ValueError):
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "if":
        return None
    if (
        arr.dtype.kind == "f"
        and not assume_floats
        and not all(isinstance(v, float) for v in column)
    ):
        return None
    return arr


def sortable_array(column: Sequence[Any]) -> "Any | None":
    """A numeric array safe for stable argsort, or None.

    NaNs are excluded because numpy orders them last while Python's
    comparison-based sort has no defined order for them.
    """
    arr = numeric_array(column)
    if arr is None:
        return None
    if arr.dtype.kind == "f" and _np.isnan(arr).any():
        return None
    return arr


def array_kernel(expression: Any, batch: Any) -> "Any | None":
    """Evaluate a simple numeric expression straight on cached column arrays.

    Covers bare column references and ``+ - *`` arithmetic over them (with
    int/float literals), entirely in ndarray ops — no Python column
    materialization.  Returns None whenever exact equivalence with the
    per-row evaluator is not guaranteed: any ineligible column (see
    :func:`numeric_array`), an arithmetic result that is not float64 (int64
    could overflow where Python ints cannot), or division (Python raises on
    a zero divisor where numpy yields inf).  Elementwise float64 ``+ - *``
    is IEEE-identical to Python float arithmetic, so eligible results are
    bit-equal to the reference kernel's.
    """
    if not HAVE_NUMPY:
        return None
    from repro.storage.expressions import Arithmetic, ColumnRef

    if isinstance(expression, ColumnRef):
        index = batch.schema.try_index_of(expression.name)
        if index is None:
            return None
        return batch._num_array(index)
    if isinstance(expression, Arithmetic) and expression.op in ("+", "-", "*"):
        left = _array_operand(expression.left, batch)
        right = _array_operand(expression.right, batch)
        if left is None or right is None:
            return None
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            return None  # constant expression: nothing columnar to compute
        try:
            result = {"+": _np.add, "-": _np.subtract, "*": _np.multiply}[
                expression.op
            ](left, right)
        except (OverflowError, TypeError):  # e.g. a literal beyond int64
            return None
        if result.dtype.kind != "f":
            return None
        return result
    return None


def _array_operand(expression: Any, batch: Any) -> "Any | None":
    """An operand for :func:`array_kernel`: ndarray, plain scalar, or None."""
    from repro.storage.expressions import Literal

    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        return None
    return array_kernel(expression, batch)
