"""CSV import/export helpers for the storage engine.

Examples load small relational inputs (a companies list, a product catalog)
from CSV files, and experiment reports are exported back out as CSV, so the
storage substrate ships simple typed readers/writers.  Only scalar column
types round-trip through CSV; IMAGE and ANSWER_LIST columns are rejected.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import StorageError
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType

__all__ = ["load_csv", "dump_csv", "loads_csv", "dumps_csv"]

_SCALAR_PARSERS = {
    DataType.INTEGER: int,
    DataType.FLOAT: float,
    DataType.STRING: str,
    DataType.BOOLEAN: lambda text: text.strip().lower() in ("1", "true", "t", "yes"),
    DataType.ANY: str,
}


def _parse_cell(text: str, data_type: DataType):
    if text == "":
        return None
    try:
        parser = _SCALAR_PARSERS[data_type]
    except KeyError:
        raise StorageError(f"column type {data_type} cannot be loaded from CSV") from None
    try:
        return parser(text)
    except ValueError as exc:
        raise StorageError(f"cannot parse {text!r} as {data_type}") from exc


def loads_csv(name: str, schema: Schema, text: str, *, has_header: bool = True) -> Table:
    """Load a table from CSV text."""
    return _load(name, schema, io.StringIO(text), has_header=has_header)


def load_csv(name: str, schema: Schema, path: str | Path, *, has_header: bool = True) -> Table:
    """Load a table from a CSV file on disk."""
    with open(path, newline="", encoding="utf-8") as handle:
        return _load(name, schema, handle, has_header=has_header)


def _load(name: str, schema: Schema, handle: TextIO, *, has_header: bool) -> Table:
    reader = csv.reader(handle)
    table = Table(name, schema)
    rows = iter(reader)
    if has_header:
        header = next(rows, None)
        if header is not None and len(header) != len(schema):
            raise StorageError(
                f"CSV header has {len(header)} columns, schema has {len(schema)}"
            )
    for lineno, record in enumerate(rows, start=2 if has_header else 1):
        if not record:
            continue
        if len(record) != len(schema):
            raise StorageError(
                f"CSV line {lineno} has {len(record)} fields, expected {len(schema)}"
            )
        values = [
            _parse_cell(cell, column.data_type) for cell, column in zip(record, schema)
        ]
        table.insert(values)
    return table


def dumps_csv(table: Table, *, include_header: bool = True) -> str:
    """Serialise a table to CSV text."""
    buffer = io.StringIO()
    _dump(table, buffer, include_header=include_header)
    return buffer.getvalue()


def dump_csv(table: Table, path: str | Path, *, include_header: bool = True) -> None:
    """Write a table to a CSV file on disk."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _dump(table, handle, include_header=include_header)


def _dump(table: Table, handle: TextIO, *, include_header: bool) -> None:
    for column in table.schema:
        if column.data_type in (DataType.IMAGE, DataType.ANSWER_LIST, DataType.TUPLE):
            raise StorageError(
                f"column {column.name!r} of type {column.data_type} cannot be written to CSV"
            )
    writer = csv.writer(handle)
    if include_header:
        writer.writerow(table.schema.names)
    for row in table:
        writer.writerow(["" if value is None else value for value in row.values])


def _iter_rows(rows: Iterable) -> Iterable:  # pragma: no cover - compatibility shim
    return rows
