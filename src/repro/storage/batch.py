"""Column-major row batches — the unit of exchange of the local data plane.

A :class:`RowBatch` holds the values of many rows over one shared schema as a
tuple of columns (one value-tuple per column).  Since the columnar execution
PR, operator input queues carry ``RowBatch`` objects end-to-end: scans emit
slices of a table's cached column snapshot, filters apply selection vectors
(:meth:`compress`), joins and sorts gather columns by index (:meth:`take`),
and rows are materialized only at the boundaries that genuinely need
row-major data — result sinks, crowd-operator task emission, and HIT
compilation.

Batches are immutable, like rows, and round-trip losslessly:
``RowBatch.from_rows(schema, rows).to_rows() == rows``.  Materializing rows
from a batch goes through :meth:`Row.unchecked` — batch values are taken from
already-validated rows (or validated on :meth:`from_values`), so they are
never re-coerced.  All derivations (:meth:`slice`, :meth:`take`,
:meth:`compress`, :meth:`concat`, :meth:`with_schema`) reuse the validated
column tuples through the trusted :meth:`of_columns` constructor.

Each batch also lazily caches per-column ndarray views (object arrays for
gathers, numeric arrays for masks/sorts/aggregation, dictionary codes for
string columns — see :mod:`repro.storage.accel`).  The caches are an
encode-once/answer-many accelerator: derivations propagate them with cheap
ndarray ops, so a column is converted at most once per scan no matter how
many operators downstream gather from it.  Every accelerated path falls back
to the pure-Python tuple implementation, which remains the reference
semantics.
"""

from __future__ import annotations

from itertools import chain, compress
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage import accel
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["RowBatch"]

#: Below this many rows the plain tuple paths beat ndarray setup costs.
_ACCEL_MIN_ROWS = 256


class _LazyGather:
    """A deferred gather: ``source[indices]``, composed instead of executed.

    Filters, joins and sorts each reorder rows; gathering every object
    column at every step would dominate their cost even though most columns
    are only ever read as ndarray caches (numeric arrays, dictionary codes)
    or not at all.  A lazy column keeps the *source* object ndarray and the
    index array; successive takes compose index arrays (cheap intp gathers)
    and the object gather runs only if someone actually reads the column.
    """

    __slots__ = ("source", "indices")

    def __init__(self, source, indices):
        self.source = source
        self.indices = indices

    def realize(self):
        return self.source[self.indices]

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self):
        return iter(self.realize())

    def __getitem__(self, item):
        if isinstance(item, slice):
            return _LazyGather(self.source, self.indices[item])
        return self.source[self.indices[item]]


class RowBatch:
    """An immutable, column-major block of rows sharing one schema."""

    __slots__ = ("_schema", "_columns", "_length", "_accel")

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        columns = tuple(tuple(column) for column in columns)
        if len(columns) != len(schema):
            raise SchemaError(
                f"batch has {len(columns)} columns but schema has {len(schema)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(f"batch columns have unequal lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns = columns
        self._length = lengths.pop() if lengths else 0
        self._accel: dict | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def of_columns(
        cls, schema: Schema, columns: tuple[tuple[Any, ...], ...], length: int
    ) -> "RowBatch":
        """Trusted constructor: bind already-validated column tuples directly.

        The hot path for every batch derivation — no re-tupling, no length
        reconciliation.  ``columns`` must hold exactly ``length`` validated
        values per schema column, as tuples or (internally, from numpy
        gathers) lazy object ndarrays — see :meth:`_materialized`.
        """
        batch = object.__new__(cls)
        batch._schema = schema
        batch._columns = columns
        batch._length = length
        batch._accel = None
        return batch

    @classmethod
    def empty(cls, schema: Schema) -> "RowBatch":
        """A zero-row batch over ``schema``."""
        return cls.of_columns(schema, tuple(() for _ in range(len(schema))), 0)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Row]) -> "RowBatch":
        """Transpose validated rows into a column-major batch (no re-coercion)."""
        rows = list(rows)
        width = len(schema)
        for row in rows:
            if len(row.values) != width:
                raise SchemaError(
                    f"row width {len(row.values)} does not match schema width {width}"
                )
        if not rows:
            return cls(schema, tuple(() for _ in range(width)))
        return cls.of_columns(
            schema, tuple(zip(*(row.values for row in rows))), len(rows)
        )

    @classmethod
    def single(cls, row: Row) -> "RowBatch":
        """Wrap one validated row as a one-row batch (trusted fast path)."""
        return cls.of_columns(
            row.schema, tuple((value,) for value in row.values), 1
        )

    @classmethod
    def from_values(cls, schema: Schema, value_rows: Iterable[Sequence[Any]]) -> "RowBatch":
        """Validate row-major raw values against ``schema`` and batch them."""
        rows = [Row(schema, values) for values in value_rows]
        return cls.from_rows(schema, rows)

    @classmethod
    def vstack(cls, schema: Schema, batches: Sequence["RowBatch"]) -> "RowBatch":
        """Concatenate several batches of the same width along the row axis."""
        batches = [batch for batch in batches if batch._length]
        if not batches:
            return cls.empty(schema)
        if len(batches) == 1:
            only = batches[0]
            return only if only._schema is schema else only.with_schema(schema)
        width = len(schema)
        for batch in batches:
            if len(batch._columns) != width:
                raise SchemaError(
                    f"cannot vstack a {len(batch._columns)}-column batch into a "
                    f"{width}-column schema"
                )
        length = sum(batch._length for batch in batches)
        if accel.HAVE_NUMPY and length >= _ACCEL_MIN_ROWS:
            columns = tuple(cls._stack_column(batches, i) for i in range(width))
        else:
            columns = tuple(
                tuple(chain.from_iterable(batch._materialized(i) for batch in batches))
                for i in range(width)
            )
        stacked = cls.of_columns(schema, columns, length)
        stacked._stack_accel(batches, width)
        return stacked

    @staticmethod
    def _stack_column(batches: Sequence["RowBatch"], i: int):
        """One vstacked column as a lazy ndarray (see :class:`_LazyGather`).

        Parts that are lazy gathers off the *same* source array — the usual
        case for the per-step slices of one filtered scan — stay lazy with
        their index arrays concatenated; anything else concatenates the
        parts' object ndarrays.
        """
        parts = [batch._columns[i] for batch in batches]
        if all(type(part) is _LazyGather for part in parts):
            if len({id(part.source) for part in parts}) == 1:
                return _LazyGather(
                    parts[0].source,
                    accel.np.concatenate([part.indices for part in parts]),
                )
        return accel.np.concatenate(
            [batch._obj_array(i) for batch in batches]
        )

    def _stack_accel(self, batches: Sequence["RowBatch"], width: int) -> None:
        """Concatenate per-column accel caches carried by *every* part.

        Scans emit per-step slices of one snapshot, each carrying array
        views; re-joining them here keeps codes/numeric caches flowing into
        blocking operators without ever rebuilding from Python tuples.
        """
        if not accel.HAVE_NUMPY:
            return
        parts = [batch._accel for batch in batches]
        if any(part is None for part in parts):
            return
        merged: dict = {}
        for i in range(width):
            codes = [part.get(("codes", i)) for part in parts]
            if all(entry is not None for entry in codes):
                encodings = {id(entry[1]) for entry in codes}
                if len(encodings) == 1:
                    merged[("codes", i)] = (
                        accel.np.concatenate([entry[0] for entry in codes]),
                        codes[0][1],
                    )
            nums = [part.get(("num", i)) for part in parts]
            if all(entry is not None and entry is not False for entry in nums):
                merged[("num", i)] = accel.np.concatenate(nums)
        if merged:
            self._accel = merged

    # -- accel cache (see repro.storage.accel) ------------------------------

    def _cache(self) -> dict:
        cache = self._accel
        if cache is None:
            cache = self._accel = {}
        return cache

    def _obj_array(self, i: int):
        """The column at ``i`` as a cached object ndarray (gather substrate)."""
        column = self._columns[i]
        if type(column) is _LazyGather:
            arr = column.realize()
            columns = list(self._columns)
            columns[i] = arr
            self._columns = tuple(columns)
            return arr
        if type(column) is not tuple:  # lazy column: already an object ndarray
            return column
        cache = self._cache()
        arr = cache.get(("obj", i))
        if arr is None:
            arr = cache[("obj", i)] = accel.object_array(column)
        return arr

    def _num_array(self, i: int):
        """The column at ``i`` as a numeric ndarray, or None (cached either way)."""
        cache = self._cache()
        arr = cache.get(("num", i))
        if arr is None:
            arr = accel.numeric_array(self._materialized(i))
            cache[("num", i)] = arr if arr is not None else False
        return None if arr is False else arr

    def _codes(self, i: int):
        """``(codes ndarray, ColumnEncoding)`` for a dictionary-encoded column."""
        cache = self._accel
        return cache.get(("codes", i)) if cache else None

    def _set_codes(self, i: int, codes, encoding) -> None:
        self._cache()[("codes", i)] = (codes, encoding)

    def _set_num(self, i: int, arr) -> None:
        self._cache()[("num", i)] = arr

    # -- inspection ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema every row of this batch conforms to."""
        return self._schema

    def __len__(self) -> int:
        return self._length

    def _materialized(self, i: int) -> tuple[Any, ...]:
        """The column at ``i`` as a tuple, converting a lazy ndarray in place.

        Numpy gathers (:meth:`_take_array`) leave columns as object ndarrays
        of the original validated values; consumers that want Python tuples
        pay the conversion here, once, only for the columns they read.
        """
        column = self._columns[i]
        if type(column) is tuple:
            return column
        if type(column) is _LazyGather:
            column = column.realize()
        column = tuple(column.tolist())
        columns = list(self._columns)
        columns[i] = column
        self._columns = tuple(columns)
        return column

    def column(self, name: str) -> tuple[Any, ...]:
        """All values of one column, resolved by (possibly unqualified) name."""
        return self._materialized(self._schema.index_of(name))

    def column_at(self, index: int) -> tuple[Any, ...]:
        """All values of the column at ``index``."""
        return self._materialized(index)

    @property
    def columns(self) -> tuple[tuple[Any, ...], ...]:
        """The underlying column tuples, in schema order."""
        for i in range(len(self._columns)):
            self._materialized(i)
        return self._columns

    # -- derivation ---------------------------------------------------------

    def slice(self, start: int, stop: int) -> "RowBatch":
        """Rows ``start:stop`` as a new batch (one tuple slice per column)."""
        if start == 0 and stop >= self._length:
            return self
        columns = tuple(column[start:stop] for column in self._columns)
        length = len(columns[0]) if columns else max(min(stop, self._length) - start, 0)
        sliced = RowBatch.of_columns(self._schema, columns, length)
        if self._accel:
            sliced._accel = {
                key: (
                    (entry[0][start:stop], entry[1])
                    if key[0] == "codes"
                    else (entry[start:stop] if entry is not False else False)
                )
                for key, entry in self._accel.items()
            }
        return sliced

    def take(self, indices: Sequence[int]) -> "RowBatch":
        """Gather the rows at ``indices`` (in that order) into a new batch."""
        if (
            accel.HAVE_NUMPY
            and self._length >= _ACCEL_MIN_ROWS
            and len(indices) >= _ACCEL_MIN_ROWS
        ):
            index_array = accel.np.asarray(indices, dtype=accel.np.intp)
            return self._take_array(index_array)
        columns = tuple(
            tuple(map(column.__getitem__, indices)) for column in self._columns
        )
        return RowBatch.of_columns(self._schema, columns, len(indices))

    def _take_array(self, index_array) -> "RowBatch":
        """Numpy gather: index every cached column array with one fancy index.

        Gathered columns stay as object ndarrays (lazy — see
        :meth:`_materialized`), so a batch that flows straight into another
        accelerated operator never round-trips through Python tuples.
        """
        columns = []
        taken_accel: dict = {}
        for i in range(len(self._columns)):
            column = self._columns[i]
            if type(column) is _LazyGather:  # compose index arrays, no gather
                columns.append(_LazyGather(column.source, column.indices[index_array]))
            else:
                columns.append(_LazyGather(self._obj_array(i), index_array))
            entry = self._accel.get(("num", i)) if self._accel else None
            if entry is not None and entry is not False:
                taken_accel[("num", i)] = entry[index_array]
            codes = self._codes(i)
            if codes is not None:
                taken_accel[("codes", i)] = (codes[0][index_array], codes[1])
        batch = RowBatch.of_columns(self._schema, tuple(columns), int(len(index_array)))
        batch._accel = taken_accel
        return batch

    def compress(self, mask: Sequence[Any]) -> "RowBatch":
        """Keep rows whose mask entry is truthy (an itertools.compress per column)."""
        columns = tuple(tuple(compress(column, mask)) for column in self._columns)
        length = len(columns[0]) if columns else 0
        return RowBatch.of_columns(self._schema, columns, length)

    def _compress_array(self, mask_array) -> "RowBatch":
        """Numpy selection-vector path: gather rows where the bool mask is set."""
        return self._take_array(accel.np.flatnonzero(mask_array))

    def concat(self, other: "RowBatch") -> "RowBatch":
        """Column-wise concatenation of two equal-length batches (join output)."""
        if self._length != other._length:
            raise SchemaError(
                f"cannot concat batches of {self._length} and {other._length} rows"
            )
        joined = RowBatch.of_columns(
            self._schema.concat(other._schema),
            self._columns + other._columns,
            self._length,
        )
        if self._accel or other._accel:
            width = len(self._columns)
            merged: dict = dict(self._accel or {})
            for (kind, i), entry in (other._accel or {}).items():
                merged[(kind, i + width)] = entry
            joined._accel = merged
        return joined

    def with_schema(self, schema: Schema) -> "RowBatch":
        """Rebind this batch's columns to a same-shaped schema without copying.

        A change of column types falls back to per-value validation, exactly
        like :meth:`Row.with_schema`.
        """
        if schema is self._schema or schema.same_shape_as(self._schema):
            rebound = RowBatch.of_columns(schema, self._columns, self._length)
            rebound._accel = self._accel
            return rebound
        return RowBatch.from_rows(
            schema, [Row(schema, values) for values in zip(*self._columns)]
        ) if self._columns else RowBatch.empty(schema)

    # -- materialization ----------------------------------------------------

    def to_rows(self) -> list[Row]:
        """Materialize the batch back into rows (trusted fast path)."""
        schema = self._schema
        if not self._columns:
            return [Row.unchecked(schema, ()) for _ in range(self._length)]
        return [Row.unchecked(schema, values) for values in zip(*self._columns)]

    def __iter__(self) -> Iterator[Row]:
        return iter(self.to_rows())

    def __repr__(self) -> str:
        return f"RowBatch({self._length} rows, schema={self._schema})"
