"""Column-major row batches.

A :class:`RowBatch` holds the values of many rows over one shared schema as a
tuple of columns (one value-tuple per column).  The operator pipeline itself
exchanges row-major ``list[Row]`` slices (queues stay row-oriented); a
``RowBatch`` is the complementary *bulk exchange* container for
column-at-a-time work at the storage boundary — snapshotting a table
(:meth:`Table.to_batch`), bulk-loading one (:meth:`Table.insert_batch`), or
handing a column to analysis code without paying one :class:`Row` lookup per
value: extracting a column is a single tuple reference instead of ``n``
per-row lookups.

Batches are immutable, like rows, and round-trip losslessly:
``RowBatch.from_rows(schema, rows).to_rows() == rows``.  Materializing rows
from a batch goes through :meth:`Row.unchecked` — batch values are taken from
already-validated rows (or validated on :meth:`from_values`), so they are
never re-coerced.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["RowBatch"]


class RowBatch:
    """An immutable, column-major block of rows sharing one schema."""

    __slots__ = ("_schema", "_columns", "_length")

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        columns = tuple(tuple(column) for column in columns)
        if len(columns) != len(schema):
            raise SchemaError(
                f"batch has {len(columns)} columns but schema has {len(schema)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise SchemaError(f"batch columns have unequal lengths: {sorted(lengths)}")
        self._schema = schema
        self._columns = columns
        self._length = lengths.pop() if lengths else 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Row]) -> "RowBatch":
        """Transpose validated rows into a column-major batch (no re-coercion)."""
        rows = list(rows)
        width = len(schema)
        for row in rows:
            if len(row.values) != width:
                raise SchemaError(
                    f"row width {len(row.values)} does not match schema width {width}"
                )
        if not rows:
            return cls(schema, tuple(() for _ in range(width)))
        batch = object.__new__(cls)
        batch._schema = schema
        batch._columns = tuple(zip(*(row.values for row in rows)))
        batch._length = len(rows)
        return batch

    @classmethod
    def from_values(cls, schema: Schema, value_rows: Iterable[Sequence[Any]]) -> "RowBatch":
        """Validate row-major raw values against ``schema`` and batch them."""
        rows = [Row(schema, values) for values in value_rows]
        return cls.from_rows(schema, rows)

    # -- inspection ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The schema every row of this batch conforms to."""
        return self._schema

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> tuple[Any, ...]:
        """All values of one column, resolved by (possibly unqualified) name."""
        return self._columns[self._schema.index_of(name)]

    def column_at(self, index: int) -> tuple[Any, ...]:
        """All values of the column at ``index``."""
        return self._columns[index]

    @property
    def columns(self) -> tuple[tuple[Any, ...], ...]:
        """The underlying column tuples, in schema order."""
        return self._columns

    # -- materialization ----------------------------------------------------

    def to_rows(self) -> list[Row]:
        """Materialize the batch back into rows (trusted fast path)."""
        schema = self._schema
        if not self._columns:
            return [Row.unchecked(schema, ()) for _ in range(self._length)]
        return [Row.unchecked(schema, values) for values in zip(*self._columns)]

    def __iter__(self) -> Iterator[Row]:
        return iter(self.to_rows())

    def __repr__(self) -> str:
        return f"RowBatch({self._length} rows, schema={self._schema})"
