"""In-memory relational storage engine (the Storage Engine box of Figure 1).

Public surface::

    from repro.storage import Database, Table, Schema, Column, Row, DataType

The engine is deliberately small — crowd workloads are thousands of tuples,
not millions — but fully typed, with schemas, expression evaluation, hash
indexes, CSV import/export and results tables supporting incremental polling.
"""

from repro.storage.batch import RowBatch
from repro.storage.catalog import Catalog
from repro.storage.csv_io import dump_csv, dumps_csv, load_csv, loads_csv
from repro.storage.database import Database
from repro.storage.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FieldAccess,
    FunctionCall,
    Literal,
    Not,
    compile_expression,
    find_calls,
    walk,
)
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import DataType, coerce_value, is_null

__all__ = [
    "Catalog",
    "Database",
    "Table",
    "Schema",
    "Column",
    "Row",
    "RowBatch",
    "DataType",
    "coerce_value",
    "is_null",
    "Expression",
    "Literal",
    "ColumnRef",
    "FunctionCall",
    "FieldAccess",
    "Comparison",
    "BooleanOp",
    "Not",
    "Arithmetic",
    "walk",
    "find_calls",
    "compile_expression",
    "load_csv",
    "loads_csv",
    "dump_csv",
    "dumps_csv",
]
