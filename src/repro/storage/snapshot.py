"""Versioned, atomic engine snapshots + exact-round-trip value packing.

A snapshot is one JSON file, ``snapshot-<LSN 12 digits>.json``, written
with the classic temp-then-rename dance (write, flush, fsync, rename,
fsync directory) so a crash mid-write leaves either the previous
snapshot or a complete new one — never a half file.  Each file carries a
format version, the WAL LSN it is consistent with, and a CRC32 over the
canonical JSON encoding of the state; :func:`load_latest_snapshot` walks
snapshots newest-first and falls back to an older file when the newest
fails its checksum or decode.

Because engine state includes dict keys and cached values built from
tuples (task-cache keys, JOIN_BLOCK reductions), plain JSON would
silently lower tuples to lists and break key equality on restore.
:func:`pack_value` / :func:`unpack_value` tag every value with its
concrete type so the round trip is *exact* — and raise
:class:`~repro.errors.SnapshotError` on anything unsupported, because a
silently-dropped cache entry would diverge recovery fingerprints.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any

from repro.errors import SnapshotError

__all__ = [
    "SNAPSHOT_VERSION",
    "pack_value",
    "unpack_value",
    "pack_rng_state",
    "unpack_rng_state",
    "write_snapshot",
    "load_latest_snapshot",
    "snapshot_path",
]

SNAPSHOT_VERSION = 1

_SNAPSHOT_GLOB = "snapshot-*.json"

#: JSON-native scalars that survive a round trip unchanged (bool before
#: int matters only for isinstance checks; json keeps them distinct).
_SCALARS = (bool, int, float, str)


def pack_value(value: Any) -> Any:
    """Encode ``value`` as a JSON-safe tagged structure; exact round trip."""
    if value is None or isinstance(value, _SCALARS):
        return {"t": "s", "v": value}
    if isinstance(value, tuple):
        return {"t": "t", "v": [pack_value(item) for item in value]}
    if isinstance(value, list):
        return {"t": "l", "v": [pack_value(item) for item in value]}
    if isinstance(value, dict):
        pairs = []
        for key, item in value.items():
            pairs.append([pack_value(key), pack_value(item)])
        return {"t": "d", "v": pairs}
    raise SnapshotError(
        f"cannot snapshot a value of type {type(value).__name__!r}: {value!r}"
    )


def unpack_value(packed: Any) -> Any:
    """Inverse of :func:`pack_value`."""
    try:
        tag, value = packed["t"], packed["v"]
    except (TypeError, KeyError) as error:
        raise SnapshotError(f"malformed packed value: {packed!r}") from error
    if tag == "s":
        return value
    if tag == "t":
        return tuple(unpack_value(item) for item in value)
    if tag == "l":
        return [unpack_value(item) for item in value]
    if tag == "d":
        return {unpack_value(key): unpack_value(item) for key, item in value}
    raise SnapshotError(f"unknown pack tag {tag!r}")


def pack_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` -> JSON-safe list."""
    version, internal, gauss = state
    return [version, list(internal), gauss]


def unpack_rng_state(packed: list) -> tuple:
    """Inverse of :func:`pack_rng_state` (for ``Random.setstate``)."""
    version, internal, gauss = packed
    return (version, tuple(internal), gauss)


def snapshot_path(directory: str | Path, lsn: int) -> Path:
    return Path(directory) / f"snapshot-{lsn:012d}.json"


def _canonical(state: dict[str, Any]) -> str:
    try:
        return json.dumps(state, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise SnapshotError(f"snapshot state is not JSON-serialisable: {error}") from error


def write_snapshot(
    directory: str | Path, state: dict[str, Any], *, lsn: int, keep: int = 2
) -> Path:
    """Atomically persist ``state`` as the snapshot consistent with ``lsn``.

    Keeps the newest ``keep`` snapshot files and prunes the rest — one
    spare generation survives so a corrupt newest file still recovers.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = _canonical(state)
    document = {
        "version": SNAPSHOT_VERSION,
        "lsn": lsn,
        "checksum": zlib.crc32(body.encode("utf-8")),
        "state": state,
    }
    target = snapshot_path(directory, lsn)
    tmp_path = target.with_suffix(".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, target)
    _fsync_directory(directory)
    for stale in sorted(directory.glob(_SNAPSHOT_GLOB))[:-keep]:
        stale.unlink(missing_ok=True)
    return target


def load_latest_snapshot(directory: str | Path) -> tuple[int, dict[str, Any]] | None:
    """Newest readable snapshot as ``(lsn, state)``, or None if none exist.

    Corrupt files (bad JSON, wrong version, checksum mismatch) are skipped
    in favour of the next-newest; if files exist but *none* is readable
    that is a :class:`~repro.errors.SnapshotError`, not a silent cold
    start — recovery must not quietly discard paid-for state.
    """
    candidates = sorted(Path(directory).glob(_SNAPSHOT_GLOB), reverse=True)
    if not candidates:
        return None
    failures: list[str] = []
    for path in candidates:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document["version"] != SNAPSHOT_VERSION:
                raise SnapshotError(f"unsupported snapshot version {document['version']}")
            state = document["state"]
            body = _canonical(state)
            if zlib.crc32(body.encode("utf-8")) != document["checksum"]:
                raise SnapshotError("checksum mismatch")
            return int(document["lsn"]), state
        except (OSError, ValueError, KeyError, TypeError, SnapshotError) as error:
            failures.append(f"{path.name}: {error}")
    raise SnapshotError(
        "no readable snapshot in "
        f"{directory} ({'; '.join(failures)})"
    )


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
