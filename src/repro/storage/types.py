"""Column type system for the Qurk storage engine.

The storage engine is deliberately small but typed: every column declares a
:class:`DataType`, and values are validated/coerced when rows are inserted.
Two non-standard types exist because of the crowd setting described in the
paper:

``IMAGE``
    An opaque reference to an image shown to a turker.  In this reproduction
    images are :class:`repro.workloads.images.SyntheticImage` objects (or any
    object exposing ``identity``/``features``), but the storage layer only
    requires them to be hashable-free opaque payloads.

``ANSWER_LIST``
    The multi-answer value described in Section 3 of the paper: a single HIT
    run with *k* assignments yields a list of *k* answers which downstream
    user-defined aggregates reduce.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypeCheckError

__all__ = ["DataType", "coerce_value", "is_null", "python_type_of"]


class DataType(enum.Enum):
    """Logical column types understood by the storage engine."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    IMAGE = "image"
    TUPLE = "tuple"
    ANSWER_LIST = "answer_list"
    ANY = "any"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.TUPLE: (tuple,),
    DataType.ANSWER_LIST: (list, tuple),
}


def python_type_of(data_type: DataType) -> tuple[type, ...]:
    """Return the Python types acceptable for ``data_type`` (empty = any)."""
    return _PYTHON_TYPES.get(data_type, ())


def is_null(value: Any) -> bool:
    """Return True when ``value`` represents SQL NULL."""
    return value is None


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Validate ``value`` against ``data_type``, coercing where unambiguous.

    ``None`` is always accepted (NULL).  Integers are accepted for FLOAT
    columns and widened; strings holding digits are *not* silently coerced,
    because that tends to hide workload-generation bugs.

    Raises
    ------
    TypeCheckError
        If the value cannot be stored in a column of the given type.
    """
    if value is None:
        return None
    if data_type in (DataType.ANY, DataType.IMAGE):
        return value
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise TypeCheckError(f"expected BOOLEAN, got {type(value).__name__}: {value!r}")
    if data_type is DataType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeCheckError(f"expected INTEGER, got {type(value).__name__}: {value!r}")
        return value
    if data_type is DataType.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeCheckError(f"expected FLOAT, got {type(value).__name__}: {value!r}")
        return float(value)
    if data_type is DataType.STRING:
        if not isinstance(value, str):
            raise TypeCheckError(f"expected STRING, got {type(value).__name__}: {value!r}")
        return value
    if data_type is DataType.TUPLE:
        if not isinstance(value, tuple):
            raise TypeCheckError(f"expected TUPLE, got {type(value).__name__}: {value!r}")
        return value
    if data_type is DataType.ANSWER_LIST:
        if not isinstance(value, (list, tuple)):
            raise TypeCheckError(
                f"expected ANSWER_LIST, got {type(value).__name__}: {value!r}"
            )
        return list(value)
    raise TypeCheckError(f"unsupported data type {data_type!r}")  # pragma: no cover
