"""Database facade bundling a catalog with convenience helpers.

A :class:`Database` is the Storage Engine box of Figure 1: it owns every base
table, the per-query results tables that the executor appends to, and the
persistent task-cache table used across queries.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.storage.catalog import Catalog
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import DataType

__all__ = ["Database"]


class Database:
    """An in-memory database instance."""

    def __init__(self, name: str = "qurk"):
        self.name = name
        self.catalog = Catalog()
        self._results_counter = 0

    # -- table management ----------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Iterable[Column | tuple[str, DataType] | str],
        *,
        if_not_exists: bool = False,
    ) -> Table:
        """Create a table from column specs (see :meth:`Schema.of`)."""
        schema = Schema.of(*columns)
        return self.catalog.create_table(name, schema, if_not_exists=if_not_exists)

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        return self.catalog.table(name)

    def has_table(self, name: str) -> bool:
        """Return True when the named table exists."""
        return self.catalog.has_table(name)

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        """Drop the named table."""
        self.catalog.drop_table(name, if_exists=if_exists)

    # -- data loading ---------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Row | Mapping[str, Any] | Iterable[Any]]) -> int:
        """Insert rows into a table; returns the number inserted."""
        table = self.table(table_name)
        count = 0
        for row in rows:
            table.insert(row)
            count += 1
        return count

    # -- results tables --------------------------------------------------------

    def create_results_table(self, schema: Schema, *, query_id: str | None = None) -> Table:
        """Create a fresh results table for a query (Section 2: users poll it)."""
        self._results_counter += 1
        suffix = query_id or str(self._results_counter)
        name = f"__results_{suffix}"
        return self.catalog.create_table(name, schema, if_not_exists=False)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.catalog.table_names()})"
