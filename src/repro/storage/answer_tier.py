"""The durable answer tier: cached crowd answers that outlive the process.

Section 3 reuses cached results "even possibly in different queries"; at
traffic scale the repetition worth amortizing spans *engines and restarts*,
not just queries.  This module backs the in-memory
:class:`~repro.core.tasks.task_cache.TaskCache` with the PR 8 storage layer:
every admitted store appends an ``answer_stored`` record to an append-only
WAL (``answers.log``), and :meth:`DurableAnswerTier.checkpoint` compacts the
log into a CRC-checked snapshot via :mod:`repro.storage.snapshot`.

Opening the tier replays snapshot + log back into memory;
:meth:`DurableAnswerTier.load_into` then warms a fresh engine's cache through
:meth:`TaskCache.preload` — no stats churn, no re-journaling, live entries
win.  Attaching is strictly opt-in (``QurkEngine.attach_answer_tier``): an
engine without a tier is byte-identical to one that never had the feature.

The tier wants its *own* directory — snapshot filenames would collide with
the engine WAL's checkpoints if they shared one — and that is enforced at
open time by refusing a directory that already holds an engine ``wal.log``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Hashable

from repro.errors import StorageError, WALCorruptionError
from repro.storage.snapshot import (
    load_latest_snapshot,
    pack_value,
    unpack_value,
    write_snapshot,
)
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tasks.task_cache import CacheEntry, TaskCache

__all__ = ["ANSWERS_WAL_FILENAME", "DurableAnswerTier"]

ANSWERS_WAL_FILENAME = "answers.log"

#: The engine durability WAL's filename — its presence marks a directory as
#: an engine journal home, which the answer tier must not share (snapshot
#: files of the two layers would clobber each other).
_ENGINE_WAL_FILENAME = "wal.log"


def _packed_entry(name: str, cache_key: Hashable, entry: "CacheEntry") -> dict:
    return {
        "name": name,
        "key": pack_value(cache_key),
        "reduced": pack_value(entry.reduced),
        "original_cost": entry.original_cost,
        "stored_at": entry.stored_at,
        "confidence": entry.confidence,
    }


class DurableAnswerTier:
    """A WAL + snapshot backed store of cached task answers.

    One tier directory can be shared sequentially across engines (answer,
    restart, reuse); concurrent cross-process sharing goes through the
    cluster coordinator's answer directory instead, which pushes entries
    over the shard protocol.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 64,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / _ENGINE_WAL_FILENAME).exists():
            raise StorageError(
                f"{self.directory} already holds an engine WAL; the answer tier "
                "needs its own directory (snapshot files would collide)"
            )
        # In-memory view of the durable state, rebuilt on open: snapshot
        # first, then the surviving log tail, last write wins.
        self._entries: dict[tuple[str, Hashable], "CacheEntry"] = {}
        path = self.directory / ANSWERS_WAL_FILENAME
        snapshot = load_latest_snapshot(self.directory)
        base_lsn = 0
        if snapshot is not None:
            base_lsn, state = snapshot
            for item in state["entries"]:
                key, entry = self._decode(item)
                self._entries[key] = entry
        if path.exists():
            try:
                self.wal, info = WriteAheadLog.open(
                    path, fsync=fsync, fsync_every=fsync_every
                )
            except WALCorruptionError as error:
                raise StorageError(f"unreadable answer log {path}: {error}") from error
            for record in info.records:
                if record.lsn <= base_lsn:
                    continue
                self._apply(record.type, record.data)
        else:
            self.wal = WriteAheadLog.create(
                path,
                spec={"layer": "answer-tier", "version": 1},
                base_lsn=base_lsn,
                fsync=fsync,
                fsync_every=fsync_every,
            )

    # -- replay ---------------------------------------------------------------

    def _decode(self, item: dict) -> tuple[tuple[str, Hashable], "CacheEntry"]:
        from repro.core.tasks.task_cache import CacheEntry

        key = (item["name"], unpack_value(item["key"]))
        entry = CacheEntry(
            reduced=unpack_value(item["reduced"]),
            original_cost=item["original_cost"],
            stored_at=item["stored_at"],
            confidence=item.get("confidence", 1.0),
        )
        return key, entry

    def _apply(self, record_type: str, data: dict) -> None:
        if record_type == "answer_stored":
            key, entry = self._decode(data)
            self._entries[key] = entry
        elif record_type == "answers_invalidated":
            name = data["name"]
            if name is None:
                self._entries.clear()
            else:
                for key in [key for key in self._entries if key[0] == name]:
                    del self._entries[key]
        # Unknown record types are skipped: a newer writer may add kinds an
        # older reader can safely ignore.

    # -- the TaskCache listener protocol ---------------------------------------

    def record_store(self, name: str, cache_key: Hashable, entry: "CacheEntry") -> None:
        """Journal one admitted store (called by the attached TaskCache)."""
        self._entries[(name, cache_key)] = entry
        self.wal.append("answer_stored", _packed_entry(name, cache_key, entry))

    def record_invalidate(self, name: str | None) -> None:
        """Journal an invalidation of one task name (or everything)."""
        self._apply("answers_invalidated", {"name": name})
        self.wal.append("answers_invalidated", {"name": name}, durable=True)

    # -- warming a cache -------------------------------------------------------

    def load_into(self, cache: "TaskCache") -> int:
        """Preload every durable answer into ``cache``; returns count loaded.

        Existing cache entries win (an engine's live answers are fresher
        than disk), and preloads bypass the cache's store log and tier
        notifications, so warming never echoes back into this WAL.
        """
        loaded = 0
        for (name, cache_key), entry in self._entries.items():
            if cache.preload(name, cache_key, entry):
                loaded += 1
        return loaded

    # -- lifecycle -------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def checkpoint(self) -> Path:
        """Compact: snapshot the current entries and truncate the log."""
        self.wal.flush()
        lsn = self.wal.last_lsn
        path = write_snapshot(
            self.directory,
            {
                "layer": "answer-tier",
                "entries": [
                    _packed_entry(name, cache_key, entry)
                    for (name, cache_key), entry in self._entries.items()
                ],
            },
            lsn=lsn,
        )
        self.wal.truncate_to(lsn)
        return path

    def flush(self) -> None:
        self.wal.flush()

    def close(self) -> None:
        if self.wal.is_open:
            self.wal.flush()
            self.wal.close()
