"""Secondary indexes for in-memory tables.

Two index shapes cover the workload's access paths:

- :class:`HashIndex` — value → row positions, for equality predicates and
  index-backed hash-join build sides.
- :class:`SortedIndex` — a bisect-maintained ``(value, position)`` list, for
  range predicates.

Both are maintained incrementally by ``Table.insert`` / ``append_rows`` /
``insert_batch`` (an ``add`` per new row) and answer **positions**, not rows:
the :class:`~repro.core.operators.scan.IndexScanOperator` gathers the matched
positions out of the table's cached column snapshot, so an index probe feeds
straight into the columnar pipeline.  Position lists are always returned in
ascending order, which keeps index-scan output byte-identical to
scan-then-filter over the same predicate.

NULLs are never indexed for matching purposes: SQL predicates are
three-valued and ``column op NULL`` is never True, so equality probes with
``None`` return no positions and :class:`SortedIndex` excludes NULL keys
entirely.  (:class:`HashIndex` still records NULL keys so distinct-count
statistics and join build sides can see them, but ``positions_equal(None)``
is empty.)
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any

from repro.errors import StorageError

__all__ = ["HashIndex", "SortedIndex", "INDEX_KINDS"]


class HashIndex:
    """An equality index: value → list of row positions (insertion order)."""

    kind = "hash"

    __slots__ = ("column", "_buckets")

    def __init__(self, column: str):
        self.column = column
        self._buckets: dict[Any, list[int]] = {}

    def add(self, value: Any, position: int) -> None:
        """Record that ``position`` holds ``value`` (positions arrive ascending)."""
        self._buckets.setdefault(value, []).append(position)

    def positions_equal(self, value: Any) -> list[int]:
        """Row positions where the column equals ``value``, ascending.

        A ``None`` probe matches nothing: NULL = NULL is NULL, not True.
        """
        if value is None:
            return []
        return self._buckets.get(value, [])

    @property
    def buckets(self) -> dict[Any, list[int]]:
        """The raw value → positions mapping (join build sides reuse it)."""
        return self._buckets

    def distinct_count(self) -> int:
        """Number of distinct non-NULL key values."""
        return len(self._buckets) - (1 if None in self._buckets else 0)

    def clear(self) -> None:
        self._buckets.clear()

    def __repr__(self) -> str:
        return f"HashIndex({self.column!r}, {len(self._buckets)} keys)"


class SortedIndex:
    """A range index: ``(value, position)`` entries kept sorted by value.

    Requires mutually orderable (non-NULL) key values; a column mixing, say,
    strings and integers cannot carry a sorted index and raises
    :class:`StorageError` on the offending insert.
    """

    kind = "sorted"

    __slots__ = ("column", "_entries", "_null_count")

    def __init__(self, column: str):
        self.column = column
        self._entries: list[tuple[Any, int]] = []
        self._null_count = 0

    def add(self, value: Any, position: int) -> None:
        """Insert one key; NULLs are counted but never enter the order."""
        if value is None:
            self._null_count += 1
            return
        try:
            insort(self._entries, (value, position))
        except TypeError as exc:
            raise StorageError(
                f"sorted index on {self.column!r} requires mutually orderable "
                f"values; cannot place {value!r}"
            ) from exc

    def positions_equal(self, value: Any) -> list[int]:
        """Row positions where the column equals ``value``, ascending."""
        if value is None:
            return []
        lo = bisect_left(self._entries, (value,))
        hi = bisect_right(self._entries, (value, _POSITION_INFINITY))
        return sorted(position for _, position in self._entries[lo:hi])

    def positions_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row positions with ``low op column op high``, ascending.

        ``None`` bounds are open ends (but NULL keys never match — they are
        not in the order at all).
        """
        lo = 0
        hi = len(self._entries)
        if low is not None:
            lo = (
                bisect_left(self._entries, (low,))
                if low_inclusive
                else bisect_right(self._entries, (low, _POSITION_INFINITY))
            )
        if high is not None:
            hi = (
                bisect_right(self._entries, (high, _POSITION_INFINITY))
                if high_inclusive
                else bisect_left(self._entries, (high,))
            )
        return sorted(position for _, position in self._entries[lo:hi])

    def distinct_count(self) -> int:
        """Number of distinct non-NULL key values."""
        count = 0
        previous = _POSITION_INFINITY
        for value, _ in self._entries:
            if count == 0 or value != previous:
                count += 1
                previous = value
        return count

    def clear(self) -> None:
        self._entries.clear()
        self._null_count = 0

    def __repr__(self) -> str:
        return f"SortedIndex({self.column!r}, {len(self._entries)} keys)"


class _PositionInfinity:
    """Sorts after every real position — an upper sentinel for bisect probes."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True


_POSITION_INFINITY = _PositionInfinity()

INDEX_KINDS = {"hash": HashIndex, "sorted": SortedIndex}
