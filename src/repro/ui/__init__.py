"""Interactive surfaces of the demo: the Task Completion Interface (Figure 3)."""

from repro.ui.task_interface import TaskCompletionInterface

__all__ = ["TaskCompletionInterface"]
