"""Crash-point fault injection: prove recovery is byte-exact, not plausible.

The durability claim worth testing is not "the engine restarts" but "the
recovered engine is *indistinguishable* from one that never crashed".  The
engine is deterministic, so that claim is checkable to the byte: kill a
durable run at WAL append K, recover from disk, and compare
``fingerprint_engine`` output against an uninterrupted same-seed run of the
submissions that made it into the log.  Sweeping K over the whole log turns
one scenario into hundreds of distinct crash experiments.

The injector piggybacks on the WAL's ``on_append`` hook: the listener fires
*after* the flush-policy decision for the record, so raising there and then
calling ``simulate_crash()`` loses exactly the unflushed suffix a real
process death would lose.  A scheduled crash therefore exercises every
interesting instant — mid-submission, mid-drain, mid-settlement — without
patching any engine internals.

:func:`corrupt_tail` complements the kill switch with storage-level damage
(a torn final write, a flipped bit) to prove the WAL scanner detects it and
truncates back to the last valid record instead of replaying garbage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.crowd.faults import FaultProfile
from repro.crowd.quality import QualityConfig
from repro.crowd.worker_pool import PopulationMix
from repro.errors import QurkError
from repro.experiments.harness import build_products_engine
from repro.storage.durability import (
    DurabilityConfig,
    RecoveryResult,
    build_engine_from_payload,
)
from repro.testing.chaos import fingerprint_engine

__all__ = [
    "SimulatedCrashError",
    "CrashScenario",
    "build_plain_products_engine",
    "build_faulty_products_engine",
    "build_quality_products_engine",
    "plain_crash_scenario",
    "faulty_crash_scenario",
    "quality_crash_scenario",
    "cached_companies_crash_scenario",
    "all_crash_scenarios",
    "run_phases",
    "run_durable",
    "count_wal_events",
    "crash_points",
    "recovered_fingerprint",
    "recovered_query_count",
    "reference_fingerprint",
    "corrupt_tail",
]

PRODUCTS_SQL = "SELECT name FROM products WHERE isTargetColor(name)"


class SimulatedCrashError(QurkError):
    """Raised by the injector at the scheduled WAL append to kill the run."""


# ---------------------------------------------------------------------------
# Engine recipes with JSON-able kwargs
# ---------------------------------------------------------------------------
#
# WAL headers (like cluster EngineSpecs) carry the engine recipe as
# ``{"factory": "module:callable", "kwargs": {...}}``, so the kwargs must be
# plain JSON.  These wrappers build FaultProfile / QualityConfig objects
# from scalars; the experiment-harness factories they delegate to stay the
# single source of workload wiring.


def build_plain_products_engine(*, n_products=12, assignments=3, filter_batch=1, seed=13):
    """A fault-free products engine (e1-style filter workload)."""
    return build_products_engine(
        n_products=n_products, assignments=assignments, filter_batch=filter_batch, seed=seed
    )


def build_faulty_products_engine(
    *,
    n_products=12,
    assignments=3,
    filter_batch=4,
    seed=1101,
    fault_seed=11,
    hit_lifetime=900.0,
    pickup_slowdown=3.0,
    abandonment_rate=0.0,
    duplicate_rate=0.0,
    late_rate=0.0,
):
    """A products engine under marketplace faults (e5-style chaos)."""
    return build_products_engine(
        n_products=n_products,
        assignments=assignments,
        filter_batch=filter_batch,
        seed=seed,
        fault_profile=FaultProfile(
            seed=fault_seed,
            hit_lifetime=hit_lifetime,
            pickup_slowdown=pickup_slowdown,
            abandonment_rate=abandonment_rate,
            duplicate_rate=duplicate_rate,
            late_rate=late_rate,
        ),
    )


def build_quality_products_engine(
    *,
    n_products=16,
    assignments=5,
    filter_batch=4,
    seed=1104,
    fault_seed=14,
    duplicate_rate=0.2,
    hit_lifetime=7200.0,
    spammer=0.30,
    gold_frequency=0.5,
    quality_seed=41,
):
    """A spammer-heavy marketplace with the quality-control pipeline on."""
    return build_products_engine(
        n_products=n_products,
        assignments=assignments,
        filter_batch=filter_batch,
        seed=seed,
        population_mix=PopulationMix(
            diligent=0.70 - spammer, noisy=0.20, lazy=0.10, spammer=spammer
        ),
        fault_profile=FaultProfile(
            seed=fault_seed, duplicate_rate=duplicate_rate, hit_lifetime=hit_lifetime
        ),
        quality=QualityConfig(gold_frequency=gold_frequency, seed=quality_seed),
    )


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashScenario:
    """A durable workload shaped into explicit drain phases.

    ``phases`` is a tuple of phases; each phase is a tuple of submissions
    (``{"sql", "budget", "priority"}`` dicts) followed by an implicit
    ``drain + run_until_idle``.  The grouping is part of the scenario
    because it shapes scheduling: queries submitted in one phase run
    concurrently, so the reference run must group them identically.
    ``checkpoint_after`` lists phase indices after which a durable run
    snapshots, exercising the snapshot + partial-replay recovery path.
    """

    name: str
    factory: str
    kwargs: dict = field(default_factory=dict)
    phases: tuple = ()
    checkpoint_after: tuple = ()

    def spec_payload(self) -> dict:
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}

    def build_engine(self):
        return build_engine_from_payload(self.spec_payload())

    @property
    def total_submissions(self) -> int:
        return sum(len(phase) for phase in self.phases)


def _sub(sql: str, budget: float | None = None, priority: float = 1.0) -> dict:
    return {"sql": sql, "budget": budget, "priority": priority}


def plain_crash_scenario() -> CrashScenario:
    """Fault-free two-phase filter workload; the cheapest sweep target."""
    return CrashScenario(
        name="plain-products",
        factory="repro.testing.crashpoints:build_plain_products_engine",
        kwargs={"n_products": 12, "seed": 13},
        phases=(
            (_sub(PRODUCTS_SQL), _sub(PRODUCTS_SQL, budget=50.0)),
            (_sub(PRODUCTS_SQL, priority=2.0),),
        ),
        checkpoint_after=(0,),
    )


def faulty_crash_scenario() -> CrashScenario:
    """Expiry + abandonment chaos: crashes land mid-requeue and mid-expiry."""
    return CrashScenario(
        name="faulty-products",
        factory="repro.testing.crashpoints:build_faulty_products_engine",
        kwargs={
            "n_products": 12,
            "seed": 1101,
            "fault_seed": 11,
            "hit_lifetime": 900.0,
            "pickup_slowdown": 3.0,
            "abandonment_rate": 0.2,
        },
        phases=(
            (_sub(PRODUCTS_SQL),),
            (_sub(PRODUCTS_SQL, budget=80.0),),
        ),
        checkpoint_after=(0,),
    )


def quality_crash_scenario() -> CrashScenario:
    """Quality control + reputation state must survive snapshot round trips."""
    return CrashScenario(
        name="quality-products",
        factory="repro.testing.crashpoints:build_quality_products_engine",
        kwargs={"n_products": 10, "assignments": 5, "seed": 1104},
        phases=(
            (_sub(PRODUCTS_SQL),),
            (_sub(PRODUCTS_SQL),),
        ),
        checkpoint_after=(0,),
    )


COMPANIES_SQL = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies"
)


def cached_companies_crash_scenario() -> CrashScenario:
    """Answer-cache state must survive snapshots and mid-hit crashes.

    Phase 1 pays the crowd for every company and fills the Task Cache;
    phase 2 re-runs the same query, so its tasks are served from cache —
    crash points land while cached answers are being delivered, and the
    checkpoint after phase 1 forces recovery to rebuild the cache from a
    snapshot rather than pure replay.  A recovered engine that lost (or
    duplicated) cache entries would re-buy answers and diverge in
    ``total_cost``, which the fingerprint comparison catches.
    """
    return CrashScenario(
        name="cached-companies",
        factory="repro.experiments.harness:build_companies_engine",
        kwargs={"n_companies": 6, "assignments": 3, "seed": 7},
        phases=(
            (_sub(COMPANIES_SQL),),
            (_sub(COMPANIES_SQL), _sub(COMPANIES_SQL, budget=10.0)),
        ),
        checkpoint_after=(0,),
    )


def all_crash_scenarios() -> list[CrashScenario]:
    """Every canned crash scenario, cheapest first."""
    return [
        plain_crash_scenario(),
        cached_companies_crash_scenario(),
        faulty_crash_scenario(),
        quality_crash_scenario(),
    ]


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def run_phases(engine, scenario: CrashScenario, *, limit: int | None = None, checkpoint: bool = False) -> int:
    """Execute the scenario's phases; returns the number of submissions made.

    ``limit`` truncates the run after that many submissions (still draining
    whatever was submitted) — this is how a reference run reproduces a
    crash run that died mid-phase.  ``checkpoint`` enables the scenario's
    declared snapshot points (durable engines only).
    """
    submitted = 0
    for index, phase in enumerate(scenario.phases):
        if limit is not None and submitted >= limit:
            break
        for submission in phase:
            if limit is not None and submitted >= limit:
                break
            engine.query(
                submission["sql"],
                budget=submission.get("budget"),
                priority=submission.get("priority", 1.0),
            )
            submitted += 1
        engine.scheduler.drain()
        engine.clock.run_until_idle()
        if checkpoint and index in scenario.checkpoint_after:
            engine.checkpoint()
    return submitted


def run_durable(
    scenario: CrashScenario,
    directory: str | Path,
    *,
    fsync: str = "interval",
    fsync_every: int = 256,
    snapshot_every: int | None = None,
    crash_at: int | None = None,
) -> bool:
    """Run the scenario durably, optionally dying at WAL append ``crash_at``.

    Returns whether the injected crash actually fired (a ``crash_at``
    beyond the end of the log means the run completed).  Either way the
    engine's WAL ends in the crashed state — unflushed records lost —
    ready for :meth:`QurkEngine.recover`.
    """
    built = scenario.build_engine()
    engine = getattr(built, "engine", built)
    engine.enable_durability(
        DurabilityConfig(
            directory=str(directory),
            fsync=fsync,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
        ),
        spec=scenario.spec_payload(),
    )
    if crash_at is not None:
        appends = [0]

        def _kill(lsn: int, record_type: str) -> None:
            appends[0] += 1
            if appends[0] == crash_at:
                raise SimulatedCrashError(
                    f"scheduled crash at append #{crash_at} (lsn {lsn}, {record_type})"
                )

        engine.journal.on_append(_kill)
    crashed = False
    try:
        run_phases(engine, scenario, checkpoint=True)
    except SimulatedCrashError:
        crashed = True
    engine.journal.wal.simulate_crash()
    return crashed


def count_wal_events(scenario: CrashScenario, *, fsync: str = "interval") -> int:
    """Total WAL appends an uninterrupted durable run of the scenario makes."""
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        built = scenario.build_engine()
        engine = getattr(built, "engine", built)
        engine.enable_durability(
            DurabilityConfig(directory=directory, fsync=fsync, snapshot_every=None),
            spec=scenario.spec_payload(),
        )
        run_phases(engine, scenario, checkpoint=True)
        total = engine.journal.wal.last_lsn
        engine.journal.close()
    return total


def crash_points(total_events: int, n_points: int, *, seed: int = 0) -> list[int]:
    """A seeded sample of crash appends, always including the first and last."""
    if total_events <= 0:
        return []
    points = {1, total_events}
    rng = random.Random(seed)
    while len(points) < min(n_points, total_events):
        points.add(rng.randint(1, total_events))
    return sorted(points)


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _query_order(ids) -> list[str]:
    return sorted(ids, key=lambda query_id: int(query_id.lstrip("q")))


def recovered_query_count(result: RecoveryResult) -> int:
    """How many queries the recovered engine knows about (snapshot + replay)."""
    engine = result.engine
    ids = {outcome["query_id"] for outcome in engine._recovered_outcomes}
    ids.update(engine.queries)
    return len(ids)


def recovered_fingerprint(result: RecoveryResult) -> dict:
    """Combined fingerprint of a recovered engine.

    Pre-snapshot queries live on as recorded *outcomes* (their handles died
    with the original process); replayed queries have live handles.  Both
    contribute, in query-id order, through the same ``fingerprint_engine``
    the chaos and cluster harnesses pin.
    """
    engine = result.engine
    outcomes = {outcome["query_id"]: outcome for outcome in engine._recovered_outcomes}
    statuses: list[str] = []
    rows: list[list[dict]] = []
    for query_id in _query_order(set(outcomes) | set(engine.queries)):
        if query_id in outcomes:
            statuses.append(outcomes[query_id]["status"])
            rows.append(outcomes[query_id]["rows"])
        else:
            handle = engine.queries[query_id]
            statuses.append(handle.status.value)
            rows.append([row.to_dict() for row in handle.results()])
    return fingerprint_engine(engine, statuses, rows)


def reference_fingerprint(scenario: CrashScenario, n_queries: int) -> dict:
    """Fingerprint of an uninterrupted, non-durable run of ``n_queries``.

    This is the oracle every crash+recover run must match: same engine
    recipe, same submissions in the same phase grouping, no WAL, no
    snapshot, no crash.
    """
    built = scenario.build_engine()
    engine = getattr(built, "engine", built)
    run_phases(engine, scenario, limit=n_queries)
    statuses: list[str] = []
    rows: list[list[dict]] = []
    for query_id in _query_order(engine.queries):
        handle = engine.queries[query_id]
        statuses.append(handle.status.value)
        rows.append([row.to_dict() for row in handle.results()])
    return fingerprint_engine(engine, statuses, rows)


# ---------------------------------------------------------------------------
# Storage-level corruption
# ---------------------------------------------------------------------------


def corrupt_tail(wal_path: str | Path, *, mode: str = "truncate", seed: int = 0) -> int:
    """Damage the end of a WAL file; returns the number of bytes affected.

    ``"truncate"`` chops a few bytes off the final record (a torn write);
    ``"bitflip"`` flips one bit inside the final record's payload (media
    corruption).  Either way the scanner must detect the damage via the
    frame length / CRC and cleanly truncate back to the last valid record.
    """
    path = Path(wal_path)
    data = path.read_bytes()
    if len(data) < 16:
        raise ValueError(f"{path} is too small to corrupt meaningfully")
    rng = random.Random(seed)
    if mode == "truncate":
        cut = rng.randint(1, 12)
        path.write_bytes(data[:-cut])
        return cut
    if mode == "bitflip":
        offset = len(data) - rng.randint(1, 12)
        corrupted = bytearray(data)
        corrupted[offset] ^= 1 << rng.randint(0, 7)
        path.write_bytes(bytes(corrupted))
        return 1
    raise ValueError(f"unknown corruption mode {mode!r} (use 'truncate' or 'bitflip')")
