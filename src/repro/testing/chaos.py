"""Run whole workload queries under fault injection and check invariants.

A :class:`ChaosScenario` bundles an engine builder (fresh engine + workload,
fault profile and quality config already applied), the queries to run, and
the statuses those queries are expected to reach.  :func:`run_scenario`
executes it, records every task delivery (to catch duplicates), drains the
marketplace, and checks the invariants in :mod:`repro.testing.invariants`.
:func:`assert_deterministic` runs a scenario twice and compares run
fingerprints — same seed must mean bit-identical HIT counts, costs and
result rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import QueryStalledError
from repro.experiments.harness import ExperimentRun
from repro.testing.invariants import check_invariants

__all__ = [
    "ChaosScenario",
    "ScenarioResult",
    "run_scenario",
    "fingerprint_engine",
    "assert_deterministic",
]


@dataclass(frozen=True)
class ChaosScenario:
    """One reproducible fault-injection experiment.

    ``build`` must return a *fresh* :class:`ExperimentRun` each call (a new
    engine on a new simulated marketplace) — reruns for the determinism check
    depend on it.  ``expected_statuses`` maps each query (by position) to the
    status it must end in (``"completed"``, ``"stalled"``,
    ``"budget_exceeded"``); queries not listed must complete.
    """

    name: str
    build: Callable[[], ExperimentRun]
    queries: tuple[str, ...]
    description: str = ""
    expected_statuses: dict[int, str] = field(default_factory=dict)

    def expected_status(self, index: int) -> str:
        return self.expected_statuses.get(index, "completed")


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, plus its invariant violations."""

    scenario: ChaosScenario
    run: ExperimentRun
    statuses: list[str]
    rows: list[list[dict[str, Any]]]
    violations: list[str]
    fingerprint: dict[str, Any]

    @property
    def ok(self) -> bool:
        """Whether every invariant held and every status matched."""
        return not self.violations

    def summary(self) -> str:
        stats = self.run.engine.platform.stats
        return (
            f"{self.scenario.name}: statuses={self.statuses}, "
            f"hits={stats.hits_created} (expired {stats.hits_expired}), "
            f"cost=${self.run.engine.total_crowd_cost:.2f}, "
            f"violations={len(self.violations)}"
        )


def run_scenario(scenario: ChaosScenario) -> ScenarioResult:
    """Execute one scenario end to end and check every invariant."""
    run = scenario.build()
    engine = run.engine
    deliveries: dict[str, int] = {}

    # Observe task delivery to catch duplicate (or resurrected) results —
    # the raw material of duplicated result rows.
    def count_delivery(result):
        task_id = result.task.task_id
        deliveries[task_id] = deliveries.get(task_id, 0) + 1

    engine.task_manager.on_result_delivered(count_delivery)

    handles = [engine.query(sql) for sql in scenario.queries]
    statuses: list[str] = []
    rows: list[list[dict[str, Any]]] = []
    violations: list[str] = []
    for index, handle in enumerate(handles):
        try:
            handle.wait()
        except QueryStalledError:
            pass  # the handle records the stall; expectations are checked below
        statuses.append(handle.status.value)
        rows.append([row.to_dict() for row in handle.results()])
        expected = scenario.expected_status(index)
        if handle.status.value != expected:
            violations.append(
                f"status: query #{index} ended {handle.status.value}, expected {expected}"
            )

    # Drain in-flight marketplace events (late submissions, expiries of HITs
    # nobody waits for any more).  The engine itself must clean up after
    # them — terminal queries are registered as cancelled with the Task
    # Manager, so nothing may be requeued or left pending on their behalf;
    # the invariants below verify exactly that.
    engine.clock.run_until_idle()

    violations += check_invariants(engine, handles, deliveries)
    return ScenarioResult(
        scenario=scenario,
        run=run,
        statuses=statuses,
        rows=rows,
        violations=violations,
        fingerprint=fingerprint_engine(engine, statuses, rows),
    )


def _jsonify(value: Any) -> Any:
    """Lower tuples to lists recursively, matching a JSON round trip."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


def fingerprint_engine(
    engine, statuses: list[str], rows: list[list[dict[str, Any]]]
) -> dict[str, Any]:
    """The run facts that must be bit-identical across same-seed runs.

    Shared with the cluster runtime: a shard worker fingerprints its own
    engine through this exact function, so 1-shard-vs-in-process equality
    (and N-shard run-to-run stability) is checked against the same facts the
    chaos harness pins.  The structure is JSON-stable — tuples are lowered
    to lists — so a fingerprint that crossed a process boundary as JSON
    compares equal to one computed in-process.
    """
    stats = engine.platform.stats
    return {
        "statuses": list(statuses),
        "rows": [
            [[_jsonify(item) for item in sorted(row.items())] for row in query_rows]
            for query_rows in rows
        ],
        "hits_created": stats.hits_created,
        "hits_expired": stats.hits_expired,
        "assignments_submitted": stats.assignments_submitted,
        "assignments_abandoned": stats.assignments_abandoned,
        "late_dropped": stats.late_submissions_dropped,
        "duplicates_ignored": stats.duplicate_submissions_ignored,
        "total_cost": round(engine.total_crowd_cost, 9),
    }


def assert_deterministic(scenario: ChaosScenario, runs: int = 2) -> ScenarioResult:
    """Run a scenario ``runs`` times; all fingerprints must be identical.

    Returns the first run's result (with any fingerprint mismatch appended
    to its violations) so callers can keep asserting on a single result.
    """
    first = run_scenario(scenario)
    for attempt in range(1, runs):
        again = run_scenario(scenario)
        if again.fingerprint != first.fingerprint:
            diffs = [
                f"{key}: {first.fingerprint[key]!r} != {again.fingerprint[key]!r}"
                for key in first.fingerprint
                if first.fingerprint[key] != again.fingerprint[key]
            ]
            first.violations.append(
                f"determinism: rerun #{attempt} diverged ({'; '.join(diffs[:3])})"
            )
    return first
