"""System-wide invariants every engine run must satisfy, faults or not.

Each checker returns a list of human-readable violation strings (empty means
the invariant holds), so one failed scenario reports every broken property at
once instead of stopping at the first assertion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.crowd.hit import AssignmentStatus, HITStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.exec.handle import QueryHandle
    from repro.engine import QurkEngine

__all__ = ["check_invariants"]

_EPSILON = 1e-6


def check_invariants(
    engine: "QurkEngine",
    handles: list["QueryHandle"],
    deliveries: Mapping[str, int] | None = None,
) -> list[str]:
    """Check every engine-wide invariant; returns violations (empty = pass).

    ``deliveries`` is the per-task delivery count recorded by the chaos
    harness (task id -> times its callback ran); when provided, duplicate
    deliveries — e.g. a late submission resurrecting an already-requeued
    task — are caught here.
    """
    violations: list[str] = []
    violations += _check_budget_conservation(engine, handles)
    violations += _check_hit_accounting(engine)
    violations += _check_no_stranded_work(engine, handles)
    if deliveries is not None:
        violations += _check_delivery_uniqueness(deliveries)
    return violations


def _check_budget_conservation(engine: "QurkEngine", handles: list["QueryHandle"]) -> list[str]:
    """Money can be committed and not spent (expired HITs), never the reverse."""
    violations = []
    platform_cost = engine.platform.total_cost
    committed = engine.task_manager.stats.hit_dollars_committed
    if platform_cost > committed + _EPSILON:
        violations.append(
            f"budget conservation: platform collected ${platform_cost:.4f} but only "
            f"${committed:.4f} was ever committed"
        )
    rewards = engine.platform.stats.total_rewards_paid
    fees = engine.platform.stats.total_fees_paid
    if abs((rewards + fees) - platform_cost) > _EPSILON:
        violations.append(
            f"budget conservation: rewards (${rewards:.4f}) + fees (${fees:.4f}) "
            f"!= total cost (${platform_cost:.4f})"
        )
    for handle in handles:
        budget = engine.budget_ledger.budget(handle.query_id)
        if budget.limit is not None and handle.stats.spent > budget.limit + _EPSILON:
            violations.append(
                f"budget conservation: {handle.query_id} spent ${handle.stats.spent:.4f} "
                f"over its ${budget.limit:.4f} limit"
            )
    return violations


def _check_hit_accounting(engine: "QurkEngine") -> list[str]:
    """Every HIT and assignment must sit in a coherent lifecycle state."""
    violations = []
    hits = engine.platform.list_hits()
    created = engine.platform.stats.hits_created
    if len(hits) != created:
        violations.append(f"HIT accounting: {created} HITs created but {len(hits)} tracked")
    expired = sum(1 for hit in hits if hit.status is HITStatus.EXPIRED)
    if expired != engine.platform.stats.hits_expired:
        violations.append(
            f"HIT accounting: {expired} HITs in EXPIRED state but stats counted "
            f"{engine.platform.stats.hits_expired}"
        )
    for hit in hits:
        submitted = hit.submitted_assignments
        if len(submitted) > hit.max_assignments:
            violations.append(
                f"HIT accounting: {hit.hit_id} holds {len(submitted)} submissions "
                f"for {hit.max_assignments} requested assignments"
            )
        for assignment in hit.assignments:
            if assignment.status is AssignmentStatus.ABANDONED and assignment.submitted_at:
                violations.append(
                    f"HIT accounting: abandoned assignment {assignment.assignment_id} "
                    "carries a submission"
                )
            paid = assignment.status is AssignmentStatus.APPROVED
            if paid and hit.status is HITStatus.EXPIRED and assignment.submitted_at is None:
                violations.append(
                    f"HIT accounting: unsubmitted assignment {assignment.assignment_id} "
                    "of an expired HIT was paid"
                )
    return violations


def _check_no_stranded_work(engine: "QurkEngine", handles: list["QueryHandle"]) -> list[str]:
    """After every query reached a terminal state, no work may dangle.

    The simulated marketplace is first drained (in-flight submissions of
    HITs nobody waits for are allowed to land), then the Task Manager must
    hold no pending tasks and no unprocessed in-flight HITs.
    """
    violations = []
    if any(not handle.is_terminal for handle in handles):
        violations.append("stranded work: a query handle is not terminal after the run")
        return violations
    engine.clock.run_until_idle()
    pending = engine.task_manager.pending_tasks()
    if pending:
        violations.append(f"stranded work: {pending} task(s) still pending after all queries ended")
    inflight = engine.task_manager.inflight_hits()
    if inflight:
        open_hits = [hit.hit_id for hit in engine.platform.open_hits()]
        violations.append(
            f"stranded work: {inflight} HIT(s) still in flight after the marketplace "
            f"drained (open: {', '.join(open_hits) or 'none'})"
        )
    return violations


def _check_delivery_uniqueness(deliveries: Mapping[str, int]) -> list[str]:
    """No task result may reach its operator callback more than once.

    Duplicate deliveries are how lost-update/duplicate-row bugs enter the
    results table: a duplicate or late submission must never re-fire a task
    callback.  (Zero deliveries are legal — attempt-capped tasks are dropped
    and surface as a STALLED query instead.)
    """
    duplicates = {task_id: count for task_id, count in deliveries.items() if count > 1}
    if not duplicates:
        return []
    worst = sorted(duplicates.items(), key=lambda item: -item[1])[:5]
    rendered = ", ".join(f"{task_id} x{count}" for task_id, count in worst)
    return [f"delivery uniqueness: {len(duplicates)} task(s) delivered more than once ({rendered})"]
