"""Deterministic chaos testing for the engine's fault-tolerant HIT lifecycle.

This package turns "does the engine survive a hostile marketplace?" into
reproducible tests:

* :mod:`repro.testing.invariants` — system-wide properties that must hold
  after any run, faults or not (budget conservation, no lost or duplicated
  task deliveries, HIT lifecycle accounting);
* :mod:`repro.testing.chaos` — :class:`ChaosScenario` /
  :func:`run_scenario`: build a fresh engine, run whole workload queries
  under a seeded :class:`~repro.crowd.faults.FaultProfile`, and check every
  invariant plus bit-identical same-seed reruns;
* :mod:`repro.testing.scenarios` — the canned scenario library (expiry
  storms, worker abandonment, duplicate/late submissions, spammer-heavy
  mixes under quality control, attempt exhaustion).

See the "Testing" section of the README for how to add a scenario.
"""

from repro.testing.chaos import ChaosScenario, ScenarioResult, assert_deterministic, run_scenario
from repro.testing.invariants import check_invariants
from repro.testing.scenarios import (
    abandonment_scenario,
    all_scenarios,
    breaker_recovery_scenario,
    duplicate_and_late_scenario,
    exhaustion_scenario,
    expiry_requeue_scenario,
    spammer_quality_scenario,
)

__all__ = [
    "ChaosScenario",
    "ScenarioResult",
    "run_scenario",
    "assert_deterministic",
    "check_invariants",
    "expiry_requeue_scenario",
    "abandonment_scenario",
    "duplicate_and_late_scenario",
    "spammer_quality_scenario",
    "exhaustion_scenario",
    "breaker_recovery_scenario",
    "all_scenarios",
]
