"""The canned chaos-scenario library.

Each factory returns a :class:`~repro.testing.chaos.ChaosScenario` with a
fixed seed, so every scenario is a reproducible experiment: same seed, same
HIT counts, same dollars, same rows.  To add a scenario, write a factory
that builds a fresh engine with the fault profile / quality config you want
to stress, list the queries to run, declare the statuses you expect, and add
it to :func:`all_scenarios` (see the README's "Testing" section).
"""

from __future__ import annotations

from repro.crowd.breaker import BreakerConfig
from repro.crowd.faults import FaultProfile
from repro.crowd.quality import QualityConfig
from repro.crowd.worker_pool import PopulationMix
from repro.experiments.harness import build_companies_engine, build_products_engine
from repro.testing.chaos import ChaosScenario

__all__ = [
    "expiry_requeue_scenario",
    "abandonment_scenario",
    "duplicate_and_late_scenario",
    "spammer_quality_scenario",
    "exhaustion_scenario",
    "breaker_recovery_scenario",
    "all_scenarios",
]

PRODUCTS_SQL = "SELECT name FROM products WHERE isTargetColor(name)"
COMPANIES_SQL = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone FROM companies"
)


def expiry_requeue_scenario() -> ChaosScenario:
    """HITs keep expiring under slow pickup; requeues must finish the query."""
    return ChaosScenario(
        name="expiry-requeue",
        description=(
            "Pickup is 3x slower than normal and HITs live only 15 simulated "
            "minutes, so a good fraction expire with partial (or no) "
            "submissions.  The Task Manager must salvage partial answers, "
            "re-post the remainder, and still complete the query."
        ),
        build=lambda: build_products_engine(
            n_products=12,
            assignments=3,
            filter_batch=4,
            seed=1101,
            fault_profile=FaultProfile(seed=11, hit_lifetime=900.0, pickup_slowdown=3.0),
        ),
        queries=(PRODUCTS_SQL,),
    )


def abandonment_scenario() -> ChaosScenario:
    """A third of workers return their assignments; replacements step in."""
    return ChaosScenario(
        name="abandonment",
        description=(
            "30% of accepted assignments are returned unsubmitted.  The "
            "marketplace recruits replacement workers; the query completes "
            "without duplicated or lost rows."
        ),
        build=lambda: build_products_engine(
            n_products=12,
            assignments=3,
            filter_batch=4,
            seed=1102,
            fault_profile=FaultProfile(seed=12, abandonment_rate=0.3, hit_lifetime=7200.0),
        ),
        queries=(PRODUCTS_SQL,),
    )


def duplicate_and_late_scenario() -> ChaosScenario:
    """Double submissions and deadline-missing work on the form workload."""
    return ChaosScenario(
        name="duplicate-and-late",
        description=(
            "Half of the submissions are re-posted by flaky clients and a "
            "quarter slip past the HIT deadline.  Duplicates must not pay or "
            "deliver twice; late work is dropped and the stranded tasks are "
            "re-posted."
        ),
        build=lambda: build_companies_engine(
            n_companies=10,
            assignments=3,
            seed=1103,
            fault_profile=FaultProfile(
                seed=13, duplicate_rate=0.5, late_rate=0.25, hit_lifetime=3600.0
            ),
        ),
        queries=(COMPANIES_SQL,),
    )


def spammer_quality_scenario() -> ChaosScenario:
    """Quality control on a spammer-heavy mix, with faults on top."""
    return ChaosScenario(
        name="spammer-quality",
        description=(
            "A 30%-spammer marketplace with gold probes, weighted voting and "
            "adaptive redundancy active, plus duplicate submissions.  The "
            "full quality-control pipeline must stay invariant-clean."
        ),
        build=lambda: build_products_engine(
            n_products=16,
            assignments=5,
            filter_batch=4,
            seed=1104,
            population_mix=PopulationMix(diligent=0.35, noisy=0.25, lazy=0.10, spammer=0.30),
            fault_profile=FaultProfile(seed=14, duplicate_rate=0.2, hit_lifetime=7200.0),
            quality=QualityConfig(gold_frequency=0.5, seed=41),
        ),
        queries=(PRODUCTS_SQL,),
    )


def exhaustion_scenario() -> ChaosScenario:
    """Nobody ever picks work up: attempt caps must surface STALLED."""
    return ChaosScenario(
        name="attempt-exhaustion",
        description=(
            "Pickup is 50x slower than a 60-second HIT lifetime, so every "
            "posted HIT expires untouched.  After the attempt cap the query "
            "must surface STALLED (with zero rows) instead of hanging."
        ),
        build=lambda: build_products_engine(
            n_products=6,
            assignments=3,
            seed=1105,
            fault_profile=FaultProfile(seed=15, hit_lifetime=60.0, pickup_slowdown=50.0),
        ),
        queries=(PRODUCTS_SQL,),
        expected_statuses={0: "stalled"},
    )


def breaker_recovery_scenario() -> ChaosScenario:
    """A sick market trips the circuit breaker; recovery closes it again.

    Expiries and abandonments pile up until the breaker opens, pausing all
    posting (pending tasks stay queued, expired HITs refund normally).  The
    scheduled reopen probes the market; once a probe fully submits the
    breaker closes and the query finishes.  The run must stay invariant-
    clean — budget conserved, nothing stranded — through the whole
    closed → open → half-open → closed cycle.
    """
    return ChaosScenario(
        name="breaker-recovery",
        description=(
            "Pickup is 3x slower with 5%-per-open-HIT congestion, 30% "
            "abandonment and 20% duplicates on 450-second HITs, so enough "
            "consecutive expiries hit the 4-failure threshold to trip the "
            "marketplace circuit breaker.  Posting pauses, the cooldown "
            "elapses on the engine clock, half-open probes go out, and the "
            "query still completes with the breaker closed again."
        ),
        build=lambda: build_products_engine(
            n_products=12,
            assignments=3,
            filter_batch=4,
            seed=1106,
            fault_profile=FaultProfile(
                seed=16,
                hit_lifetime=450.0,
                pickup_slowdown=3.0,
                abandonment_rate=0.3,
                duplicate_rate=0.2,
                congestion_per_open_hit=0.05,
            ),
            engine_kwargs={
                "circuit_breaker": BreakerConfig(
                    failure_threshold=4, cooldown=600.0, seed=16
                )
            },
        ),
        queries=(PRODUCTS_SQL,),
    )


def all_scenarios() -> list[ChaosScenario]:
    """Every canned scenario, cheap ones first."""
    return [
        exhaustion_scenario(),
        expiry_requeue_scenario(),
        abandonment_scenario(),
        duplicate_and_late_scenario(),
        spammer_quality_scenario(),
        breaker_recovery_scenario(),
    ]
