"""Exception hierarchy shared by every Qurk subsystem.

All exceptions raised intentionally by this package derive from
:class:`QurkError` so that callers can distinguish library errors from
programming mistakes (``TypeError``, ``KeyError``, ...).  Subsystems define
narrower subclasses here rather than in their own modules so the hierarchy
can be inspected in one place.
"""

from __future__ import annotations

__all__ = [
    "QurkError",
    "StorageError",
    "SchemaError",
    "CatalogError",
    "TypeCheckError",
    "ExpressionError",
    "WALError",
    "WALCorruptionError",
    "SnapshotError",
    "RecoveryError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "OperatorError",
    "BudgetExceededError",
    "QueryStalledError",
    "QueryDeadlineError",
    "EngineOverloadedError",
    "CrowdError",
    "HITError",
    "AssignmentError",
    "WorkerError",
    "TaskError",
    "TaskCompilationError",
    "AggregateError",
    "OptimizerError",
    "WorkloadError",
    "DashboardError",
    "ClusterError",
    "ShardCrashedError",
]


class QurkError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage engine
# ---------------------------------------------------------------------------


class StorageError(QurkError):
    """Base class for storage-engine errors."""


class SchemaError(StorageError):
    """A schema definition or schema operation is invalid."""


class CatalogError(StorageError):
    """A table or view could not be found / created / dropped in the catalog."""


class TypeCheckError(StorageError):
    """A value does not conform to the declared column type."""


class ExpressionError(StorageError):
    """An expression could not be evaluated against a row."""


class WALError(StorageError):
    """The write-ahead log was used incorrectly (closed log, bad LSN, ...)."""


class WALCorruptionError(WALError):
    """A WAL record failed its length/CRC/decoding check.

    Raised only when corruption cannot be handled by clean truncation —
    a torn *tail* is expected after a crash and is silently truncated at
    the last valid record boundary instead.
    """


class SnapshotError(StorageError):
    """A snapshot could not be written, or no readable snapshot survives."""


class RecoveryError(StorageError):
    """Snapshot + WAL replay could not reconstruct a consistent engine."""


# ---------------------------------------------------------------------------
# Query language and planning
# ---------------------------------------------------------------------------


class ParseError(QurkError):
    """The SQL or TASK definition text could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class PlanError(QurkError):
    """A logical or physical plan could not be constructed."""


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class ExecutionError(QurkError):
    """Query execution failed."""


class OperatorError(ExecutionError):
    """An operator encountered an unrecoverable condition."""


class BudgetExceededError(ExecutionError):
    """Posting further HITs would exceed the query's monetary budget.

    ``query_id`` identifies the offending query so a scheduler driving many
    queries over one shared Task Manager can attribute the failure without
    guessing which query triggered the flush.
    """

    def __init__(self, message: str, spent: float, budget: float, query_id: str = ""):
        super().__init__(message)
        self.spent = spent
        self.budget = budget
        self.query_id = query_id


class QueryStalledError(ExecutionError):
    """A query stopped making progress before producing all of its results."""


class QueryDeadlineError(ExecutionError):
    """A query's deadline elapsed before execution finished.

    Raised from :meth:`QueryHandle.wait` when the query was configured with
    ``degradation="error"``; under ``degradation="partial"`` the query instead
    finishes ``DEGRADED`` with the rows produced so far.

    Attributes
    ----------
    query_id:
        The query whose deadline elapsed.
    deadline:
        The absolute clock time (simulated or wall) the deadline mapped to.
    rows_produced:
        How many result rows had landed when the deadline fired.
    """

    def __init__(
        self, message: str, *, query_id: str = "", deadline: float = 0.0, rows_produced: int = 0
    ) -> None:
        super().__init__(message)
        self.query_id = query_id
        self.deadline = deadline
        self.rows_produced = rows_produced


class EngineOverloadedError(ExecutionError):
    """The engine's pending-admission queue is full and the query was refused.

    Raised either at submission time (the new query is rejected outright) or
    from :meth:`QueryHandle.wait` on a lower-priority query that was shed to
    make room.  ``retry_after`` is the engine's advisory backoff in seconds —
    the cluster front end forwards it as a structured retry-after reply.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0, query_id: str = "") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.query_id = query_id


# ---------------------------------------------------------------------------
# Crowd substrate (simulated Mechanical Turk)
# ---------------------------------------------------------------------------


class CrowdError(QurkError):
    """Base class for errors raised by the simulated crowd platform."""


class HITError(CrowdError):
    """A HIT is malformed or was used in an illegal state transition."""


class AssignmentError(CrowdError):
    """An assignment is malformed or was used in an illegal state transition."""


class WorkerError(CrowdError):
    """A simulated worker was configured or used incorrectly."""


# ---------------------------------------------------------------------------
# Task layer
# ---------------------------------------------------------------------------


class TaskError(QurkError):
    """A task could not be created, batched or routed."""


class TaskCompilationError(TaskError):
    """The HIT compiler could not turn a task batch into a HIT."""


class AggregateError(QurkError):
    """A user-defined aggregate received input it cannot reduce."""


class OptimizerError(QurkError):
    """The query optimizer could not produce or revise a plan."""


class WorkloadError(QurkError):
    """A synthetic workload generator was configured incorrectly."""


class DashboardError(QurkError):
    """The query status dashboard was asked about an unknown query."""


class ClusterError(QurkError):
    """The shard-per-process cluster runtime hit a protocol or worker fault."""


class ShardCrashedError(ClusterError):
    """A shard worker process died (or stopped responding) mid-operation.

    Attributes
    ----------
    shard_id, pid, exitcode, op:
        Diagnostics for the dead worker: which shard, its process id, the
        exit code reported by the OS (``None`` while undetermined) and the
        cluster operation that was in flight when the death was detected.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: int,
        pid: int | None = None,
        exitcode: int | None = None,
        op: str = "",
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.pid = pid
        self.exitcode = exitcode
        self.op = op
