"""Deterministic query → shard placement.

The coordinator must place queries onto shards so that the same workload on
the same cluster shape lands identically run to run — otherwise N-shard
fingerprints could never be stable.  Two policies are provided:

``round-robin``
    Place by admission order: the *i*-th submitted query goes to shard
    ``i % n``.  Perfectly balanced and trivially reproducible.

``hash``
    Place by a seeded SHA-256 of the query key (its coordinator-assigned
    id), so a query's shard is a pure function of ``(seed, key, n_shards)``
    and does not depend on what else was submitted.  Python's builtin
    ``hash`` is *not* used — it is salted per process, which would break
    cross-run stability.

``health``
    Round-robin over the shards the coordinator currently considers
    healthy.  The healthy set changes only at explicit, recorded points
    (a crash crossing the coordinator's threshold, or a manual mark), so
    routing is still a pure function of (admission index, healthy set) —
    the same fault script reproduces the same placement.
"""

from __future__ import annotations

import hashlib

from repro.errors import ClusterError

__all__ = [
    "Placement",
    "RoundRobinPlacement",
    "HashPlacement",
    "HealthAwarePlacement",
    "make_placement",
]


class Placement:
    """Maps a query (admission index + stable key) to a shard id."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ClusterError(f"a cluster needs at least 1 shard, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, index: int, key: str) -> int:
        raise NotImplementedError


class RoundRobinPlacement(Placement):
    """Admission-order round-robin: query *i* lands on shard ``i % n``."""

    def shard_of(self, index: int, key: str) -> int:
        return index % self.n_shards


class HashPlacement(Placement):
    """Seeded-hash placement: the shard is a pure function of the key."""

    def __init__(self, n_shards: int, seed: int = 0):
        super().__init__(n_shards)
        self.seed = seed

    def shard_of(self, index: int, key: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.n_shards


class HealthAwarePlacement(Placement):
    """Round-robin restricted to the currently-healthy shards.

    The coordinator owns the health verdicts and feeds them in through
    :meth:`set_healthy`; placement itself stays a pure function of the
    admission index and the healthy set.  With every shard healthy this is
    exactly :class:`RoundRobinPlacement`, which is what keeps default runs
    byte-identical.  If everything is marked unhealthy the full shard set is
    used — a fully-degraded cluster still accepts work rather than failing
    placement.
    """

    def __init__(self, n_shards: int, seed: int = 0):
        super().__init__(n_shards)
        self.seed = seed
        self._healthy: set[int] = set(range(n_shards))

    def set_healthy(self, shard_id: int, healthy: bool = True) -> None:
        """Record the coordinator's verdict for one shard."""
        if not 0 <= shard_id < self.n_shards:
            raise ClusterError(
                f"shard {shard_id} out of range for {self.n_shards}-shard placement"
            )
        if healthy:
            self._healthy.add(shard_id)
        else:
            self._healthy.discard(shard_id)

    @property
    def healthy_shards(self) -> tuple[int, ...]:
        """Sorted routing pool; every shard when none are marked healthy."""
        if not self._healthy:
            return tuple(range(self.n_shards))
        return tuple(sorted(self._healthy))

    def shard_of(self, index: int, key: str) -> int:
        pool = self.healthy_shards
        return pool[index % len(pool)]


def make_placement(kind: str, n_shards: int, seed: int = 0) -> Placement:
    """Build the placement policy named ``kind``."""
    if kind == "round-robin":
        return RoundRobinPlacement(n_shards)
    if kind == "hash":
        return HashPlacement(n_shards, seed)
    if kind == "health":
        return HealthAwarePlacement(n_shards, seed)
    raise ClusterError(
        f"unknown placement policy {kind!r} (use 'round-robin', 'hash', or 'health')"
    )
