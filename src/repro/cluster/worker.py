"""A shard worker: one full Qurk engine behind a message-dispatch loop.

Each shard of the cluster runs a complete :class:`~repro.engine.QurkEngine`
(its own storage, marketplace, scheduler, budget ledger) built from an
:class:`EngineSpec` — a ``"module:callable"`` factory path plus kwargs,
resolved *inside* the worker process so no live engine ever crosses the
process boundary.  The factory may return either a ``QurkEngine`` or an
:class:`~repro.experiments.harness.ExperimentRun` (anything with an
``.engine`` attribute).

:class:`ShardWorker` is deliberately usable in-process: ``handle(message)``
is a pure dict→dict dispatch, which is what ``python -m repro.profile``
uses to profile a single named shard, and what the determinism tests use to
compare a 1-shard cluster against an in-process engine without forking.
:func:`worker_main` wraps it in the recv → handle → send loop that runs in
each child process.
"""

from __future__ import annotations

import importlib
import os
import resource
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.messages import PipeTransport, reply_error, reply_ok
from repro.cluster.serialization import decode_query, encode_rows
from repro.crowd.wallclock import WallClock
from repro.dashboard import QueryDashboard
from repro.errors import ClusterError, EngineOverloadedError, QurkError
from repro.testing.chaos import fingerprint_engine

__all__ = ["EngineSpec", "ShardWorker", "worker_main"]


@dataclass(frozen=True)
class EngineSpec:
    """A picklable-by-value recipe for building one shard's engine.

    ``factory`` names a callable as ``"package.module:callable"``; it is
    imported and called with ``kwargs`` inside the worker.  Keeping the
    recipe (not the engine) on the wire is what lets every shard build an
    identical, independent marketplace from the same seed.
    """

    factory: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "EngineSpec":
        return cls(factory=payload["factory"], kwargs=dict(payload.get("kwargs", {})))

    def build(self):
        """Import the factory and build the engine (or ExperimentRun)."""
        module_name, _, attr = self.factory.partition(":")
        if not module_name or not attr:
            raise ClusterError(
                f"engine factory must be 'module:callable', got {self.factory!r}"
            )
        try:
            module = importlib.import_module(module_name)
            factory = getattr(module, attr)
        except (ImportError, AttributeError) as error:
            raise ClusterError(f"cannot resolve engine factory {self.factory!r}: {error}")
        built = factory(**self.kwargs)
        engine = getattr(built, "engine", built)
        if not hasattr(engine, "scheduler") or not hasattr(engine, "query"):
            raise ClusterError(
                f"engine factory {self.factory!r} returned {type(built).__name__}, "
                "which is neither a QurkEngine nor an object with an .engine"
            )
        return engine


class ShardWorker:
    """One shard: a full engine plus the op dispatch the coordinator speaks.

    Coordinator-assigned query ids (``cq1``, ``cq2``, ...) are mapped to the
    shard's own handles in submission order; every op addresses queries by
    the coordinator id, so the coordinator never needs to know shard-local
    ids.
    """

    def __init__(
        self,
        spec: EngineSpec,
        shard_id: int = 0,
        *,
        durability: dict[str, Any] | None = None,
    ):
        self.spec = spec
        self.shard_id = shard_id
        self.durability = durability
        self._handles: dict[str, Any] = {}
        self._order: list[str] = []
        # Original submission payloads, kept so the coordinator can withdraw
        # a still-pending query and replay it verbatim on another shard.
        self._submissions: dict[str, dict[str, Any]] = {}
        if durability is None:
            self.engine = spec.build()
            return
        # Durable shard: recover in place when a WAL already exists (the
        # worker is a restart after a crash), otherwise start journalling.
        # Workers never auto-checkpoint (snapshot_every=None): the full log
        # is what lets a restart rebuild the coordinator-id → handle map
        # below, and per-shard logs stay short-lived anyway.
        from pathlib import Path

        from repro.engine import QurkEngine
        from repro.storage.durability import WAL_FILENAME, DurabilityConfig

        directory = Path(durability["directory"])
        fsync = durability.get("fsync", "interval")
        fsync_every = int(durability.get("fsync_every", 256))
        if (directory / WAL_FILENAME).exists():
            result = QurkEngine.recover(
                directory, fsync=fsync, fsync_every=fsync_every, snapshot_every=None
            )
            self.engine = result.engine
            # Replay in LSN order restores submission order; an alias whose
            # engine query never made it into the log belongs to a
            # submission that died before becoming durable — the
            # coordinator's retry will re-submit it.
            for record in result.records:
                if record.type != "cluster_alias":
                    continue
                cluster_id = record.data["cluster_id"]
                engine_id = record.data["query_id"]
                if cluster_id in self._handles or engine_id not in self.engine.queries:
                    continue
                self._handles[cluster_id] = self.engine.queries[engine_id]
                self._order.append(cluster_id)
        else:
            self.engine = spec.build()
            directory.mkdir(parents=True, exist_ok=True)
            self.engine.enable_durability(
                DurabilityConfig(
                    directory=str(directory),
                    fsync=fsync,
                    fsync_every=fsync_every,
                    snapshot_every=None,
                ),
                spec=spec.payload(),
            )

    # -- dispatch ----------------------------------------------------------

    def handle(self, message: dict[str, Any]) -> dict[str, Any]:
        """Serve one protocol message; never raises for query-level faults."""
        op = message.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return reply_error(f"unknown cluster op {op!r}")
        try:
            return handler(message)
        except EngineOverloadedError as error:
            # Backpressure is structured, not a generic fault: the reply
            # names the class and carries the retry-after hint so the
            # coordinator (and the TCP server beyond it) can rebuild the
            # typed error for the client instead of a bare ClusterError.
            return reply_error(
                f"EngineOverloadedError: {error}",
                error_type="overloaded",
                retry_after=error.retry_after,
            )
        except QurkError as error:
            return reply_error(
                f"{type(error).__name__}: {error}", error_type=type(error).__name__
            )

    def _handle_of(self, query_id: str):
        try:
            return self._handles[query_id]
        except KeyError:
            raise ClusterError(f"shard {self.shard_id} does not own query {query_id!r}")

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, message: dict[str, Any]) -> dict[str, Any]:
        return reply_ok(shard=self.shard_id, pid=os.getpid())

    def _submit_one(self, payload: dict[str, Any]) -> str:
        submission = decode_query(payload)
        query_id = submission["query_id"]
        if query_id in self._handles:
            if self.durability is not None:
                # A healed coordinator retries the whole op; submissions
                # that already survived the crash are simply acknowledged,
                # making heal + retry exactly-once.
                return query_id
            raise ClusterError(f"query {query_id!r} already submitted to shard {self.shard_id}")
        journal = getattr(self.engine, "journal", None)
        if journal is not None:
            # The alias is logged *before* the engine's own query_submitted
            # record and names the engine id the submission is about to get.
            # On recovery, an alias whose engine query is missing marks a
            # submission that died in between — it is dropped, and the retry
            # recreates the same id.  Durability is group-committed: the
            # submit op fsyncs once before acking the batch (see
            # :meth:`_flush_journal`), so "acked to the coordinator" still
            # implies "on disk".
            journal.record(
                "cluster_alias",
                {
                    "cluster_id": query_id,
                    "query_id": f"q{self.engine._next_query_seq + 1}",
                },
            )
        handle = self.engine.query(
            submission["sql"],
            budget=submission["budget"],
            priority=submission["priority"],
            config=submission["config"],
        )
        self._handles[query_id] = handle
        self._order.append(query_id)
        self._submissions[query_id] = dict(payload)
        return query_id

    def _flush_journal(self) -> None:
        """Group commit: one fsync covers every record of the batch.

        The coordinator treats an acked submission as durable (a healed
        worker must reproduce it), so the ack must not leave the pipe
        before the aliases and submissions of the whole op are on disk —
        but per-record fsyncs would cost one sync per query instead of one
        per op.
        """
        journal = getattr(self.engine, "journal", None)
        if journal is not None:
            journal.wal.flush()

    def _op_submit(self, message: dict[str, Any]) -> dict[str, Any]:
        query_id = self._submit_one(message["query"])
        self._flush_journal()
        return reply_ok(query_id=query_id)

    def _op_submit_many(self, message: dict[str, Any]) -> dict[str, Any]:
        accepted = [self._submit_one(payload) for payload in message["queries"]]
        self._flush_journal()
        return reply_ok(query_ids=accepted)

    def _op_status(self, message: dict[str, Any]) -> dict[str, Any]:
        handle = self._handle_of(message["query_id"])
        return reply_ok(
            status=handle.status.value,
            results_emitted=len(handle),
            error=str(handle.error) if handle.error is not None else None,
        )

    def _op_poll(self, message: dict[str, Any]) -> dict[str, Any]:
        handle = self._handle_of(message["query_id"])
        return reply_ok(rows=encode_rows(handle.poll()))

    def _op_results(self, message: dict[str, Any]) -> dict[str, Any]:
        handle = self._handle_of(message["query_id"])
        return reply_ok(status=handle.status.value, rows=encode_rows(handle.results()))

    def _op_describe_plan(self, message: dict[str, Any]) -> dict[str, Any]:
        handle = self._handle_of(message["query_id"])
        return reply_ok(plan=handle.describe_plan())

    def _op_pump(self, message: dict[str, Any]) -> dict[str, Any]:
        max_passes = int(message.get("max_passes", 1))
        if max_passes <= 0:  # a pure has_work probe; must not mutate anything
            return reply_ok(progressed=False, has_work=self.engine.scheduler.has_work())
        progressed = self.engine.scheduler.pump(max_passes=max_passes)
        if not progressed and not self.engine.scheduler.has_work():
            # Between queries nothing schedules, but the marketplace may
            # still owe events (expiries of unclaimed HITs).  Draining them
            # on a wall clock would block real time, so only the simulated
            # substrate fast-forwards here.
            if not isinstance(self.engine.clock, WallClock):
                self.engine.clock.run_until_idle()
        return reply_ok(progressed=progressed, has_work=self.engine.scheduler.has_work())

    def _op_withdraw_pending(self, message: dict[str, Any]) -> dict[str, Any]:
        """Hand back every still-pending (never admitted) submission.

        The coordinator calls this on a shard it has judged unhealthy: each
        query the scheduler can still :meth:`~EngineScheduler.withdraw` is
        forgotten here and its original submission payload returned, so the
        coordinator can replay it verbatim on a healthy shard under the same
        cluster id.  Admitted queries (which may hold in-flight crowd work)
        stay put.  Only submissions this process has seen are eligible — a
        WAL-recovered worker keeps its recovered queries, which are durable
        where they are.
        """
        withdrawn: list[dict[str, Any]] = []
        for cluster_id in list(self._order):
            payload = self._submissions.get(cluster_id)
            if payload is None:
                continue
            handle = self._handles[cluster_id]
            if not self.engine.scheduler.withdraw(handle.query_id):
                continue
            withdrawn.append(payload)
            del self._handles[cluster_id]
            self._order.remove(cluster_id)
            del self._submissions[cluster_id]
        return reply_ok(shard=self.shard_id, queries=withdrawn)

    def _op_drain(self, message: dict[str, Any]) -> dict[str, Any]:
        finished = self.engine.scheduler.drain()
        self.engine.clock.run_until_idle()
        statuses = {qid: self._handles[qid].status.value for qid in self._order}
        return reply_ok(finished=finished, statuses=statuses)

    def _op_stats(self, message: dict[str, Any]) -> dict[str, Any]:
        manager = self.engine.task_manager.stats
        platform = self.engine.platform.stats
        scheduler = self.engine.scheduler.metrics
        cache = self.engine.task_cache.stats
        queries = {}
        for qid in self._order:
            stats = self._handles[qid].stats
            queries[qid] = {
                "status": self._handles[qid].status.value,
                "budget": stats.budget,
                "spent": stats.spent,
                "hits_posted": stats.hits_posted,
                "tasks_submitted": stats.tasks_submitted,
                "tasks_completed": stats.tasks_completed,
                "cache_hits": stats.cache_hits,
                "model_answers": stats.model_answers,
                "results_emitted": stats.results_emitted,
                "dollars_saved_cache": stats.dollars_saved_cache,
                "dollars_saved_model": stats.dollars_saved_model,
            }
        return reply_ok(
            shard=self.shard_id,
            queries=queries,
            totals={
                "queries": len(self._order),
                "total_cost": self.engine.total_crowd_cost,
                "hits_created": platform.hits_created,
                "hits_expired": platform.hits_expired,
                "assignments_submitted": platform.assignments_submitted,
                "tasks_submitted": manager.tasks_submitted,
                "tasks_completed": manager.tasks_completed,
                "cache_answers": manager.cache_answers,
                "model_answers": manager.model_answers,
                "cache_entries": cache.entries,
                "cache_entries_imported": cache.entries_imported,
                "cross_shard_hits": cache.cross_shard_hits,
                "cache_expirations": cache.expirations,
                "cache_admissions_rejected": cache.admissions_rejected,
                "hits_posted": manager.hits_posted,
                "cross_query_hits": manager.cross_query_hits,
                "scheduler_passes": scheduler.passes,
                "clock_advances": scheduler.clock_advances,
                "simulated_time": self.engine.clock.now,
                "queue_depth": len(self.engine.scheduler.active_queries())
                + len(self.engine.scheduler.queued_queries()),
                "queries_rejected": scheduler.queries_rejected,
                "queries_shed": scheduler.queries_shed,
                "deadline_misses": scheduler.deadline_misses,
                "queries_degraded": scheduler.queries_degraded,
                "queries_pressured": scheduler.queries_pressured,
                "breaker_trips": (
                    self.engine.breaker.stats.trips
                    if getattr(self.engine, "breaker", None) is not None
                    else 0
                ),
            },
            peak_rss_kb=_peak_rss_kb(),
        )

    def _op_cache_export(self, message: dict[str, Any]) -> dict[str, Any]:
        """Ship cache stores made since the coordinator's cursor.

        Entries arrive pack_value-encoded (JSON-safe), so the reply crosses
        the pipe without any engine object leaking across the boundary.
        """
        cursor, entries = self.engine.task_cache.export_since(
            int(message.get("since", 0))
        )
        return reply_ok(shard=self.shard_id, cursor=cursor, entries=entries)

    def _op_cache_import(self, message: dict[str, Any]) -> dict[str, Any]:
        imported = self.engine.task_cache.import_entries(message.get("entries", []))
        return reply_ok(shard=self.shard_id, imported=imported)

    def _op_dashboard(self, message: dict[str, Any]) -> dict[str, Any]:
        dashboard = QueryDashboard(self.engine)
        return reply_ok(shard=self.shard_id, text=dashboard.render_all())

    def _op_fingerprint(self, message: dict[str, Any]) -> dict[str, Any]:
        statuses = [self._handles[qid].status.value for qid in self._order]
        rows = [
            [row.to_dict() for row in self._handles[qid].results()] for qid in self._order
        ]
        return reply_ok(
            shard=self.shard_id,
            fingerprint=fingerprint_engine(self.engine, statuses, rows),
        )

    def _op_shutdown(self, message: dict[str, Any]) -> dict[str, Any]:
        return reply_ok(bye=True)


def _peak_rss_kb() -> int:
    """This process's peak resident set size in KiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return peak // 1024 if os.uname().sysname == "Darwin" else peak


def worker_main(
    connection,
    spec_payload: dict[str, Any],
    shard_id: int,
    durability: dict[str, Any] | None = None,
) -> None:
    """Child-process entry point: build the engine, then serve the pipe.

    With ``durability`` (a ``{"directory", "fsync", "fsync_every"}`` dict)
    the worker recovers from an existing WAL or starts journalling to a
    fresh one, so a respawned worker heals in place.  A failed engine build
    is reported as an error reply to the first request rather than a silent
    child death, so the coordinator's ping surfaces a readable message.
    """
    transport = PipeTransport(connection)
    worker: ShardWorker | None = None
    build_error: str | None = None
    try:
        worker = ShardWorker(
            EngineSpec.from_payload(spec_payload), shard_id, durability=durability
        )
    except Exception as error:  # noqa: BLE001 - reported via the transport
        build_error = f"shard {shard_id} failed to build its engine: {error}"
    try:
        while True:
            try:
                message = transport.recv()
            except ClusterError:
                break  # coordinator went away; exit quietly
            if worker is None:
                transport.send(reply_error(build_error or "worker has no engine"))
                continue
            reply = worker.handle(message)
            transport.send(reply)
            if message.get("op") == "shutdown":
                break
    finally:
        if worker is not None and getattr(worker.engine, "journal", None) is not None:
            worker.engine.journal.close()
        transport.close()
