"""A minimal asyncio request/response front end for the cluster.

Clients speak the same length-prefixed JSON frames as the internal
coordinator ↔ worker protocol (:mod:`repro.cluster.serialization`), over a
plain TCP socket:

``{"op": "submit", "sql": ..., "budget"?, "priority"?}``
    → ``{"ok": true, "query_id": "cq1", "shard": 0}``
``{"op": "status", "query_id": "cq1"}``
    → ``{"ok": true, "status": "running", "results_emitted": 3, "error": null}``
``{"op": "results", "query_id": "cq1"}`` / ``{"op": "poll", ...}``
    → ``{"ok": true, "rows": {"schema": [...], "values": [...]}}``
``{"op": "stats"}``
    → merged cluster totals.

The coordinator's pipe protocol is synchronous, so every coordinator call
runs in the default executor under one lock; a background pump task keeps
the shards' schedulers moving between requests (this is what makes the
server *live*: submitted queries progress while nobody is polling, and on a
:class:`~repro.crowd.wallclock.WallClock` engine they progress in real
time).
"""

from __future__ import annotations

import asyncio
import random
from typing import Any

from repro.cluster.coordinator import ShardCoordinator
from repro.cluster.serialization import decode_message, encode_rows, frame_message
from repro.errors import ClusterError, EngineOverloadedError, QurkError

__all__ = ["ClusterServer", "raise_for_reply", "request"]

_HEADER_BYTES = 4
#: Idle delay between pump slices when no shard reported progress.
_IDLE_PUMP_DELAY = 0.05


class ClusterServer:
    """Serve a :class:`ShardCoordinator` over asyncio TCP."""

    def __init__(
        self,
        coordinator: ShardCoordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._lock = asyncio.Lock()

    async def start(self) -> None:
        """Bind the listening socket and start the background pump."""
        self._server = await asyncio.start_server(self._serve_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.get_running_loop().create_task(self._pump_loop())

    async def close(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ClusterServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- coordinator access ------------------------------------------------

    async def _coordinator_call(self, fn, *args, **kwargs):
        """Run one blocking coordinator method without starving the loop."""
        async with self._lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, lambda: fn(*args, **kwargs))

    async def _pump_loop(self) -> None:
        while True:
            progressed = await self._coordinator_call(self.coordinator.pump, max_passes=4)
            if not progressed:
                await asyncio.sleep(_IDLE_PUMP_DELAY)

    # -- request handling --------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER_BYTES)
                except asyncio.IncompleteReadError:
                    break
                length = int.from_bytes(header, "big")
                body = await reader.readexactly(length)
                try:
                    reply = await self._dispatch(decode_message(body))
                except EngineOverloadedError as error:
                    # Backpressure is a structured, terminal response: the
                    # client gets the class name and a retry-after hint so
                    # it can pace itself instead of retrying blind.
                    reply = {
                        "ok": False,
                        "error": f"EngineOverloadedError: {error}",
                        "error_type": "overloaded",
                        "retry_after": error.retry_after,
                    }
                except QurkError as error:
                    reply = {
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                        "error_type": type(error).__name__,
                    }
                writer.write(frame_message(reply))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client vanished
                pass

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "submit":
            if "sql" not in message:
                raise ClusterError("submit requires 'sql'")
            handle = (
                await self._coordinator_call(
                    self.coordinator.submit_many,
                    [
                        {
                            "sql": message["sql"],
                            "budget": message.get("budget"),
                            "priority": message.get("priority", 1.0),
                        }
                    ],
                )
            )[0]
            return {"ok": True, "query_id": handle.query_id, "shard": handle.shard}
        if op == "status":
            status = await self._coordinator_call(
                self.coordinator.status, message["query_id"]
            )
            return {"ok": True, **status}
        if op == "poll":
            rows = await self._coordinator_call(self.coordinator.poll, message["query_id"])
            return {"ok": True, "rows": encode_rows(rows)}
        if op == "results":
            rows = await self._coordinator_call(self.coordinator.results, message["query_id"])
            return {"ok": True, "rows": encode_rows(rows)}
        if op == "stats":
            stats = await self._coordinator_call(self.coordinator.stats)
            return {
                "ok": True,
                "totals": stats.totals,
                "peak_rss_kb_sum": stats.peak_rss_kb_sum,
                "peak_rss_kb_max": stats.peak_rss_kb_max,
            }
        raise ClusterError(f"unknown server op {op!r}")


#: Default bounded-retry policy for the one-shot client.
_REQUEST_ATTEMPTS = 3
_REQUEST_BACKOFF = 0.1


async def _request_once(host: str, port: int, message: dict[str, Any]) -> dict[str, Any]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(frame_message(message))
        await writer.drain()
        header = await reader.readexactly(_HEADER_BYTES)
        body = await reader.readexactly(int.from_bytes(header, "big"))
        return decode_message(body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


#: Terminal ``error_type`` values a retry can never fix: the server took the
#: request and rejected it deliberately (overload backpressure) or the
#: request itself is malformed (validation).  Retrying would re-offer the
#: same load to a saturated cluster — exactly what backpressure exists to
#: prevent.
_TERMINAL_ERROR_TYPES = frozenset({"overloaded", "ClusterError", "ParseError"})


def raise_for_reply(reply: dict[str, Any]) -> dict[str, Any]:
    """Convert a structured error reply into its typed exception.

    Successful replies pass straight through.  An ``"overloaded"`` reply
    becomes :class:`~repro.errors.EngineOverloadedError` with its
    ``retry_after`` hint intact; anything else raises
    :class:`~repro.errors.ClusterError`.  Clients that prefer inspecting the
    dict can simply not call this.
    """
    if reply.get("ok"):
        return reply
    message = str(reply.get("error", "unknown failure"))
    if reply.get("error_type") == "overloaded":
        raise EngineOverloadedError(
            message, retry_after=float(reply.get("retry_after", 1.0))
        )
    raise ClusterError(message)


async def request(
    host: str,
    port: int,
    message: dict[str, Any],
    *,
    attempts: int = _REQUEST_ATTEMPTS,
    backoff: float = _REQUEST_BACKOFF,
    jitter: float = 0.0,
    seed: int = 0,
) -> dict[str, Any]:
    """One-shot client: send a frame, await the reply frame.

    Connect and read failures (server restarting, connection reset mid-
    reply) are retried with exponential backoff up to ``attempts`` times,
    then surface as a terminal :class:`~repro.errors.ClusterError` naming
    every attempt's failure — never an infinite hang, never a bare socket
    traceback.

    Application-level errors are terminal immediately: an ``{"ok": false}``
    reply means the server is up and answered deliberately, so overload
    rejections and validation failures are returned on the first attempt —
    retrying an overloaded cluster inside the retry loop would amplify the
    very load that triggered the rejection (honor ``retry_after`` instead).

    ``jitter`` spreads the backoff by up to that fraction (e.g. ``0.5`` →
    sleeps scaled by 1.0–1.5×) from a stream seeded by ``seed``, so a herd
    of clients recovering from a server restart does not reconnect in
    lockstep while tests still see reproducible delays.
    """
    if attempts < 1:
        raise ClusterError(f"request needs at least 1 attempt, got {attempts}")
    if not 0.0 <= jitter <= 1.0:
        raise ClusterError(f"jitter must be in [0, 1], got {jitter}")
    rng = random.Random(seed) if jitter > 0.0 else None
    failures: list[str] = []
    for attempt in range(attempts):
        if attempt:
            delay = backoff * 2 ** (attempt - 1)
            if rng is not None:
                delay *= 1.0 + jitter * rng.random()
            await asyncio.sleep(delay)
        try:
            return await _request_once(host, port, message)
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
            failures.append(f"attempt {attempt + 1}: {type(error).__name__}: {error}")
    raise ClusterError(
        f"request to {host}:{port} failed after {attempts} attempt(s): "
        + "; ".join(failures)
    )
