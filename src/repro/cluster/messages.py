"""Message transports for coordinator ↔ worker traffic.

A :class:`Transport` is anything that can send and receive whole protocol
messages (dicts).  The default :class:`PipeTransport` runs over a
``multiprocessing`` pipe but still moves the *serialized* frames from
:mod:`repro.cluster.serialization` — never pickled Python objects — so the
wire format is identical to what a socket transport would carry, and the
serialization round-trip is exercised on every single call.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.cluster.serialization import decode_message, encode_message
from repro.errors import ClusterError

__all__ = ["Transport", "PipeTransport", "reply_ok", "reply_error"]


class Transport(Protocol):
    """Bidirectional, message-at-a-time channel between two cluster peers."""

    def send(self, message: dict[str, Any]) -> None: ...

    def recv(self) -> dict[str, Any]: ...

    def close(self) -> None: ...


class PipeTransport:
    """A :class:`Transport` over one end of a ``multiprocessing.Pipe``.

    Messages travel as encoded JSON byte payloads (``send_bytes``), so both
    endpoints exercise the exact bytes a socket transport would exchange.
    """

    def __init__(self, connection) -> None:
        self._connection = connection

    def send(self, message: dict[str, Any]) -> None:
        self._connection.send_bytes(encode_message(message))

    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a message is ready within ``timeout`` seconds.

        Lets callers wait in short slices and check peer liveness between
        them instead of blocking forever on a dead process.
        """
        return self._connection.poll(timeout)

    def recv(self) -> dict[str, Any]:
        try:
            payload = self._connection.recv_bytes()
        except EOFError as error:
            raise ClusterError("cluster peer closed the connection") from error
        return decode_message(payload)

    def close(self) -> None:
        self._connection.close()


def reply_ok(**fields: Any) -> dict[str, Any]:
    """A successful reply; extra fields carry the op's payload."""
    reply = {"ok": True}
    reply.update(fields)
    return reply


def reply_error(
    message: str,
    *,
    error_type: str | None = None,
    retry_after: float | None = None,
) -> dict[str, Any]:
    """A failed reply; the coordinator re-raises it as a typed error.

    ``error_type`` lets the receiving side rebuild the right exception class
    instead of a generic :class:`ClusterError`; ``retry_after`` carries the
    backpressure hint of an ``"overloaded"`` rejection so clients can pace
    their retry instead of hammering a saturated shard.
    """
    reply: dict[str, Any] = {"ok": False, "error": message}
    if error_type is not None:
        reply["error_type"] = error_type
    if retry_after is not None:
        reply["retry_after"] = retry_after
    return reply
