"""Wire format for the shard-per-process cluster runtime.

Everything the coordinator and its shard workers exchange — query
submissions, result rows, plans, statistics — travels as UTF-8 JSON framed
with a 4-byte big-endian length prefix.  The framing is deliberately
transport-agnostic: :func:`frame_message` / :class:`FrameDecoder` work over
any byte stream, so the multiprocessing pipes used today and the asyncio
socket front end (:mod:`repro.cluster.server`) share one codec, and a plain
TCP transport can slot in without touching the protocol.

JSON cannot represent every storage value directly (crowd answers include
tuples and answer lists), so values are encoded with a small tagging scheme:
tuples become ``{"__tuple__": [...]}`` recursively.  Decoding rebuilds rows
with :meth:`Row.unchecked` against the decoded schema, which makes the round
trip exact: a row encoded on a worker and decoded on the coordinator compares
equal to the original.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from typing import Any, Iterable

from repro.core.exec.context import QueryConfig
from repro.errors import ClusterError
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

__all__ = [
    "encode_message",
    "decode_message",
    "frame_message",
    "FrameDecoder",
    "encode_schema",
    "decode_schema",
    "encode_rows",
    "decode_rows",
    "encode_query",
    "decode_query",
]

#: Length-prefix layout: one unsigned 32-bit big-endian integer.
_HEADER = struct.Struct(">I")

#: Refuse frames above this size rather than buffering unboundedly on a
#: corrupt or hostile length prefix (64 MiB is far above any real payload).
MAX_FRAME_BYTES = 64 * 1024 * 1024


# ---------------------------------------------------------------------------
# Messages and framing
# ---------------------------------------------------------------------------


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to compact UTF-8 JSON."""
    return json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode("utf-8")


def decode_message(payload: bytes) -> dict[str, Any]:
    """Parse one protocol message; raises :class:`ClusterError` on junk."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(f"undecodable cluster message: {error}") from error
    if not isinstance(message, dict):
        raise ClusterError(f"cluster message must be an object, got {type(message).__name__}")
    return message


def frame_message(message: dict[str, Any]) -> bytes:
    """A message as one self-delimiting frame: 4-byte length + JSON body."""
    body = encode_message(message)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(f"cluster frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed frames.

    Feed it arbitrary chunks of bytes (as a socket hands them over); it
    yields every complete message and buffers the remainder:

    >>> decoder = FrameDecoder()
    >>> decoder.feed(frame_message({"op": "ping"}))
    [{'op': 'ping'}]
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict[str, Any]]:
        """Absorb ``data`` and return every message completed by it."""
        self._buffer.extend(data)
        messages: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ClusterError(f"cluster frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            body = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            messages.append(decode_message(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Values, schemas, rows
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__tuple__" in value and len(value) == 1:
            return tuple(_decode_value(item) for item in value["__tuple__"])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_schema(schema: Schema) -> list[list[Any]]:
    """A schema as ``[name, data_type, nullable]`` triples."""
    return [[col.name, col.data_type.value, col.nullable] for col in schema.columns]


def decode_schema(payload: Iterable[Iterable[Any]]) -> Schema:
    """Rebuild a schema from :func:`encode_schema` output."""
    try:
        columns = [
            Column(name, DataType(data_type), bool(nullable))
            for name, data_type, nullable in payload
        ]
    except (TypeError, ValueError) as error:
        raise ClusterError(f"undecodable schema payload: {error}") from error
    return Schema.of(*columns)


def encode_rows(rows: Iterable[Row]) -> dict[str, Any]:
    """Rows (sharing one schema) as a JSON-safe ``{"schema", "values"}`` pair."""
    rows = list(rows)
    if not rows:
        return {"schema": [], "values": []}
    return {
        "schema": encode_schema(rows[0].schema),
        "values": [[_encode_value(value) for value in row.values] for row in rows],
    }


def decode_rows(payload: dict[str, Any]) -> list[Row]:
    """Rebuild rows from :func:`encode_rows` output (exact round trip)."""
    values = payload.get("values", [])
    if not values:
        return []
    schema = decode_schema(payload["schema"])
    return [
        Row.unchecked(schema, tuple(_decode_value(value) for value in row_values))
        for row_values in values
    ]


# ---------------------------------------------------------------------------
# Query submissions
# ---------------------------------------------------------------------------


def encode_query(
    sql: str,
    *,
    query_id: str,
    budget: float | None = None,
    priority: float = 1.0,
    config: QueryConfig | None = None,
) -> dict[str, Any]:
    """One query submission as it crosses coordinator → worker framing."""
    return {
        "query_id": query_id,
        "sql": sql,
        "budget": budget,
        "priority": priority,
        "config": dataclasses.asdict(config) if config is not None else None,
    }


def decode_query(payload: dict[str, Any]) -> dict[str, Any]:
    """Rebuild a submission: same dict shape, with ``config`` re-hydrated."""
    try:
        submission = {
            "query_id": payload["query_id"],
            "sql": payload["sql"],
            "budget": payload.get("budget"),
            "priority": payload.get("priority", 1.0),
            "config": None,
        }
    except KeyError as error:
        raise ClusterError(f"query submission missing field {error}") from error
    raw_config = payload.get("config")
    if raw_config is not None:
        try:
            submission["config"] = QueryConfig(**raw_config)
        except TypeError as error:
            raise ClusterError(f"undecodable query config: {error}") from error
    return submission
