"""The shard coordinator: N engine processes behind one submission API.

A :class:`ShardCoordinator` partitions queries across ``n_shards`` worker
processes, each running a full :class:`~repro.engine.QurkEngine` built from
the same :class:`~repro.cluster.worker.EngineSpec` (so every shard is an
identical, independent marketplace).  Placement is deterministic — seeded
hash or round-robin by admission order — which is what makes N-shard
same-seed runs fingerprint-stable.

Determinism contract: a 1-shard cluster is byte-identical to the in-process
engine.  The worker's ``drain`` op is exactly the chaos harness's driving
sequence (consecutive ``wait()`` calls share one global ``step()`` loop,
which ``EngineScheduler.drain`` reproduces, followed by
``clock.run_until_idle()``), so its fingerprint matches
:func:`repro.testing.chaos.fingerprint_engine` over an in-process run of the
same queries.

Broadcast ops (``drain``, ``stats``, ``fingerprint``) send to every shard
*before* collecting any reply, so shards genuinely run concurrently — on a
drain of an N-shard cluster all N engines make progress at once.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cluster.messages import PipeTransport
from repro.cluster.placement import HealthAwarePlacement, Placement, make_placement
from repro.cluster.serialization import decode_rows, encode_query
from repro.cluster.worker import EngineSpec, worker_main
from repro.core.exec.context import QueryConfig
from repro.errors import ClusterError, EngineOverloadedError, ShardCrashedError

__all__ = ["ClusterQueryHandle", "ClusterStats", "ShardCoordinator", "ShardHealth"]

#: Smoothing factor of the per-shard op-latency EWMA (higher = more reactive).
_LATENCY_EWMA_ALPHA = 0.2


@dataclass
class ShardHealth:
    """Coordinator-side health record for one shard.

    Everything here is observed on the coordinator's side of the pipe —
    op round-trip latency (EWMA), crash/heal count, last-reply heartbeat,
    and the queue depth the shard last reported — so health costs no extra
    protocol traffic.  ``marked_unhealthy`` is the routing verdict; it flips
    only at explicit points (a manual mark, or the crash count crossing the
    coordinator's threshold), never from timing noise, which is what keeps
    health-aware placement deterministic.
    """

    shard_id: int
    latency_ewma: float = 0.0
    samples: int = 0
    crashes: int = 0
    queue_depth: int = 0
    last_heartbeat: float | None = None
    marked_unhealthy: bool = False

    @property
    def healthy(self) -> bool:
        return not self.marked_unhealthy

    def observe(self, latency: float, now: float) -> None:
        """Fold one successful op round-trip into the record."""
        if self.samples == 0:
            self.latency_ewma = latency
        else:
            self.latency_ewma += _LATENCY_EWMA_ALPHA * (latency - self.latency_ewma)
        self.samples += 1
        self.last_heartbeat = now

    def heartbeat_age(self, now: float) -> float | None:
        """Seconds since the last successful reply; None before the first."""
        if self.last_heartbeat is None:
            return None
        return max(0.0, now - self.last_heartbeat)

    def report(self, now: float) -> dict[str, Any]:
        """JSON-safe summary for merged stats and the cluster dashboard."""
        return {
            "shard": self.shard_id,
            "healthy": self.healthy,
            "latency_ewma": self.latency_ewma,
            "samples": self.samples,
            "crashes": self.crashes,
            "queue_depth": self.queue_depth,
            "heartbeat_age": self.heartbeat_age(now),
        }


@dataclass(frozen=True)
class ClusterQueryHandle:
    """A pollable reference to a query running on some shard."""

    coordinator: "ShardCoordinator"
    query_id: str
    shard: int

    def status(self) -> dict[str, Any]:
        """Current lifecycle status plus result count and any error text."""
        return self.coordinator.status(self.query_id)

    def poll(self):
        """Result rows that arrived since the previous poll."""
        return self.coordinator.poll(self.query_id)

    def results(self):
        """All result rows produced so far."""
        return self.coordinator.results(self.query_id)

    def describe_plan(self) -> str:
        return self.coordinator.describe_plan(self.query_id)


@dataclass
class ClusterStats:
    """Cross-shard aggregation of engine statistics.

    ``totals`` sums every numeric counter across shards (HIT-batching stats,
    budget spend, scheduler passes); ``per_shard`` keeps each worker's own
    report, including its ``peak_rss_kb``; ``peak_rss_kb_sum`` /
    ``peak_rss_kb_max`` summarize worker memory across the fleet.
    """

    totals: dict[str, float] = field(default_factory=dict)
    per_shard: list[dict[str, Any]] = field(default_factory=list)
    queries: dict[str, dict[str, Any]] = field(default_factory=dict)
    peak_rss_kb_sum: int = 0
    peak_rss_kb_max: int = 0
    answer_directory_entries: int = 0
    answers_pushed: int = 0
    #: Per-shard health reports (heartbeat age, latency EWMA, crashes).
    health: list[dict[str, Any]] = field(default_factory=list)
    #: Queries moved off unhealthy shards by :meth:`rebalance_pending`.
    rebalanced: int = 0


class _Shard:
    """Coordinator-side record of one worker process."""

    def __init__(self, shard_id: int, process, transport: PipeTransport):
        self.shard_id = shard_id
        self.process = process
        self.transport = transport


class ShardCoordinator:
    """Partition queries across N shard-per-process Qurk engines.

    Parameters
    ----------
    spec:
        Recipe every worker uses to build its engine (same seed → identical
        independent marketplaces).
    n_shards:
        Number of worker processes.
    placement:
        ``"round-robin"`` (default: admission order, ``i % n``) or
        ``"hash"`` (seeded SHA-256 of the query id), or a ready-made
        :class:`~repro.cluster.placement.Placement`.
    seed:
        Seed for hash placement (ignored by round-robin).
    start_method:
        ``multiprocessing`` start method; ``"fork"`` is the cheap default.
    durability_root:
        Directory for per-shard durability state (``<root>/shard-<i>`` each
        holds that worker's WAL).  With this set, a worker that dies is
        detected, respawned, and heals itself by replaying its own log —
        the coordinator then retries the interrupted op exactly once.
        ``None`` (the default) keeps workers ephemeral: a dead worker
        raises :class:`~repro.errors.ShardCrashedError` instead.
    durability_fsync, durability_fsync_every:
        WAL fsync policy the workers journal under.
    call_timeout:
        Seconds the coordinator waits for one op reply before declaring the
        worker hung.  Liveness is checked every ``poll_interval`` seconds
        regardless, so a *dead* worker is detected within a poll slice, not
        the timeout.
    poll_interval:
        Seconds per liveness-poll slice while waiting on a reply (default
        0.1).  Lower values detect worker deaths faster at the cost of more
        ``is_alive()`` checks; it also bounds how stale a shard's
        last-heartbeat age can be while an op is in flight.
    unhealthy_crash_threshold:
        With an integer N, a shard whose crash/heal count reaches N is
        automatically marked unhealthy: a ``"health"`` placement stops
        routing new queries to it and :meth:`rebalance_pending` can move its
        never-started queries elsewhere.  ``None`` (the default) never
        auto-marks, keeping existing cluster behaviour untouched; manual
        verdicts via :meth:`mark_shard_unhealthy` work either way.
    share_answers:
        With ``True`` the coordinator keeps an answer directory: around
        every drain it pulls each shard's fresh cache stores
        (``cache_export``), merges them keep-first in shard order, and
        pushes the deltas back out (``cache_import``) — so a task answered
        on shard 2 is a cache hit on shard 5.  Workers never talk to each
        other; the coordinator mediates, which keeps the protocol
        pull/push over the existing pipes.  Off by default: a non-sharing
        cluster is byte-identical to the pre-directory behaviour.
    """

    def __init__(
        self,
        spec: EngineSpec,
        n_shards: int = 1,
        *,
        placement: str | Placement = "round-robin",
        seed: int = 0,
        start_method: str = "fork",
        durability_root: str | Path | None = None,
        durability_fsync: str = "interval",
        durability_fsync_every: int = 256,
        call_timeout: float = 300.0,
        poll_interval: float = 0.1,
        unhealthy_crash_threshold: int | None = None,
        share_answers: bool = False,
    ):
        if n_shards < 1:
            raise ClusterError(f"a cluster needs at least 1 shard, got {n_shards}")
        if poll_interval <= 0:
            raise ClusterError(f"poll_interval must be positive, got {poll_interval}")
        if unhealthy_crash_threshold is not None and unhealthy_crash_threshold < 1:
            raise ClusterError(
                "unhealthy_crash_threshold must be >= 1 or None, "
                f"got {unhealthy_crash_threshold}"
            )
        self.spec = spec
        self.n_shards = n_shards
        self.placement = (
            placement
            if isinstance(placement, Placement)
            else make_placement(placement, n_shards, seed)
        )
        if self.placement.n_shards != n_shards:
            raise ClusterError(
                f"placement covers {self.placement.n_shards} shards, cluster has {n_shards}"
            )
        self._start_method = start_method
        self.durability_root = Path(durability_root) if durability_root is not None else None
        self._durability_fsync = durability_fsync
        self._durability_fsync_every = durability_fsync_every
        self.call_timeout = call_timeout
        self.poll_interval = poll_interval
        self.unhealthy_crash_threshold = unhealthy_crash_threshold
        self.health: list[ShardHealth] = [ShardHealth(i) for i in range(n_shards)]
        self.rebalanced: int = 0
        self.heals: int = 0
        self.share_answers = share_answers
        # The answer directory: every entry any shard has exported, merged
        # keep-first in shard order (deterministic), plus per-shard export
        # cursors and per-shard push positions into the directory.
        self._answer_directory: list[dict[str, Any]] = []
        self._answer_keys: set[str] = set()
        self._cache_cursors: dict[int, int] = {}
        self._pushed: dict[int, int] = {}
        self.answers_pushed: int = 0
        self._shards: list[_Shard] = []
        self._routes: dict[str, int] = {}
        self._admitted = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def _shard_durability(self, shard_id: int) -> dict[str, Any] | None:
        if self.durability_root is None:
            return None
        return {
            "directory": str(self.durability_root / f"shard-{shard_id}"),
            "fsync": self._durability_fsync,
            "fsync_every": self._durability_fsync_every,
        }

    def _spawn(self, shard_id: int) -> _Shard:
        context = multiprocessing.get_context(self._start_method)
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=worker_main,
            args=(child_end, self.spec.payload(), shard_id, self._shard_durability(shard_id)),
            name=f"qurk-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_end.close()
        return _Shard(shard_id, process, PipeTransport(parent_end))

    def start(self) -> "ShardCoordinator":
        """Spawn and ping every worker process."""
        if self._shards:
            raise ClusterError("coordinator already started")
        if self.durability_root is not None:
            self.durability_root.mkdir(parents=True, exist_ok=True)
        for shard_id in range(self.n_shards):
            self._shards.append(self._spawn(shard_id))
        for shard in self._shards:
            self._call(shard.shard_id, {"op": "ping"})
        return self

    def close(self) -> None:
        """Shut every worker down; terminate stragglers."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.transport.send({"op": "shutdown"})
                shard.transport.recv()
            except (ClusterError, OSError, BrokenPipeError):
                pass
            shard.transport.close()
        for shard in self._shards:
            shard.process.join(timeout=5)
            if shard.process.is_alive():  # pragma: no cover - defensive
                shard.process.terminate()
                shard.process.join(timeout=5)

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- messaging ---------------------------------------------------------

    def _send(self, shard: _Shard, message: dict[str, Any]) -> None:
        """Send one op, converting a dead peer into :class:`ShardCrashedError`.

        Writing to a pipe whose worker died raises ``BrokenPipeError`` (or
        succeeds into the kernel buffer and fails on the next write — which
        is why :meth:`_recv` also checks liveness).  Either way the caller
        sees the same diagnosed crash error, never a raw socket traceback.
        """
        try:
            shard.transport.send(message)
        except (ClusterError, OSError) as error:
            raise ShardCrashedError(
                f"shard {shard.shard_id} (pid {shard.process.pid}) was unreachable "
                f"for {message.get('op')!r}: {error}",
                shard_id=shard.shard_id,
                pid=shard.process.pid,
                exitcode=shard.process.exitcode,
                op=str(message.get("op")),
            ) from error

    def _recv(self, shard: _Shard, op: Any) -> dict[str, Any]:
        """Receive one reply, failing fast if the worker process died.

        A plain blocking ``recv`` would hang forever on a crashed worker
        (the write end of the pipe survives in the coordinator, so no EOF
        arrives).  Waiting in short poll slices lets the coordinator check
        ``process.is_alive()`` between them and put a name, pid, exit code
        and the in-flight op on the failure instead.
        """
        deadline = time.monotonic() + self.call_timeout
        while True:
            try:
                if shard.transport.poll(self.poll_interval):
                    return shard.transport.recv()
            except (ClusterError, OSError, EOFError) as error:
                raise ShardCrashedError(
                    f"shard {shard.shard_id} closed its pipe during {op!r}: {error}",
                    shard_id=shard.shard_id,
                    pid=shard.process.pid,
                    exitcode=shard.process.exitcode,
                    op=str(op),
                ) from error
            if not shard.process.is_alive():
                raise ShardCrashedError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) died during "
                    f"{op!r} with exit code {shard.process.exitcode}",
                    shard_id=shard.shard_id,
                    pid=shard.process.pid,
                    exitcode=shard.process.exitcode,
                    op=str(op),
                )
            if time.monotonic() >= deadline:
                raise ShardCrashedError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) sent no reply to "
                    f"{op!r} within {self.call_timeout:.0f}s",
                    shard_id=shard.shard_id,
                    pid=shard.process.pid,
                    exitcode=shard.process.exitcode,
                    op=str(op),
                )

    def heal(self, shard_id: int) -> None:
        """Respawn a dead worker; it replays its WAL and rejoins the cluster.

        Only meaningful with ``durability_root`` set — without a log there
        is nothing to heal from.  The old process is reaped, a fresh one is
        spawned against the same durability directory (so it recovers its
        engine and its coordinator-id mappings), and pinged.
        """
        if self.durability_root is None:
            raise ClusterError(
                f"cannot heal shard {shard_id}: cluster has no durability_root"
            )
        old = self._shards[shard_id]
        old.transport.close()
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
        old.process.join(timeout=5)
        self._shards[shard_id] = self._spawn(shard_id)
        self.heals += 1
        health = self.health[shard_id]
        health.crashes += 1
        if (
            self.unhealthy_crash_threshold is not None
            and health.crashes >= self.unhealthy_crash_threshold
        ):
            self.mark_shard_unhealthy(shard_id)
        # The healed worker replayed its WAL, which deterministically
        # rebuilt its *local* store log — but imported entries were never
        # journalled there.  Restart this shard's sharing from scratch:
        # re-exports dedup against the directory and re-imports are
        # idempotent (local entries win).
        self._cache_cursors[shard_id] = 0
        self._pushed[shard_id] = 0
        shard = self._shards[shard_id]
        self._send(shard, {"op": "ping"})
        reply = self._recv(shard, "ping")
        if not reply.get("ok"):
            raise ClusterError(
                f"healed shard {shard_id} failed its ping: "
                f"{reply.get('error', 'unknown failure')}"
            )

    def _observe(self, shard_id: int, started: float) -> None:
        """Record one successful op round-trip in the shard's health."""
        now = time.monotonic()
        self.health[shard_id].observe(now - started, now)

    def _raise_reply(self, shard_id: int, reply: dict[str, Any]) -> None:
        """Rebuild the typed error carried by a structured failure reply."""
        message = f"shard {shard_id}: {reply.get('error', 'unknown failure')}"
        if reply.get("error_type") == "overloaded":
            raise EngineOverloadedError(
                message, retry_after=float(reply.get("retry_after", 1.0))
            )
        raise ClusterError(message)

    def _call(self, shard_id: int, message: dict[str, Any]) -> dict[str, Any]:
        if not self._shards:
            raise ClusterError("coordinator not started (use start() or a with-block)")
        shard = self._shards[shard_id]
        op = message.get("op")
        started = time.monotonic()
        try:
            self._send(shard, message)
            reply = self._recv(shard, op)
        except ShardCrashedError:
            if self.durability_root is None:
                raise
            # Heal in place and retry the interrupted op exactly once.  The
            # worker's durable records make the retry idempotent (already-
            # applied submissions are acknowledged, drains re-run to the
            # same state), so crash-during-op is exactly-once overall.
            self.heal(shard_id)
            shard = self._shards[shard_id]
            started = time.monotonic()
            self._send(shard, message)
            reply = self._recv(shard, op)
        self._observe(shard_id, started)
        if not reply.get("ok"):
            self._raise_reply(shard_id, reply)
        return reply

    def _broadcast(self, message: dict[str, Any]) -> list[dict[str, Any]]:
        """Send to all shards, then collect — shards overlap their work."""
        if not self._shards:
            raise ClusterError("coordinator not started (use start() or a with-block)")
        for shard in list(self._shards):
            try:
                self._send(shard, message)
            except ShardCrashedError:
                if self.durability_root is None:
                    raise
                self.heal(shard.shard_id)
                self._send(self._shards[shard.shard_id], message)
        started = time.monotonic()
        replies = []
        for shard in self._shards:
            try:
                reply = self._recv(shard, message.get("op"))
            except ShardCrashedError:
                if self.durability_root is None:
                    raise
                self.heal(shard.shard_id)
                healed = self._shards[shard.shard_id]
                self._send(healed, message)
                reply = self._recv(healed, message.get("op"))
            self._observe(shard.shard_id, started)
            if not reply.get("ok"):
                self._raise_reply(shard.shard_id, reply)
            replies.append(reply)
        return replies

    def _route(self, query_id: str) -> int:
        try:
            return self._routes[query_id]
        except KeyError:
            raise ClusterError(f"unknown cluster query {query_id!r}")

    # -- shard health ------------------------------------------------------

    def mark_shard_unhealthy(self, shard_id: int) -> None:
        """Route new queries away from this shard until it is re-marked.

        The verdict is recorded in the shard's health and, when the cluster
        uses a ``"health"`` placement, removed from the routing pool.  The
        shard itself keeps running — admitted queries finish where they are.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ClusterError(f"no shard {shard_id} in a {self.n_shards}-shard cluster")
        self.health[shard_id].marked_unhealthy = True
        if isinstance(self.placement, HealthAwarePlacement):
            self.placement.set_healthy(shard_id, False)

    def mark_shard_healthy(self, shard_id: int) -> None:
        """Return a recovered shard to the routing pool."""
        if not 0 <= shard_id < self.n_shards:
            raise ClusterError(f"no shard {shard_id} in a {self.n_shards}-shard cluster")
        self.health[shard_id].marked_unhealthy = False
        if isinstance(self.placement, HealthAwarePlacement):
            self.placement.set_healthy(shard_id, True)

    def healthy_shards(self) -> list[int]:
        """Shard ids currently considered healthy (all, if none are marked)."""
        healthy = [record.shard_id for record in self.health if record.healthy]
        return healthy or list(range(self.n_shards))

    def shard_health(self) -> list[dict[str, Any]]:
        """Per-shard health reports (latency EWMA, crashes, heartbeat age)."""
        now = time.monotonic()
        return [record.report(now) for record in self.health]

    def rebalance_pending(self, shard_id: int) -> int:
        """Move a shard's never-started queries onto the healthy shards.

        Asks the worker to withdraw every submission its scheduler has not
        yet admitted, then replays the original payloads — same cluster ids,
        budgets, priorities, configs — round-robin across the healthy shards
        (excluding the source), updating the routing table.  Admitted
        queries stay put: their operators may hold in-flight crowd work that
        cannot move between marketplaces.  Returns the number of queries
        moved; deterministic because both the withdraw order (the shard's
        admission order) and the target rotation are fixed.
        """
        reply = self._call(shard_id, {"op": "withdraw_pending"})
        payloads = reply["queries"]
        if not payloads:
            return 0
        targets = [sid for sid in self.healthy_shards() if sid != shard_id]
        if not targets:
            raise ClusterError(
                f"cannot rebalance shard {shard_id}: no other healthy shard"
            )
        by_shard: dict[int, list[dict[str, Any]]] = {}
        for index, payload in enumerate(payloads):
            target = targets[index % len(targets)]
            by_shard.setdefault(target, []).append(payload)
        for target in sorted(by_shard):
            self._call(target, {"op": "submit_many", "queries": by_shard[target]})
            for payload in by_shard[target]:
                self._routes[payload["query_id"]] = target
        self.rebalanced += len(payloads)
        return len(payloads)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        sql: str,
        *,
        budget: float | None = None,
        priority: float = 1.0,
        config: QueryConfig | None = None,
    ) -> ClusterQueryHandle:
        """Place one query on its shard and submit it."""
        return self.submit_many(
            [{"sql": sql, "budget": budget, "priority": priority, "config": config}]
        )[0]

    def submit_many(self, queries: list[dict[str, Any]]) -> list[ClusterQueryHandle]:
        """Submit a batch, grouped by shard to cut IPC round-trips.

        Each entry is ``{"sql": ..., "budget"?, "priority"?, "config"?}``.
        Handles come back in submission order; per-shard admission order
        matches submission order, so placement is reproducible.
        """
        placed: list[tuple[int, str, dict[str, Any]]] = []
        for entry in queries:
            query_id = f"cq{self._admitted + 1}"
            shard_id = self.placement.shard_of(self._admitted, query_id)
            self._admitted += 1
            payload = encode_query(
                entry["sql"],
                query_id=query_id,
                budget=entry.get("budget"),
                priority=entry.get("priority", 1.0),
                config=entry.get("config"),
            )
            placed.append((shard_id, query_id, payload))

        by_shard: dict[int, list[dict[str, Any]]] = {}
        for shard_id, _, payload in placed:
            by_shard.setdefault(shard_id, []).append(payload)
        for shard_id, payloads in by_shard.items():
            self._call(shard_id, {"op": "submit_many", "queries": payloads})

        handles = []
        for shard_id, query_id, _ in placed:
            self._routes[query_id] = shard_id
            handles.append(ClusterQueryHandle(self, query_id, shard_id))
        return handles

    # -- per-query ops -----------------------------------------------------

    def status(self, query_id: str) -> dict[str, Any]:
        reply = self._call(self._route(query_id), {"op": "status", "query_id": query_id})
        return {
            "status": reply["status"],
            "results_emitted": reply["results_emitted"],
            "error": reply["error"],
        }

    def poll(self, query_id: str):
        reply = self._call(self._route(query_id), {"op": "poll", "query_id": query_id})
        return decode_rows(reply["rows"])

    def results(self, query_id: str):
        reply = self._call(self._route(query_id), {"op": "results", "query_id": query_id})
        return decode_rows(reply["rows"])

    def describe_plan(self, query_id: str) -> str:
        reply = self._call(self._route(query_id), {"op": "describe_plan", "query_id": query_id})
        return reply["plan"]

    # -- cluster-wide ops --------------------------------------------------

    def pump(self, *, max_passes: int = 1) -> bool:
        """One bounded scheduling slice on every shard; True if any moved."""
        replies = self._broadcast({"op": "pump", "max_passes": max_passes})
        return any(reply["progressed"] for reply in replies)

    def has_work(self) -> bool:
        replies = self._broadcast({"op": "pump", "max_passes": 0})
        return any(reply["has_work"] for reply in replies)

    def sync_answers(self) -> dict[str, int]:
        """One pull/merge/push round of the cross-shard answer directory.

        Pull: ask each shard (in shard order) for cache stores made since
        the coordinator's cursor.  Merge: first shard to export a
        ``(task name, cache key)`` wins — shard order makes the merge
        deterministic.  Push: ship each shard the directory entries it has
        not seen yet; the shard's own entries come back to it too, but
        imports never displace local entries, so the round-trip is a no-op
        there.  Returns ``{"pulled", "merged", "pushed"}`` counts.
        """
        if not self._shards:
            raise ClusterError("coordinator not started (use start() or a with-block)")
        pulled = merged = pushed = 0
        for shard in self._shards:
            shard_id = shard.shard_id
            reply = self._call(
                shard_id,
                {"op": "cache_export", "since": self._cache_cursors.get(shard_id, 0)},
            )
            self._cache_cursors[shard_id] = reply["cursor"]
            for item in reply["entries"]:
                pulled += 1
                dedup = json.dumps([item["name"], item["key"]], sort_keys=True)
                if dedup in self._answer_keys:
                    continue
                self._answer_keys.add(dedup)
                self._answer_directory.append(item)
                merged += 1
        for shard in self._shards:
            shard_id = shard.shard_id
            start = self._pushed.get(shard_id, 0)
            delta = self._answer_directory[start:]
            if delta:
                self._call(shard_id, {"op": "cache_import", "entries": delta})
                pushed += len(delta)
            self._pushed[shard_id] = len(self._answer_directory)
        self.answers_pushed += pushed
        return {"pulled": pulled, "merged": merged, "pushed": pushed}

    def drain(self) -> dict[str, str]:
        """Run every shard to quiescence; statuses keyed by cluster query id."""
        if self.share_answers:
            # Answers from earlier rounds become hits for the queries this
            # drain is about to run...
            self.sync_answers()
        statuses: dict[str, str] = {}
        for reply in self._broadcast({"op": "drain"}):
            statuses.update(reply["statuses"])
        if self.share_answers:
            # ...and answers produced by this drain enter the directory so
            # the *next* submission round hits anywhere in the cluster.
            self.sync_answers()
        return statuses

    def stats(self) -> ClusterStats:
        """Merged statistics: summed totals, per-shard reports, RSS sum/max."""
        merged = ClusterStats()
        for reply in self._broadcast({"op": "stats"}):
            self.health[reply["shard"]].queue_depth = int(
                reply["totals"].get("queue_depth", 0)
            )
            shard_report = {
                "shard": reply["shard"],
                "totals": reply["totals"],
                "peak_rss_kb": reply["peak_rss_kb"],
            }
            merged.per_shard.append(shard_report)
            merged.queries.update(reply["queries"])
            for key, value in reply["totals"].items():
                if key == "simulated_time":
                    merged.totals[key] = max(merged.totals.get(key, 0.0), value)
                else:
                    merged.totals[key] = merged.totals.get(key, 0) + value
            merged.peak_rss_kb_sum += reply["peak_rss_kb"]
            merged.peak_rss_kb_max = max(merged.peak_rss_kb_max, reply["peak_rss_kb"])
        merged.answer_directory_entries = len(self._answer_directory)
        merged.answers_pushed = self.answers_pushed
        merged.health = self.shard_health()
        merged.rebalanced = self.rebalanced
        return merged

    def dashboard(self) -> str:
        """A merged dashboard: cluster header plus every shard's own view."""
        from repro.dashboard.cluster import render_cluster

        stats = self.stats()
        panels = self._broadcast({"op": "dashboard"})
        return render_cluster(stats, panels)

    def fingerprint(self) -> list[dict[str, Any]]:
        """Per-shard run fingerprints, ordered by shard id.

        Each entry is exactly what :func:`repro.testing.chaos.fingerprint_engine`
        computes over that shard's engine, with statuses/rows in that shard's
        admission order — comparable across runs and against an in-process
        engine fed the same queries.
        """
        replies = self._broadcast({"op": "fingerprint"})
        return [reply["fingerprint"] for reply in sorted(replies, key=lambda r: r["shard"])]
