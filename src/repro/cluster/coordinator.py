"""The shard coordinator: N engine processes behind one submission API.

A :class:`ShardCoordinator` partitions queries across ``n_shards`` worker
processes, each running a full :class:`~repro.engine.QurkEngine` built from
the same :class:`~repro.cluster.worker.EngineSpec` (so every shard is an
identical, independent marketplace).  Placement is deterministic — seeded
hash or round-robin by admission order — which is what makes N-shard
same-seed runs fingerprint-stable.

Determinism contract: a 1-shard cluster is byte-identical to the in-process
engine.  The worker's ``drain`` op is exactly the chaos harness's driving
sequence (consecutive ``wait()`` calls share one global ``step()`` loop,
which ``EngineScheduler.drain`` reproduces, followed by
``clock.run_until_idle()``), so its fingerprint matches
:func:`repro.testing.chaos.fingerprint_engine` over an in-process run of the
same queries.

Broadcast ops (``drain``, ``stats``, ``fingerprint``) send to every shard
*before* collecting any reply, so shards genuinely run concurrently — on a
drain of an N-shard cluster all N engines make progress at once.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.messages import PipeTransport
from repro.cluster.placement import Placement, make_placement
from repro.cluster.serialization import decode_rows, encode_query
from repro.cluster.worker import EngineSpec, worker_main
from repro.core.exec.context import QueryConfig
from repro.errors import ClusterError

__all__ = ["ClusterQueryHandle", "ClusterStats", "ShardCoordinator"]


@dataclass(frozen=True)
class ClusterQueryHandle:
    """A pollable reference to a query running on some shard."""

    coordinator: "ShardCoordinator"
    query_id: str
    shard: int

    def status(self) -> dict[str, Any]:
        """Current lifecycle status plus result count and any error text."""
        return self.coordinator.status(self.query_id)

    def poll(self):
        """Result rows that arrived since the previous poll."""
        return self.coordinator.poll(self.query_id)

    def results(self):
        """All result rows produced so far."""
        return self.coordinator.results(self.query_id)

    def describe_plan(self) -> str:
        return self.coordinator.describe_plan(self.query_id)


@dataclass
class ClusterStats:
    """Cross-shard aggregation of engine statistics.

    ``totals`` sums every numeric counter across shards (HIT-batching stats,
    budget spend, scheduler passes); ``per_shard`` keeps each worker's own
    report, including its ``peak_rss_kb``; ``peak_rss_kb_sum`` /
    ``peak_rss_kb_max`` summarize worker memory across the fleet.
    """

    totals: dict[str, float] = field(default_factory=dict)
    per_shard: list[dict[str, Any]] = field(default_factory=list)
    queries: dict[str, dict[str, Any]] = field(default_factory=dict)
    peak_rss_kb_sum: int = 0
    peak_rss_kb_max: int = 0


class _Shard:
    """Coordinator-side record of one worker process."""

    def __init__(self, shard_id: int, process, transport: PipeTransport):
        self.shard_id = shard_id
        self.process = process
        self.transport = transport


class ShardCoordinator:
    """Partition queries across N shard-per-process Qurk engines.

    Parameters
    ----------
    spec:
        Recipe every worker uses to build its engine (same seed → identical
        independent marketplaces).
    n_shards:
        Number of worker processes.
    placement:
        ``"round-robin"`` (default: admission order, ``i % n``) or
        ``"hash"`` (seeded SHA-256 of the query id), or a ready-made
        :class:`~repro.cluster.placement.Placement`.
    seed:
        Seed for hash placement (ignored by round-robin).
    start_method:
        ``multiprocessing`` start method; ``"fork"`` is the cheap default.
    """

    def __init__(
        self,
        spec: EngineSpec,
        n_shards: int = 1,
        *,
        placement: str | Placement = "round-robin",
        seed: int = 0,
        start_method: str = "fork",
    ):
        if n_shards < 1:
            raise ClusterError(f"a cluster needs at least 1 shard, got {n_shards}")
        self.spec = spec
        self.n_shards = n_shards
        self.placement = (
            placement
            if isinstance(placement, Placement)
            else make_placement(placement, n_shards, seed)
        )
        if self.placement.n_shards != n_shards:
            raise ClusterError(
                f"placement covers {self.placement.n_shards} shards, cluster has {n_shards}"
            )
        self._start_method = start_method
        self._shards: list[_Shard] = []
        self._routes: dict[str, int] = {}
        self._admitted = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardCoordinator":
        """Spawn and ping every worker process."""
        if self._shards:
            raise ClusterError("coordinator already started")
        context = multiprocessing.get_context(self._start_method)
        spec_payload = self.spec.payload()
        for shard_id in range(self.n_shards):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_end, spec_payload, shard_id),
                name=f"qurk-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._shards.append(_Shard(shard_id, process, PipeTransport(parent_end)))
        for shard in self._shards:
            self._call(shard.shard_id, {"op": "ping"})
        return self

    def close(self) -> None:
        """Shut every worker down; terminate stragglers."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.transport.send({"op": "shutdown"})
                shard.transport.recv()
            except (ClusterError, OSError, BrokenPipeError):
                pass
            shard.transport.close()
        for shard in self._shards:
            shard.process.join(timeout=5)
            if shard.process.is_alive():  # pragma: no cover - defensive
                shard.process.terminate()
                shard.process.join(timeout=5)

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- messaging ---------------------------------------------------------

    def _call(self, shard_id: int, message: dict[str, Any]) -> dict[str, Any]:
        if not self._shards:
            raise ClusterError("coordinator not started (use start() or a with-block)")
        shard = self._shards[shard_id]
        shard.transport.send(message)
        reply = shard.transport.recv()
        if not reply.get("ok"):
            raise ClusterError(f"shard {shard_id}: {reply.get('error', 'unknown failure')}")
        return reply

    def _broadcast(self, message: dict[str, Any]) -> list[dict[str, Any]]:
        """Send to all shards, then collect — shards overlap their work."""
        if not self._shards:
            raise ClusterError("coordinator not started (use start() or a with-block)")
        for shard in self._shards:
            shard.transport.send(message)
        replies = []
        for shard in self._shards:
            reply = shard.transport.recv()
            if not reply.get("ok"):
                raise ClusterError(
                    f"shard {shard.shard_id}: {reply.get('error', 'unknown failure')}"
                )
            replies.append(reply)
        return replies

    def _route(self, query_id: str) -> int:
        try:
            return self._routes[query_id]
        except KeyError:
            raise ClusterError(f"unknown cluster query {query_id!r}")

    # -- submission --------------------------------------------------------

    def submit(
        self,
        sql: str,
        *,
        budget: float | None = None,
        priority: float = 1.0,
        config: QueryConfig | None = None,
    ) -> ClusterQueryHandle:
        """Place one query on its shard and submit it."""
        return self.submit_many(
            [{"sql": sql, "budget": budget, "priority": priority, "config": config}]
        )[0]

    def submit_many(self, queries: list[dict[str, Any]]) -> list[ClusterQueryHandle]:
        """Submit a batch, grouped by shard to cut IPC round-trips.

        Each entry is ``{"sql": ..., "budget"?, "priority"?, "config"?}``.
        Handles come back in submission order; per-shard admission order
        matches submission order, so placement is reproducible.
        """
        placed: list[tuple[int, str, dict[str, Any]]] = []
        for entry in queries:
            query_id = f"cq{self._admitted + 1}"
            shard_id = self.placement.shard_of(self._admitted, query_id)
            self._admitted += 1
            payload = encode_query(
                entry["sql"],
                query_id=query_id,
                budget=entry.get("budget"),
                priority=entry.get("priority", 1.0),
                config=entry.get("config"),
            )
            placed.append((shard_id, query_id, payload))

        by_shard: dict[int, list[dict[str, Any]]] = {}
        for shard_id, _, payload in placed:
            by_shard.setdefault(shard_id, []).append(payload)
        for shard_id, payloads in by_shard.items():
            self._call(shard_id, {"op": "submit_many", "queries": payloads})

        handles = []
        for shard_id, query_id, _ in placed:
            self._routes[query_id] = shard_id
            handles.append(ClusterQueryHandle(self, query_id, shard_id))
        return handles

    # -- per-query ops -----------------------------------------------------

    def status(self, query_id: str) -> dict[str, Any]:
        reply = self._call(self._route(query_id), {"op": "status", "query_id": query_id})
        return {
            "status": reply["status"],
            "results_emitted": reply["results_emitted"],
            "error": reply["error"],
        }

    def poll(self, query_id: str):
        reply = self._call(self._route(query_id), {"op": "poll", "query_id": query_id})
        return decode_rows(reply["rows"])

    def results(self, query_id: str):
        reply = self._call(self._route(query_id), {"op": "results", "query_id": query_id})
        return decode_rows(reply["rows"])

    def describe_plan(self, query_id: str) -> str:
        reply = self._call(self._route(query_id), {"op": "describe_plan", "query_id": query_id})
        return reply["plan"]

    # -- cluster-wide ops --------------------------------------------------

    def pump(self, *, max_passes: int = 1) -> bool:
        """One bounded scheduling slice on every shard; True if any moved."""
        replies = self._broadcast({"op": "pump", "max_passes": max_passes})
        return any(reply["progressed"] for reply in replies)

    def has_work(self) -> bool:
        replies = self._broadcast({"op": "pump", "max_passes": 0})
        return any(reply["has_work"] for reply in replies)

    def drain(self) -> dict[str, str]:
        """Run every shard to quiescence; statuses keyed by cluster query id."""
        statuses: dict[str, str] = {}
        for reply in self._broadcast({"op": "drain"}):
            statuses.update(reply["statuses"])
        return statuses

    def stats(self) -> ClusterStats:
        """Merged statistics: summed totals, per-shard reports, RSS sum/max."""
        merged = ClusterStats()
        for reply in self._broadcast({"op": "stats"}):
            shard_report = {
                "shard": reply["shard"],
                "totals": reply["totals"],
                "peak_rss_kb": reply["peak_rss_kb"],
            }
            merged.per_shard.append(shard_report)
            merged.queries.update(reply["queries"])
            for key, value in reply["totals"].items():
                if key == "simulated_time":
                    merged.totals[key] = max(merged.totals.get(key, 0.0), value)
                else:
                    merged.totals[key] = merged.totals.get(key, 0) + value
            merged.peak_rss_kb_sum += reply["peak_rss_kb"]
            merged.peak_rss_kb_max = max(merged.peak_rss_kb_max, reply["peak_rss_kb"])
        return merged

    def dashboard(self) -> str:
        """A merged dashboard: cluster header plus every shard's own view."""
        from repro.dashboard.cluster import render_cluster

        stats = self.stats()
        panels = self._broadcast({"op": "dashboard"})
        return render_cluster(stats, panels)

    def fingerprint(self) -> list[dict[str, Any]]:
        """Per-shard run fingerprints, ordered by shard id.

        Each entry is exactly what :func:`repro.testing.chaos.fingerprint_engine`
        computes over that shard's engine, with statuses/rows in that shard's
        admission order — comparable across runs and against an in-process
        engine fed the same queries.
        """
        replies = self._broadcast({"op": "fingerprint"})
        return [reply["fingerprint"] for reply in sorted(replies, key=lambda r: r["shard"])]
