"""Horizontal scale-out: shard-per-process Qurk engines behind a coordinator.

One :class:`~repro.cluster.coordinator.ShardCoordinator` partitions queries
across N worker processes, each running a complete
:class:`~repro.engine.QurkEngine` on its own simulated marketplace.  The
protocol is message-framed JSON (:mod:`repro.cluster.serialization`), spoken
today over multiprocessing pipes and over TCP by the asyncio front end
(:mod:`repro.cluster.server`).
"""

from repro.cluster.coordinator import ClusterQueryHandle, ClusterStats, ShardCoordinator
from repro.cluster.placement import HashPlacement, Placement, RoundRobinPlacement, make_placement
from repro.cluster.worker import EngineSpec, ShardWorker

__all__ = [
    "ShardCoordinator",
    "ClusterQueryHandle",
    "ClusterStats",
    "EngineSpec",
    "ShardWorker",
    "Placement",
    "RoundRobinPlacement",
    "HashPlacement",
    "make_placement",
]
