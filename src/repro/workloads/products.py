"""A products workload for filter / sort / batching / redundancy experiments.

The paper's introduction motivates crowd work with data-processing tasks such
as labelling images and extracting attributes that are "easier to express to
humans than to computers".  This workload provides a table of products whose
colour and visual size are known only to humans (ground truth) while machines
see a noisy feature vector — the substrate for the crowd filter, crowd sort,
batching (E8), redundancy (E5) and Task Model (E6) experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.tasks.spec import (
    ComparisonResponse,
    Parameter,
    RatingResponse,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.crowd.hit import HITItem
from repro.crowd.quality import GoldQuestion
from repro.crowd.oracle import AnswerOracle
from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.workloads.oracles import payload_value

__all__ = ["ProductRecord", "ProductsOracle", "ProductsWorkload"]

_COLORS = ("red", "blue", "green", "black", "white", "yellow")
_CATEGORIES = ("mug", "lamp", "chair", "backpack", "headphones", "kettle", "notebook")


@dataclass(frozen=True)
class ProductRecord:
    """Ground truth for one product."""

    name: str
    category: str
    color: str
    size: float  # latent "visual size" score in [0, 100]
    price: float
    color_features: tuple[float, ...]  # noisy machine-visible colour embedding


class ProductsOracle(AnswerOracle):
    """Workers judge product colour (filter) and relative size (sort)."""

    def __init__(self, records: dict[str, ProductRecord], target_color: str = "red"):
        self._records = records
        self.target_color = target_color

    def _record(self, payload: dict) -> ProductRecord:
        name = payload_value(payload, "name")
        if name is None or name not in self._records:
            raise WorkloadError(f"worker shown unknown product {name!r}")
        return self._records[name]

    def predicate_answer(self, item: HITItem) -> bool:
        return self._record(item.payload).color == self.target_color

    def comparison_answer(self, item: HITItem) -> str:
        left = self._record(item.payload.get("left", {}))
        right = self._record(item.payload.get("right", {}))
        return "left" if left.size >= right.size else "right"

    def rating_answer(self, item: HITItem) -> float:
        record = self._record(item.payload)
        low, high = 1, 7
        return low + (high - low) * record.size / 100.0


@dataclass
class ProductsWorkload:
    """Synthetic products table plus TASK specs for filtering and sorting."""

    n_products: int = 40
    target_color: str = "red"
    target_fraction: float = 0.3
    feature_noise: float = 0.15
    seed: int = 43
    records: list[ProductRecord] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_products < 1:
            raise WorkloadError("need at least one product")
        if not 0.0 < self.target_fraction < 1.0:
            raise WorkloadError("target_fraction must be strictly between 0 and 1")
        rng = random.Random(self.seed)
        color_axes = {color: index for index, color in enumerate(_COLORS)}
        self.records = []
        for index in range(self.n_products):
            if rng.random() < self.target_fraction:
                color = self.target_color
            else:
                color = rng.choice([c for c in _COLORS if c != self.target_color])
            features = [0.0] * len(_COLORS)
            features[color_axes[color]] = 1.0
            noisy = tuple(value + rng.gauss(0.0, self.feature_noise) for value in features)
            self.records.append(
                ProductRecord(
                    name=f"{rng.choice(_CATEGORIES)}-{index:03d}",
                    category=rng.choice(_CATEGORIES),
                    color=color,
                    size=rng.uniform(0.0, 100.0),
                    price=round(rng.uniform(3.0, 120.0), 2),
                    color_features=noisy,
                )
            )

    # -- storage -----------------------------------------------------------------------------

    def schema(self) -> Schema:
        return Schema.of(
            ("name", DataType.STRING),
            ("category", DataType.STRING),
            ("price", DataType.FLOAT),
        )

    def build_table(self, name: str = "products") -> Table:
        """Materialise the products base table (colour/size stay ground truth only)."""
        table = Table(name, self.schema())
        for record in self.records:
            table.insert([record.name, record.category, record.price])
        return table

    def install(self, database: Database, name: str = "products") -> Table:
        table = self.build_table(name)
        database.catalog.register(table, replace=True)
        return table

    # -- crowd wiring --------------------------------------------------------------------------

    def by_name(self) -> dict[str, ProductRecord]:
        return {record.name: record for record in self.records}

    def oracle(self) -> ProductsOracle:
        return ProductsOracle(self.by_name(), target_color=self.target_color)

    def color_filter_spec(
        self, *, price: float = 0.01, assignments: int = 3, batch_size: int = 1
    ) -> TaskSpec:
        """``isColor(name)`` — a Filter task asking whether the product is the target colour."""
        features = self.by_name()

        def extractor(payload: dict) -> list[float] | None:
            name = payload_value(payload, "name")
            record = features.get(name)
            if record is None:
                return None
            return list(record.color_features) + [1.0]

        return TaskSpec(
            name="isTargetColor",
            task_type=TaskType.FILTER,
            text=f"Look at the product called %s. Is it {self.target_color}?",
            response=YesNoResponse(),
            parameters=(Parameter("name", "String"),),
            returns=(),
            price=price,
            assignments=assignments,
            batch_size=batch_size,
            feature_extractor=extractor,
        )

    def size_compare_spec(
        self, *, price: float = 0.01, assignments: int = 3, batch_size: int = 1
    ) -> TaskSpec:
        """``biggerItem(a, b)`` — a Rank task comparing the visual size of two products."""
        return TaskSpec(
            name="biggerItem",
            task_type=TaskType.RANK,
            text="Which of the two products shown looks physically larger?",
            response=ComparisonResponse("A", "B"),
            parameters=(Parameter("left", "Item"), Parameter("right", "Item")),
            returns=(),
            price=price,
            assignments=assignments,
            batch_size=batch_size,
        )

    def size_rating_spec(
        self, *, price: float = 0.01, assignments: int = 3, batch_size: int = 1
    ) -> TaskSpec:
        """``rateSize(item)`` — a Rank task rating the visual size of one product (1-7)."""
        return TaskSpec(
            name="rateSize",
            task_type=TaskType.RANK,
            text="Rate how physically large the product shown is, from 1 (tiny) to 7 (huge).",
            response=RatingResponse((1, 7)),
            parameters=(Parameter("item", "Item"),),
            returns=(),
            price=price,
            assignments=assignments,
            batch_size=batch_size,
        )

    def gold_questions(self, count: int = 6) -> list[GoldQuestion]:
        """Gold-standard probes for ``isTargetColor`` quality control.

        Drawn from the workload's own records (so the oracle can answer
        them), alternating between target-colour and other-colour products to
        catch both yes-spammers and no-spammers.
        """
        targets = [r for r in self.records if r.color == self.target_color]
        others = [r for r in self.records if r.color != self.target_color]
        questions: list[GoldQuestion] = []
        for index in range(count):
            source = targets if index % 2 == 0 and targets else others
            if not source:
                source = targets or others
            record = source[(index // 2) % len(source)]
            questions.append(
                GoldQuestion(
                    prompt=(
                        f"Look at the product called {record.name}. "
                        f"Is it {self.target_color}?"
                    ),
                    payload={"name": record.name, "_task": "isTargetColor"},
                    expected=record.color == self.target_color,
                )
            )
        return questions

    # -- evaluation -------------------------------------------------------------------------------

    def true_target_names(self) -> set[str]:
        """Names of products whose true colour is the target colour."""
        return {record.name for record in self.records if record.color == self.target_color}

    def true_size_order(self) -> list[str]:
        """Product names ordered by true visual size, largest first."""
        return [r.name for r in sorted(self.records, key=lambda r: r.size, reverse=True)]

    def filter_accuracy(self, rows: list[Row], *, name_column: str = "products.name") -> dict[str, float]:
        """Precision/recall of a crowd filter's output against ground truth."""
        truth = self.true_target_names()
        reported = {row[name_column] for row in rows}
        true_positives = len(reported & truth)
        precision = true_positives / len(reported) if reported else 1.0
        recall = true_positives / len(truth) if truth else 1.0
        return {"precision": precision, "recall": recall}

    @staticmethod
    def rank_correlation(true_order: list[str], observed_order: list[str]) -> float:
        """Spearman rank correlation between two orderings of the same names."""
        if len(true_order) < 2 or set(true_order) != set(observed_order):
            return 0.0
        n = len(true_order)
        true_rank = {name: rank for rank, name in enumerate(true_order)}
        observed_rank = {name: rank for rank, name in enumerate(observed_order)}
        d_squared = sum((true_rank[name] - observed_rank[name]) ** 2 for name in true_order)
        return 1.0 - (6.0 * d_squared) / (n * (n * n - 1))
