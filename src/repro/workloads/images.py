"""Synthetic images.

The paper's join demo (Query 2) operates on celebrity photographs.  Real
images are unnecessary to reproduce the system's behaviour: what matters is
that (a) each image depicts a latent *identity* a human can recognise and
(b) a machine can only observe a noisy *feature vector*, so the learned Task
Model and feature-based pre-filters are approximations rather than oracles.
:class:`SyntheticImage` captures exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = ["SyntheticImage", "ImageGenerator"]


@dataclass(frozen=True)
class SyntheticImage:
    """A stand-in for a photograph.

    Parameters
    ----------
    image_id:
        Unique identifier (e.g. ``celeb-12-a``).
    identity:
        The latent person/subject depicted.  Humans (the simulated workers)
        judge identity directly; Qurk never reads this field.
    features:
        A noisy numeric embedding of the image, available to machines (the
        Task Model, pre-filters).  Images of the same identity have nearby
        feature vectors but are not identical.
    caption:
        Human-readable description used in HIT HTML.
    """

    image_id: str
    identity: int
    features: tuple[float, ...]
    caption: str = ""

    def distance(self, other: "SyntheticImage") -> float:
        """Euclidean distance between two images' feature vectors."""
        if len(self.features) != len(other.features):
            raise WorkloadError("cannot compare images with different feature dimensions")
        return sum((a - b) ** 2 for a, b in zip(self.features, other.features)) ** 0.5


class ImageGenerator:
    """Generates synthetic images with controllable feature noise.

    Each identity has a prototype feature vector drawn uniformly from the unit
    hypercube; individual photos of that identity add Gaussian noise with
    standard deviation ``noise``.  Lower noise makes feature-based shortcuts
    (pre-filters, the Task Model) more effective — a knob experiments sweep.
    """

    def __init__(self, *, dimensions: int = 6, noise: float = 0.08, seed: int = 11):
        if dimensions < 1:
            raise WorkloadError("feature dimensionality must be >= 1")
        if noise < 0:
            raise WorkloadError("feature noise must be non-negative")
        self.dimensions = dimensions
        self.noise = noise
        self._rng = random.Random(seed)
        self._prototypes: dict[int, tuple[float, ...]] = {}

    def prototype(self, identity: int) -> tuple[float, ...]:
        """The (stable) prototype feature vector for an identity."""
        if identity not in self._prototypes:
            self._prototypes[identity] = tuple(
                self._rng.random() for _ in range(self.dimensions)
            )
        return self._prototypes[identity]

    def image_of(self, identity: int, *, image_id: str, caption: str = "") -> SyntheticImage:
        """Generate one photo of ``identity``."""
        prototype = self.prototype(identity)
        features = tuple(value + self._rng.gauss(0.0, self.noise) for value in prototype)
        return SyntheticImage(
            image_id=image_id,
            identity=identity,
            features=features,
            caption=caption or f"photo of subject {identity}",
        )
