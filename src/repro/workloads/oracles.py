"""Oracle helpers shared by the workload generators.

Workload oracles read values out of HIT item payloads.  Depending on which
operator produced the task, a value may sit at the top level of the payload
(``payload["image"]``) or inside the serialised row (``payload["row"]
["celebrities.image"]``), and column names may or may not be table-qualified.
:func:`payload_value` hides that, and :class:`CompositeOracle` lets one
platform instance serve several task types at once (a demo session runs
Query 1 and Query 2 side by side).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.crowd.hit import FormField, HITItem
from repro.crowd.oracle import AnswerOracle
from repro.errors import WorkloadError

__all__ = ["payload_value", "CompositeOracle"]


def payload_value(payload: Mapping[str, Any], column: str, default: Any = None) -> Any:
    """Find ``column`` in a task payload, tolerating row nesting and qualifiers."""
    if column in payload:
        return payload[column]
    row = payload.get("row")
    if isinstance(row, Mapping):
        if column in row:
            return row[column]
        suffix = f".{column}"
        for key, value in row.items():
            if key.endswith(suffix):
                return value
    suffix = f".{column}"
    for key, value in payload.items():
        if isinstance(key, str) and key.endswith(suffix):
            return value
    return default


class CompositeOracle(AnswerOracle):
    """Dispatches oracle calls to per-task oracles based on the item's task tag.

    The HIT compiler tags every item payload with ``_task`` (the task spec
    name); the composite looks up the matching oracle.  An optional default
    oracle handles untagged items.
    """

    def __init__(self, oracles: Mapping[str, AnswerOracle], default: AnswerOracle | None = None):
        self._oracles = dict(oracles)
        self._default = default

    def register(self, task_name: str, oracle: AnswerOracle) -> None:
        """Add or replace the oracle for one task name."""
        self._oracles[task_name] = oracle

    def _oracle_for(self, item: HITItem) -> AnswerOracle:
        task_name = item.payload.get("_task")
        oracle = self._oracles.get(task_name)
        if oracle is None:
            oracle = self._default
        if oracle is None:
            raise WorkloadError(f"no oracle registered for task {task_name!r}")
        return oracle

    def form_answer(self, item: HITItem, field: FormField) -> str:
        return self._oracle_for(item).form_answer(item, field)

    def predicate_answer(self, item: HITItem) -> bool:
        return self._oracle_for(item).predicate_answer(item)

    def pair_matches(self, left: HITItem, right: HITItem) -> bool:
        return self._oracle_for(left).pair_matches(left, right)

    def comparison_answer(self, item: HITItem) -> str:
        return self._oracle_for(item).comparison_answer(item)

    def rating_answer(self, item: HITItem) -> float:
        return self._oracle_for(item).rating_answer(item)

    def plausible_wrong_form_answer(self, item: HITItem, field: FormField) -> str:
        return self._oracle_for(item).plausible_wrong_form_answer(item, field)
