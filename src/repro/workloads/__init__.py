"""Synthetic workload generators: data, ground truth, oracles and TASK specs.

Each workload bundles (a) the base tables a query runs over, (b) the ground
truth simulated workers consult, (c) the TASK definitions from the paper, and
(d) scoring helpers used by tests and the benchmark harness.
"""

from repro.workloads.celebrities import (
    CelebrityOracle,
    CelebrityWorkload,
    SAMEPERSON_TASK_TEXT,
    pair_feature_extractor,
)
from repro.workloads.companies import (
    CompaniesOracle,
    CompaniesWorkload,
    CompanyRecord,
    FINDCEO_TASK_TEXT,
)
from repro.workloads.images import ImageGenerator, SyntheticImage
from repro.workloads.oracles import CompositeOracle, payload_value
from repro.workloads.products import ProductRecord, ProductsOracle, ProductsWorkload

__all__ = [
    "SyntheticImage",
    "ImageGenerator",
    "CompositeOracle",
    "payload_value",
    "CompaniesWorkload",
    "CompaniesOracle",
    "CompanyRecord",
    "FINDCEO_TASK_TEXT",
    "CelebrityWorkload",
    "CelebrityOracle",
    "SAMEPERSON_TASK_TEXT",
    "pair_feature_extractor",
    "ProductsWorkload",
    "ProductsOracle",
    "ProductRecord",
]
