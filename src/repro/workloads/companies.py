"""The companies workload (Query 1 of the paper).

"Query 1 finds the CEO's name and phone number for a list of companies."
This module generates a synthetic ``companies`` table together with the
ground-truth directory of CEOs and phone numbers that simulated workers
consult, the ``findCEO`` TASK definition, and scoring helpers used by tests
and benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.tasks.spec import FormResponse, Parameter, ReturnField, TaskSpec, TaskType
from repro.crowd.hit import FormField, HITItem
from repro.crowd.oracle import AnswerOracle
from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.workloads.oracles import payload_value

__all__ = ["CompanyRecord", "CompaniesOracle", "CompaniesWorkload", "FINDCEO_TASK_TEXT"]

_INDUSTRIES = (
    "software",
    "manufacturing",
    "retail",
    "biotech",
    "finance",
    "energy",
    "logistics",
    "media",
)

_FIRST_NAMES = (
    "Alex", "Blair", "Casey", "Dana", "Evan", "Frankie", "Gray", "Harper",
    "Indra", "Jordan", "Kai", "Lee", "Morgan", "Noor", "Oak", "Parker",
    "Quinn", "Riley", "Sasha", "Tatum",
)

_LAST_NAMES = (
    "Adler", "Bennett", "Chen", "Diaz", "Ellis", "Fischer", "Gupta", "Hale",
    "Ivanov", "Jensen", "Khan", "Larsen", "Moreau", "Nakamura", "Okafor",
    "Price", "Quispe", "Rossi", "Singh", "Tanaka",
)

#: The Text field of Task 1 in the paper.
FINDCEO_TASK_TEXT = (
    "Find the CEO and the CEO's phone number for the company %s"
)


@dataclass(frozen=True)
class CompanyRecord:
    """Ground truth for one company."""

    name: str
    industry: str
    employees: int
    ceo: str
    phone: str


class CompaniesOracle(AnswerOracle):
    """Simulated-worker knowledge of the company directory."""

    def __init__(self, directory: dict[str, CompanyRecord], *, seed: int = 23):
        self._directory = directory
        self._rng = random.Random(seed)

    def _record(self, item: HITItem) -> CompanyRecord:
        company = payload_value(item.payload, "companyName") or payload_value(
            item.payload, "company"
        )
        if company is None or company not in self._directory:
            raise WorkloadError(f"worker shown unknown company {company!r}")
        return self._directory[company]

    def form_answer(self, item: HITItem, form_field: FormField) -> str:
        record = self._record(item)
        if form_field.name.lower() == "ceo":
            return record.ceo
        if form_field.name.lower() == "phone":
            return record.phone
        raise WorkloadError(f"unexpected findCEO form field {form_field.name!r}")

    def plausible_wrong_form_answer(self, item: HITItem, form_field: FormField) -> str:
        # A careless worker confuses the company with another one in the
        # directory (or just types a placeholder).
        other = self._rng.choice(list(self._directory.values()))
        if form_field.name.lower() == "ceo":
            return other.ceo
        if form_field.name.lower() == "phone":
            return other.phone
        return "unknown"


@dataclass
class CompaniesWorkload:
    """Synthetic companies table plus ground truth, TASK spec and scoring.

    Parameters
    ----------
    n_companies:
        Number of companies to generate.
    seed:
        Seed controlling names, sizes and ground-truth CEOs.
    """

    n_companies: int = 50
    seed: int = 17
    records: list[CompanyRecord] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_companies < 1:
            raise WorkloadError("need at least one company")
        rng = random.Random(self.seed)
        self.records = []
        for index in range(self.n_companies):
            first = rng.choice(_FIRST_NAMES)
            last = rng.choice(_LAST_NAMES)
            name = f"{rng.choice(_LAST_NAMES)} {rng.choice(('Corp', 'Inc', 'Labs', 'Group'))} {index}"
            phone = f"617-555-{rng.randint(0, 9999):04d}"
            self.records.append(
                CompanyRecord(
                    name=name,
                    industry=rng.choice(_INDUSTRIES),
                    employees=rng.randint(5, 20_000),
                    ceo=f"{first} {last}",
                    phone=phone,
                )
            )

    # -- storage ----------------------------------------------------------------------

    def schema(self) -> Schema:
        return Schema.of(
            ("companyName", DataType.STRING),
            ("industry", DataType.STRING),
            ("employees", DataType.INTEGER),
        )

    def build_table(self, name: str = "companies") -> Table:
        """Materialise the companies base table."""
        table = Table(name, self.schema())
        for record in self.records:
            table.insert([record.name, record.industry, record.employees])
        return table

    def install(self, database: Database, name: str = "companies") -> Table:
        """Create and register the companies table in ``database``."""
        table = self.build_table(name)
        database.catalog.register(table, replace=True)
        return table

    # -- crowd wiring -----------------------------------------------------------------------

    def directory(self) -> dict[str, CompanyRecord]:
        """Ground-truth directory keyed by company name."""
        return {record.name: record for record in self.records}

    def oracle(self) -> CompaniesOracle:
        """The oracle simulated workers consult for findCEO HITs."""
        return CompaniesOracle(self.directory(), seed=self.seed + 1)

    def findceo_spec(
        self,
        *,
        price: float = 0.02,
        assignments: int = 3,
        batch_size: int = 1,
    ) -> TaskSpec:
        """The Task 1 definition from the paper as a :class:`TaskSpec`."""
        return TaskSpec(
            name="findCEO",
            task_type=TaskType.QUESTION,
            text=FINDCEO_TASK_TEXT,
            response=FormResponse((("CEO", "String"), ("Phone", "String"))),
            parameters=(Parameter("companyName", "String"),),
            returns=(ReturnField("CEO", "String"), ReturnField("Phone", "String")),
            price=price,
            assignments=assignments,
            batch_size=batch_size,
        )

    # -- evaluation ------------------------------------------------------------------------------

    def score_results(self, rows: list[Row], *, company_column: str, ceo_column: str) -> float:
        """Fraction of result rows whose CEO matches the ground truth."""
        if not rows:
            return 0.0
        directory = self.directory()
        correct = 0
        for row in rows:
            record = directory.get(row[company_column])
            if record is not None and row[ceo_column] == record.ceo:
                correct += 1
        return correct / len(rows)
