"""The celebrities / spotted-stars workload (Query 2 of the paper).

"Suppose we have a celebrities table with pictures of celebrities, and a
spottedstars table with submitted celebrity pictures.  We want to identify
each submitted celebrity."  This module generates the two tables of synthetic
images, the ground-truth match relation, the ``samePerson`` TASK definition
(Task 2), worker-facing payload functions, a feature-distance pre-filter, and
scoring helpers (precision / recall of the crowd join).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.tasks.spec import JoinColumnsResponse, Parameter, TaskSpec, TaskType, YesNoResponse
from repro.crowd.hit import HITItem
from repro.crowd.oracle import AnswerOracle
from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.workloads.images import ImageGenerator, SyntheticImage
from repro.workloads.oracles import payload_value

__all__ = ["CelebrityOracle", "CelebrityWorkload", "SAMEPERSON_TASK_TEXT"]

_CELEBRITY_NAMES = (
    "Ada Starlight", "Bo Ricci", "Cleo Vance", "Dev Winters", "Echo Blaze",
    "Fay Monroe", "Gio Sterling", "Hana Frost", "Iris Noble", "Jax Rivera",
    "Kit Aurora", "Lux Hart", "Mia Falcon", "Nico Storm", "Opal Reign",
    "Pax Jett", "Quin Ember", "Rio Sol", "Sky Valen", "Tess Wilde",
    "Uma Crest", "Vik Onyx", "Wren Lark", "Xan Pierce", "Yara Dune", "Zed Colt",
)

#: The Text field of Task 2 in the paper.
SAMEPERSON_TASK_TEXT = (
    "Drag a picture of any <b>Celebrity</b> in the left column to their "
    "matching picture in the <b>Spotted Star</b> column to the right."
)


def _image_from(payload: dict, column: str) -> SyntheticImage:
    value = payload_value(payload, column)
    if value is None:
        value = payload_value(payload, "image")
    if not isinstance(value, SyntheticImage):
        raise WorkloadError("samePerson HIT item does not carry a synthetic image")
    return value


class CelebrityOracle(AnswerOracle):
    """Workers recognise whether two photos show the same person."""

    def pair_matches(self, left: HITItem, right: HITItem) -> bool:
        return _image_from(left.payload, "image").identity == _image_from(
            right.payload, "image"
        ).identity

    def predicate_answer(self, item: HITItem) -> bool:
        left = _image_from(item.payload.get("left", {}), "image")
        right = _image_from(item.payload.get("right", {}), "image")
        return left.identity == right.identity


@dataclass
class CelebrityWorkload:
    """Two image tables with a known match relation.

    Parameters
    ----------
    n_celebrities:
        Rows in the ``celebrities`` table (one photo per distinct celebrity).
    n_spotted:
        Rows in the ``spottedstars`` table.
    match_fraction:
        Fraction of spotted photos that actually show one of the celebrities;
        the rest depict unknown people and should join with nothing.
    feature_noise:
        Noise of the synthetic image embeddings (drives how useful the
        machine-visible features are for pre-filters and the Task Model).
    seed:
        Master seed for the workload.
    """

    n_celebrities: int = 20
    n_spotted: int = 20
    match_fraction: float = 0.7
    feature_noise: float = 0.08
    seed: int = 31
    celebrity_images: list[tuple[str, SyntheticImage]] = field(init=False)
    spotted_images: list[tuple[int, SyntheticImage]] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_celebrities < 1 or self.n_spotted < 1:
            raise WorkloadError("both tables need at least one row")
        if not 0.0 <= self.match_fraction <= 1.0:
            raise WorkloadError("match_fraction must be in [0, 1]")
        rng = random.Random(self.seed)
        generator = ImageGenerator(noise=self.feature_noise, seed=self.seed + 1)
        self.celebrity_images = []
        for index in range(self.n_celebrities):
            name = _CELEBRITY_NAMES[index % len(_CELEBRITY_NAMES)]
            if index >= len(_CELEBRITY_NAMES):
                name = f"{name} {index // len(_CELEBRITY_NAMES) + 1}"
            image = generator.image_of(index, image_id=f"celeb-{index}", caption=name)
            self.celebrity_images.append((name, image))
        self.spotted_images = []
        for index in range(self.n_spotted):
            if rng.random() < self.match_fraction:
                identity = rng.randrange(self.n_celebrities)
            else:
                identity = self.n_celebrities + index  # an unknown person
            image = generator.image_of(
                identity, image_id=f"spot-{index}", caption=f"submitted photo {index}"
            )
            self.spotted_images.append((index, image))

    # -- storage --------------------------------------------------------------------------

    def celebrities_schema(self) -> Schema:
        return Schema.of(("name", DataType.STRING), ("image", DataType.IMAGE))

    def spotted_schema(self) -> Schema:
        return Schema.of(("id", DataType.INTEGER), ("image", DataType.IMAGE))

    def build_tables(self) -> tuple[Table, Table]:
        """Materialise the ``celebrities`` and ``spottedstars`` tables."""
        celebrities = Table("celebrities", self.celebrities_schema())
        for name, image in self.celebrity_images:
            celebrities.insert([name, image])
        spotted = Table("spottedstars", self.spotted_schema())
        for spot_id, image in self.spotted_images:
            spotted.insert([spot_id, image])
        return celebrities, spotted

    def install(self, database: Database) -> tuple[Table, Table]:
        """Create and register both tables in ``database``."""
        celebrities, spotted = self.build_tables()
        database.catalog.register(celebrities, replace=True)
        database.catalog.register(spotted, replace=True)
        return celebrities, spotted

    # -- crowd wiring -----------------------------------------------------------------------

    def oracle(self) -> CelebrityOracle:
        """The oracle simulated workers consult for samePerson HITs."""
        return CelebrityOracle()

    def sameperson_spec(
        self,
        *,
        interface: str = "columns",
        price: float = 0.02,
        assignments: int = 3,
        left_per_hit: int = 3,
        right_per_hit: int = 3,
        batch_size: int = 1,
    ) -> TaskSpec:
        """The Task 2 definition from the paper as a :class:`TaskSpec`.

        ``interface`` chooses the response type: ``"columns"`` gives the
        two-column JoinColumns interface of Figure 3, ``"pairs"`` a plain
        yes/no question per pair.
        """
        if interface == "columns":
            response = JoinColumnsResponse(
                "Celebrity", "Spotted Star", left_per_hit=left_per_hit, right_per_hit=right_per_hit
            )
        elif interface == "pairs":
            response = YesNoResponse()
        else:
            raise WorkloadError(f"unknown samePerson interface {interface!r}")
        return TaskSpec(
            name="samePerson",
            task_type=TaskType.JOIN_PREDICATE,
            text=SAMEPERSON_TASK_TEXT,
            response=response,
            parameters=(Parameter("celebs", "Image[]"), Parameter("spotted", "Image[]")),
            returns=(),
            price=price,
            assignments=assignments,
            batch_size=batch_size,
            feature_extractor=pair_feature_extractor,
        )

    # -- payload / prefilter helpers -------------------------------------------------------------

    @staticmethod
    def left_payload(row: Row) -> dict:
        """Payload for a celebrities row: the image plus a display label."""
        image = row["image"]
        return {"image": image, "label": row["name"]}

    @staticmethod
    def right_payload(row: Row) -> dict:
        """Payload for a spottedstars row."""
        image = row["image"]
        return {"image": image, "label": f"spotted #{row['id']}"}

    @staticmethod
    def feature_prefilter(threshold: float = 0.6):
        """A machine pre-filter: skip pairs whose feature distance exceeds ``threshold``."""

        def prefilter(left: Row, right: Row) -> bool:
            return left["image"].distance(right["image"]) <= threshold

        return prefilter

    # -- evaluation ----------------------------------------------------------------------------------

    def true_matches(self) -> set[tuple[str, int]]:
        """Ground-truth (celebrity name, spotted id) pairs."""
        matches = set()
        for name, celeb_image in self.celebrity_images:
            for spot_id, spot_image in self.spotted_images:
                if celeb_image.identity == spot_image.identity:
                    matches.add((name, spot_id))
        return matches

    def cross_product_size(self) -> int:
        """Size of the naive cross product (the cost the paper warns about)."""
        return self.n_celebrities * self.n_spotted

    def score_results(
        self, rows: list[Row], *, name_column: str = "celebrities.name", id_column: str = "spottedstars.id"
    ) -> dict[str, float]:
        """Precision/recall/F1 of crowd join output against ground truth."""
        truth = self.true_matches()
        reported = {(row[name_column], row[id_column]) for row in rows}
        true_positives = len(reported & truth)
        precision = true_positives / len(reported) if reported else 1.0
        recall = true_positives / len(truth) if truth else 1.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return {"precision": precision, "recall": recall, "f1": f1, "matches": float(len(reported))}


def pair_feature_extractor(payload: dict) -> list[float] | None:
    """Feature vector for the Task Model: |left - right| per dimension plus distance."""
    left = payload.get("left", {})
    right = payload.get("right", {})
    try:
        left_image = _image_from(left, "image")
        right_image = _image_from(right, "image")
    except WorkloadError:
        return None
    diffs = [abs(a - b) for a, b in zip(left_image.features, right_image.features)]
    return diffs + [left_image.distance(right_image), 1.0]
