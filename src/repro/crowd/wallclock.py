"""A wall-clock adapter with the :class:`SimulationClock` interface.

The discrete-event :class:`~repro.crowd.clock.SimulationClock` stays the
test/bench substrate — it is what makes same-seed runs byte-identical — but a
coordinator serving live traffic needs simulated delays to take real time.
:class:`WallClock` subclasses the simulation clock and re-anchors *advancing*
to the host's monotonic clock: ``advance_to(t)`` sleeps until wall time
reaches ``t`` and then fires every due event, ``run_next()`` sleeps until the
earliest pending event is actually due.  Scheduling, cancellation, heap
compaction and FIFO tie-breaking are inherited unchanged, so an engine built
on a :class:`WallClock` runs exactly the same event sequence as one built on
a :class:`SimulationClock` — just at real-time speed.

``time_source`` and ``sleep`` are injectable so tests can drive a wall clock
deterministically (or with microscopic real delays).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.crowd.clock import SimulationClock
from repro.errors import CrowdError

__all__ = ["WallClock"]


class WallClock(SimulationClock):
    """A :class:`SimulationClock` whose time is anchored to real time.

    ``now`` reports seconds elapsed on the host's monotonic clock since
    construction (plus ``start``); advancing to a future instant blocks the
    calling thread until that instant arrives.  The clock still never moves
    backwards, and events scheduled for the same instant still fire in
    scheduling order.
    """

    #: Sleep in bounded slices so a long wait stays interruptible (a signal,
    #: a ``KeyboardInterrupt``) instead of one multi-minute ``sleep``.
    MAX_SLEEP_SLICE = 0.5

    def __init__(
        self,
        start: float = 0.0,
        *,
        time_source: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        super().__init__(start)
        self._time_source = time_source
        self._sleep = sleep
        self._epoch = time_source() - start

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds elapsed on the wall since the clock was constructed."""
        wall = self._time_source() - self._epoch
        if wall > self._now:
            self._now = wall
        return self._now

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback, *, label: str = ""):
        self.now  # sync _now so "in the past" is judged against the wall
        return super().schedule_at(time, callback, label=label)

    # -- advancing -----------------------------------------------------------

    def _sleep_until(self, target: float) -> None:
        while True:
            remaining = target - (self._time_source() - self._epoch)
            if remaining <= 0:
                return
            self._sleep(min(remaining, self.MAX_SLEEP_SLICE))

    def advance_to(self, time: float) -> int:
        """Block until wall time reaches ``time``, then fire every due event.

        Wall time keeps moving while we sleep, so the batch fired covers
        everything due by the instant the sleep returns — an event whose
        deadline passed in real time is due, whatever target the caller
        named.
        """
        if time < self.now:
            raise CrowdError(f"cannot rewind clock from {self._now:.3f} to {time:.3f}")
        self._sleep_until(time)
        return super().advance_to(max(time, self._time_source() - self._epoch))

    def run_next(self) -> bool:
        """Sleep until the earliest pending event is due, then fire it."""
        when = self.next_event_time()
        if when is None:
            return False
        self.advance_to(max(when, self.now))
        return True

    def __repr__(self) -> str:
        return f"WallClock(now={self.now:.3f}s, pending={self.pending_events})"
