"""Ground-truth oracles consulted by simulated workers.

Real turkers answer HITs using knowledge of the world (what a celebrity looks
like, who a company's CEO is).  In the simulation, that knowledge lives in an
:class:`AnswerOracle` built by the workload generator.  Workers ask the oracle
for the *true* answer and then perturb it according to their behaviour model;
the Qurk query processor itself never sees the oracle, so the separation of
concerns matches the real system.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.crowd.hit import FormField, HITItem
from repro.errors import WorkerError

__all__ = ["AnswerOracle", "CallbackOracle"]


class AnswerOracle:
    """Interface workloads implement to give simulated workers world knowledge.

    Only the methods relevant to the workload's HIT interfaces need to be
    overridden; the defaults raise so that a misconfigured experiment fails
    loudly instead of producing silently meaningless answers.
    """

    def form_answer(self, item: HITItem, field: FormField) -> str:
        """True value of ``field`` for a QUESTION_FORM item."""
        raise WorkerError(f"oracle cannot answer form field {field.name!r}")

    def predicate_answer(self, item: HITItem) -> bool:
        """True yes/no answer for a BINARY_CHOICE or JOIN_PAIRS item."""
        raise WorkerError(f"oracle cannot answer predicate item {item.item_id!r}")

    def pair_matches(self, left: HITItem, right: HITItem) -> bool:
        """Whether a left/right pair matches in a JOIN_COLUMNS interface."""
        raise WorkerError("oracle cannot answer join-column matches")

    def comparison_answer(self, item: HITItem) -> str:
        """Which side ('left' or 'right') ranks higher for a COMPARISON item."""
        raise WorkerError(f"oracle cannot answer comparison item {item.item_id!r}")

    def rating_answer(self, item: HITItem) -> float:
        """True numeric rating for a RATING item."""
        raise WorkerError(f"oracle cannot answer rating item {item.item_id!r}")

    def plausible_wrong_form_answer(self, item: HITItem, field: FormField) -> str:
        """A wrong-but-plausible value a careless worker might type."""
        return "unknown"


class CallbackOracle(AnswerOracle):
    """An oracle assembled from plain callables.

    Workload modules usually subclass :class:`AnswerOracle`, but tests and
    small examples can wire up an oracle from lambdas::

        oracle = CallbackOracle(predicate=lambda item: item.payload["price"] > 10)
    """

    def __init__(
        self,
        *,
        form: Callable[[HITItem, FormField], str] | None = None,
        predicate: Callable[[HITItem], bool] | None = None,
        pair: Callable[[HITItem, HITItem], bool] | None = None,
        comparison: Callable[[HITItem], str] | None = None,
        rating: Callable[[HITItem], float] | None = None,
        wrong_form: Callable[[HITItem, FormField], str] | None = None,
    ) -> None:
        self._form = form
        self._predicate = predicate
        self._pair = pair
        self._comparison = comparison
        self._rating = rating
        self._wrong_form = wrong_form

    def form_answer(self, item: HITItem, field: FormField) -> str:
        if self._form is None:
            return super().form_answer(item, field)
        return self._form(item, field)

    def predicate_answer(self, item: HITItem) -> bool:
        if self._predicate is None:
            return super().predicate_answer(item)
        return bool(self._predicate(item))

    def pair_matches(self, left: HITItem, right: HITItem) -> bool:
        if self._pair is None:
            return super().pair_matches(left, right)
        return bool(self._pair(left, right))

    def comparison_answer(self, item: HITItem) -> str:
        if self._comparison is None:
            return super().comparison_answer(item)
        answer = self._comparison(item)
        if answer not in ("left", "right"):
            raise WorkerError(f"comparison oracle must return 'left' or 'right', got {answer!r}")
        return answer

    def rating_answer(self, item: HITItem) -> float:
        if self._rating is None:
            return super().rating_answer(item)
        return float(self._rating(item))

    def plausible_wrong_form_answer(self, item: HITItem, field: FormField) -> str:
        if self._wrong_form is None:
            return super().plausible_wrong_form_answer(item, field)
        return self._wrong_form(item, field)


def _unused(*_args: Any) -> None:  # pragma: no cover - keeps linters quiet
    return None
