"""Fault profiles: deterministic marketplace misbehaviour for the simulator.

The seed reproduction models a cooperative marketplace: every scheduled
assignment is eventually submitted and every HIT completes.  Real MTurk is
not like that — workers return assignments, HITs expire before anyone picks
them up, submissions arrive after the deadline, and flaky clients re-post the
same form twice.  A :class:`FaultProfile` switches those behaviours on in the
:class:`~repro.crowd.mturk.MTurkSimulator`, driven by a dedicated seeded
random stream so every chaos run is bit-for-bit reproducible.

The default profile is inert: with faults disabled the simulator never draws
from the fault stream, so pre-existing runs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrowdError

__all__ = ["FaultProfile"]


@dataclass(frozen=True)
class FaultProfile:
    """Knobs for marketplace fault injection (all off by default).

    Parameters
    ----------
    seed:
        Seed of the fault stream.  Fault draws are interleaved with the
        simulation in a fixed order, so equal seeds give equal runs.
    abandonment_rate:
        Probability that a worker who accepted an assignment returns it
        without submitting.  The simulator recruits one replacement worker
        per abandonment (as the real marketplace does) when the HIT is still
        open.
    duplicate_rate:
        Probability that a submitted assignment is re-submitted shortly
        after (double click / client retry).  The platform must ignore the
        duplicate: no second payment, no second delivery.
    late_rate:
        Probability that a submission is delayed until after the HIT's
        deadline.  Late work is not paid and not delivered.
    pickup_slowdown:
        Multiplier on marketplace pick-up delays.  Combined with a short
        ``hit_lifetime`` this starves HITs so they expire before (or while)
        being worked on.
    hit_lifetime:
        Override for the lifetime of every posted HIT, in simulated seconds
        (None keeps the platform default of 24 h).  Expired HITs fire the
        simulator's expiry listeners so the engine can requeue their tasks.
    congestion_per_open_hit:
        Marketplace congestion: each already-open HIT stretches a new
        assignment's pick-up delay by this fraction (delay is scaled by
        ``1 + rate * open_hits``).  Models the saturation a burst of queries
        causes on a finite worker pool — the overload benchmarks use it to
        make flooding the market actively harmful.
    """

    seed: int = 0
    abandonment_rate: float = 0.0
    duplicate_rate: float = 0.0
    late_rate: float = 0.0
    pickup_slowdown: float = 1.0
    hit_lifetime: float | None = None
    congestion_per_open_hit: float = 0.0

    def __post_init__(self) -> None:
        for name in ("abandonment_rate", "duplicate_rate", "late_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CrowdError(f"{name} must be in [0, 1], got {value}")
        if self.pickup_slowdown <= 0:
            raise CrowdError(f"pickup_slowdown must be positive, got {self.pickup_slowdown}")
        if self.hit_lifetime is not None and self.hit_lifetime <= 0:
            raise CrowdError(f"hit_lifetime must be positive, got {self.hit_lifetime}")
        if self.congestion_per_open_hit < 0:
            raise CrowdError(
                f"congestion_per_open_hit must be >= 0, got {self.congestion_per_open_hit}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault behaviour differs from the cooperative default."""
        return (
            self.abandonment_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.late_rate > 0.0
            or self.pickup_slowdown != 1.0
            or self.hit_lifetime is not None
            or self.congestion_per_open_hit > 0.0
        )

    def describe(self) -> str:
        """Compact rendering for dashboards and scenario logs."""
        if not self.enabled:
            return "faults off"
        parts = []
        if self.abandonment_rate:
            parts.append(f"abandon {self.abandonment_rate:.0%}")
        if self.duplicate_rate:
            parts.append(f"duplicate {self.duplicate_rate:.0%}")
        if self.late_rate:
            parts.append(f"late {self.late_rate:.0%}")
        if self.pickup_slowdown != 1.0:
            parts.append(f"pickup x{self.pickup_slowdown:g}")
        if self.hit_lifetime is not None:
            parts.append(f"lifetime {self.hit_lifetime:,.0f}s")
        if self.congestion_per_open_hit:
            parts.append(f"congestion {self.congestion_per_open_hit:g}/open HIT")
        return ", ".join(parts)
