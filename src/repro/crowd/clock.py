"""Discrete-event simulated clock.

Everything latency-related in the crowd substrate (HIT acceptance delays,
per-item work time, platform polling) is expressed in *simulated seconds* on a
:class:`SimulationClock`.  The executor advances the clock while HITs are
outstanding, which makes end-to-end latency experiments (E10) deterministic
and fast regardless of how long real turkers would take.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import CrowdError

__all__ = ["SimulationClock", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """An event scheduled on the simulation clock.

    Ordering is by ``(time, sequence)`` so that events scheduled for the same
    instant fire in scheduling order (FIFO), which keeps runs deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _clock: "SimulationClock | None" = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._clock is not None:
            self._clock._note_cancelled()


class SimulationClock:
    """A heap-based discrete-event scheduler.

    The clock never moves backwards.  Callbacks may schedule further events;
    those are honoured as long as they are not in the past.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._events: list[ScheduledEvent] = []
        self._sequence = itertools.count()
        self._fired = 0
        #: Cancelled events still sitting in the heap.  Kept exact so
        #: :attr:`pending_events` is O(1) and the heap can be compacted
        #: lazily once cancellations dominate.
        self._cancelled_in_heap = 0

    # -- inspection ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events that have not yet fired or been cancelled."""
        return len(self._events) - self._cancelled_in_heap

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._fired

    def next_event_time(self) -> float | None:
        """Time of the earliest pending event, or None if the queue is empty."""
        while self._events and self._events[0].cancelled:
            heapq.heappop(self._events)._clock = None
            self._cancelled_in_heap -= 1
        return self._events[0].time if self._events else None

    # -- cancellation bookkeeping --------------------------------------------

    #: Compact only once this many events are cancelled — tiny heaps are
    #: cheaper to pop through than to rebuild.
    COMPACT_MIN_CANCELLED = 16
    #: Absolute ceiling on dead heap entries: compact regardless of the
    #: cancelled fraction once this many accumulate, so a long-lived engine
    #: with a large live heap and a slow trickle of far-future cancellations
    #: doesn't hold dead events (and their callback closures) indefinitely.
    COMPACT_MAX_CANCELLED = 4096

    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel`; compacts when bloated.

        Mass cancellations (a finished query abandoning speculative HITs)
        used to leave dead entries in the heap until their time came up,
        bloating every push/pop.  Rebuild the heap from the live events once
        more than half of it is cancelled, or — whatever the fraction — once
        :attr:`COMPACT_MAX_CANCELLED` dead entries have accumulated.
        """
        self._cancelled_in_heap += 1
        cancelled = self._cancelled_in_heap
        if (
            cancelled * 2 > len(self._events) and cancelled > self.COMPACT_MIN_CANCELLED
        ) or cancelled >= self.COMPACT_MAX_CANCELLED:
            self._events = [event for event in self._events if not event.cancelled]
            heapq.heapify(self._events)
            self._cancelled_in_heap = 0

    # -- scheduling ----------------------------------------------------------

    def schedule_at(self, time: float, callback: Callable[[], Any], *, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise CrowdError(
                f"cannot schedule event at {time:.3f}, clock is already at {self._now:.3f}"
            )
        event = ScheduledEvent(time, next(self._sequence), callback, label, _clock=self)
        heapq.heappush(self._events, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], Any], *, label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise CrowdError(f"cannot schedule event {delay:.3f}s in the past")
        return self.schedule_at(self._now + delay, callback, label=label)

    # -- advancing -----------------------------------------------------------

    def advance_to(self, time: float) -> int:
        """Advance to ``time``, firing every due event.  Returns events fired."""
        if time < self._now:
            raise CrowdError(f"cannot rewind clock from {self._now:.3f} to {time:.3f}")
        fired = 0
        while self._events and self._events[0].time <= time:
            event = heapq.heappop(self._events)
            # Popped events are out of the heap: late cancels must not count.
            event._clock = None
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self._now = event.time
            event.callback()
            self._fired += 1
            fired += 1
        self._now = max(self._now, time)
        return fired

    def restore_time(self, now: float) -> None:
        """Jump the idle clock forward to ``now`` (snapshot recovery).

        Only legal while no events are pending and only forward — a clock
        with scheduled work cannot be teleported without reordering it,
        and the no-rewind invariant stands during recovery too.
        """
        if self.pending_events:
            raise CrowdError(
                f"cannot restore clock time with {self.pending_events} events pending"
            )
        if now < self._now:
            raise CrowdError(f"cannot rewind clock from {self._now:.3f} to {now:.3f}")
        self._now = float(now)

    def advance_by(self, delta: float) -> int:
        """Advance the clock by ``delta`` seconds."""
        return self.advance_to(self._now + delta)

    def run_next(self) -> bool:
        """Fire the single earliest pending event.  Returns False when idle."""
        when = self.next_event_time()
        if when is None:
            return False
        self.advance_to(when)
        return True

    def run_until_idle(self, *, max_events: int = 1_000_000) -> int:
        """Fire events until none remain.  Returns the number fired."""
        fired = 0
        while self.run_next():
            fired += 1
            if fired >= max_events:
                raise CrowdError(f"simulation did not quiesce after {max_events} events")
        return fired

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now:.1f}s, pending={self.pending_events})"
