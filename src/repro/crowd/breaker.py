"""Marketplace circuit breaker: stop hammering a degraded crowd market.

When the marketplace degrades — workers vanish, HITs expire unanswered — the
fault-tolerance layer's instinct is to re-post, which burns posting fees and
floods an already-saturated market.  A :class:`MarketplaceCircuitBreaker`
wraps the Task Manager's single posting choke point with the classic
closed → open → half-open state machine:

* **closed** — posting proceeds normally; consecutive fault-driven failures
  (expired HITs) are counted, and any fully-submitted HIT resets the count.
* **open** — tripped after ``failure_threshold`` consecutive failures.  All
  posting is paused; pending tasks stay queued (already-committed budget for
  expired HITs is refunded by the normal expiry path).  The breaker schedules
  a clock event at its retry time so the engine's event loop keeps moving —
  without it a fully-expired marketplace would leave the scheduler with no
  events at all and a "stuck" diagnosis instead of a cooldown.
* **half-open** — after the cooldown, up to ``half_open_probes`` probe HITs
  may post.  A probe that completes closes the breaker (and resets the
  cooldown); a probe that expires re-trips it with the cooldown doubled
  (exponential backoff, capped at ``max_cooldown``).

Everything runs on the engine clock (simulated or wall) and the optional
cooldown jitter draws from a dedicated seeded stream, so protected runs are
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CrowdError

__all__ = ["BreakerConfig", "BreakerStats", "MarketplaceCircuitBreaker"]


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for the marketplace circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive fault-driven HIT failures (expiries) that trip the
        breaker open.
    cooldown:
        Initial open-state duration in clock seconds before a half-open
        probe is allowed.
    backoff:
        Multiplier applied to the cooldown after every failed probe, so a
        persistently dead market is retried ever more rarely.
    max_cooldown:
        Ceiling on the backed-off cooldown.
    half_open_probes:
        HITs the half-open state may post before waiting on their outcome.
    jitter:
        Fraction of the cooldown randomised (±) from a seeded stream, so a
        fleet of engines does not retry a shared market in lockstep.  Zero
        (the default) keeps cooldowns exact.
    seed:
        Seed of the jitter stream.
    """

    failure_threshold: int = 5
    cooldown: float = 300.0
    backoff: float = 2.0
    max_cooldown: float = 4 * 3600.0
    half_open_probes: int = 1
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise CrowdError(f"failure_threshold must be >= 1, got {self.failure_threshold}")
        if self.cooldown <= 0:
            raise CrowdError(f"cooldown must be positive, got {self.cooldown}")
        if self.backoff < 1.0:
            raise CrowdError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_cooldown < self.cooldown:
            raise CrowdError("max_cooldown must be >= cooldown")
        if self.half_open_probes < 1:
            raise CrowdError(f"half_open_probes must be >= 1, got {self.half_open_probes}")
        if not 0.0 <= self.jitter < 1.0:
            raise CrowdError(f"jitter must be in [0, 1), got {self.jitter}")


@dataclass
class BreakerStats:
    """Aggregate counters describing breaker activity."""

    trips: int = 0
    reopens: int = 0
    closes: int = 0
    failures: int = 0
    successes: int = 0
    probes_posted: int = 0
    #: Flush attempts turned away while the breaker was not accepting posts.
    posts_blocked: int = 0


class MarketplaceCircuitBreaker:
    """Seeded, clock-driven circuit breaker around HIT posting."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: BreakerConfig | None = None, *, clock=None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock
        self.stats = BreakerStats()
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._current_cooldown = self.config.cooldown
        self._retry_at: float | None = None
        self._probes_in_flight = 0
        self._rng = random.Random(self.config.seed)

    def bind_clock(self, clock) -> None:
        """Attach the engine clock (done by the engine during wiring)."""
        self.clock = clock

    # -- posting decisions ----------------------------------------------------

    def allow_posting(self) -> bool:
        """Whether the Task Manager may post a HIT right now."""
        if self.state == self.OPEN and self._retry_at is not None:
            # Lazy transition: the scheduled reopen event normally does this,
            # but a caller polling after the retry time must not be refused.
            if self.clock is not None and self.clock.now >= self._retry_at:
                self._reopen()
        if self.state == self.CLOSED:
            return True
        if self.state == self.HALF_OPEN:
            return self._probes_in_flight < self.config.half_open_probes
        return False

    def record_post(self) -> None:
        """A HIT was actually posted (counts as a probe while half-open)."""
        if self.state == self.HALF_OPEN:
            self._probes_in_flight += 1
            self.stats.probes_posted += 1

    def record_blocked(self) -> None:
        """A flush wanted to post but the breaker refused."""
        self.stats.posts_blocked += 1

    # -- outcome feedback -----------------------------------------------------

    def record_success(self) -> None:
        """A posted HIT fully submitted — the market is serving again."""
        self.stats.successes += 1
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED
            self.stats.closes += 1
            self._current_cooldown = self.config.cooldown
            self._probes_in_flight = 0
            self._retry_at = None

    def record_failure(self) -> None:
        """A posted HIT expired — one more sign of a degraded market."""
        self.stats.failures += 1
        if self.state == self.HALF_OPEN:
            # The probe died: back off harder before the next one.
            self._trip(backoff=True)
            return
        if self.state == self.OPEN:
            # Expiries of HITs posted before the trip keep arriving while
            # open; they carry no new information about the cooldown.
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.config.failure_threshold:
            self._trip(backoff=False)

    # -- state machine --------------------------------------------------------

    def _trip(self, *, backoff: bool) -> None:
        if backoff:
            self._current_cooldown = min(
                self._current_cooldown * self.config.backoff, self.config.max_cooldown
            )
        self.state = self.OPEN
        self.stats.trips += 1
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        cooldown = self._current_cooldown
        if self.config.jitter > 0.0:
            cooldown *= 1.0 + self.config.jitter * (2.0 * self._rng.random() - 1.0)
        if self.clock is None:
            raise CrowdError("circuit breaker tripped before a clock was bound")
        self._retry_at = self.clock.now + cooldown
        # The event keeps the engine's event loop alive while posting is
        # paused: when every outstanding HIT has already expired, this is the
        # only scheduled event, and firing it advances time to the retry
        # point instead of leaving the scheduler stuck.
        self.clock.schedule_at(self._retry_at, self._reopen, label="breaker:reopen")

    def _reopen(self) -> None:
        if self.state != self.OPEN:
            return
        if self._retry_at is not None and self.clock is not None:
            if self.clock.now < self._retry_at:
                return  # a stale earlier event; the real retry is still ahead
        self.state = self.HALF_OPEN
        self.stats.reopens += 1
        self._probes_in_flight = 0

    # -- introspection --------------------------------------------------------

    @property
    def retry_at(self) -> float | None:
        """Clock time at which the open breaker will admit a probe."""
        return self._retry_at if self.state == self.OPEN else None

    def describe(self) -> str:
        """Compact rendering for dashboards and scenario logs."""
        bits = [f"state {self.state}", f"trips {self.stats.trips}"]
        if self.state == self.OPEN and self._retry_at is not None:
            bits.append(f"retry at {self._retry_at:,.0f}s")
        if self.stats.posts_blocked:
            bits.append(f"{self.stats.posts_blocked} post(s) blocked")
        return ", ".join(bits)

    def __repr__(self) -> str:
        return f"MarketplaceCircuitBreaker({self.describe()})"
