"""Simulated turker behaviour models.

Section 2 of the paper motivates redundancy ("operator implementations must
have redundancy built-in, as individual turker results are often inaccurate").
These models generate exactly that inaccuracy: each worker consults the
ground-truth :class:`~repro.crowd.oracle.AnswerOracle` and perturbs the answer
according to its accuracy and style.  Populations are mixed in
:mod:`repro.crowd.worker_pool`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crowd.hit import HITContent, HITInterface
from repro.crowd.oracle import AnswerOracle
from repro.errors import WorkerError

__all__ = [
    "WorkerModel",
    "DiligentWorker",
    "NoisyWorker",
    "SpammerWorker",
    "LazyWorker",
]


@dataclass
class WorkerModel:
    """Base class for simulated workers.

    Parameters
    ----------
    worker_id:
        Stable identifier, also used for per-worker statistics downstream.
    accuracy:
        Probability of answering any single judgement correctly.
    seconds_per_unit:
        Mean time spent per work unit (item, or implied pair for the
        two-column join interface).
    speed_factor:
        Multiplier on work time (slow careful workers > 1, spammers < 1).
    """

    worker_id: str
    accuracy: float = 0.9
    seconds_per_unit: float = 12.0
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise WorkerError(f"accuracy must be in [0, 1], got {self.accuracy}")
        if self.seconds_per_unit <= 0 or self.speed_factor <= 0:
            raise WorkerError("work-time parameters must be positive")

    # -- timing --------------------------------------------------------------

    def work_duration(self, content: HITContent, rng: random.Random) -> float:
        """Seconds the worker spends on the HIT once accepted."""
        base = self.seconds_per_unit * max(content.work_units, 1) * self.speed_factor
        # Log-normal-ish multiplicative noise keeps durations positive.
        noise = rng.lognormvariate(0.0, 0.3)
        return max(base * noise, 1.0)

    # -- answering -----------------------------------------------------------

    def answer(self, content: HITContent, oracle: AnswerOracle, rng: random.Random) -> dict:
        """Produce this worker's answers for a HIT."""
        interface = content.interface
        if interface is HITInterface.QUESTION_FORM:
            return self._answer_form(content, oracle, rng)
        if interface in (HITInterface.BINARY_CHOICE, HITInterface.JOIN_PAIRS):
            return self._answer_predicates(content, oracle, rng)
        if interface is HITInterface.JOIN_COLUMNS:
            return self._answer_join_columns(content, oracle, rng)
        if interface is HITInterface.COMPARISON:
            return self._answer_comparisons(content, oracle, rng)
        if interface is HITInterface.RATING:
            return self._answer_ratings(content, oracle, rng)
        raise WorkerError(f"worker cannot answer interface {interface}")  # pragma: no cover

    # Individual interfaces ---------------------------------------------------

    def _is_correct(self, rng: random.Random) -> bool:
        return rng.random() < self.accuracy

    def _answer_form(self, content: HITContent, oracle: AnswerOracle, rng: random.Random) -> dict:
        answers: dict[str, dict[str, str]] = {}
        for item in content.items:
            fields: dict[str, str] = {}
            for form_field in content.fields:
                if self._is_correct(rng):
                    fields[form_field.name] = oracle.form_answer(item, form_field)
                else:
                    fields[form_field.name] = oracle.plausible_wrong_form_answer(item, form_field)
            answers[item.item_id] = fields
        return answers

    def _answer_predicates(
        self, content: HITContent, oracle: AnswerOracle, rng: random.Random
    ) -> dict:
        answers: dict[str, bool] = {}
        for item in content.items:
            truth = oracle.predicate_answer(item)
            answers[item.item_id] = truth if self._is_correct(rng) else not truth
        return answers

    def _answer_join_columns(
        self, content: HITContent, oracle: AnswerOracle, rng: random.Random
    ) -> dict:
        matches: list[tuple[str, str]] = []
        for left in content.left_items:
            for right in content.right_items:
                truth = oracle.pair_matches(left, right)
                reported = truth if self._is_correct(rng) else self._flip_pair(truth, rng)
                if reported:
                    matches.append((left.item_id, right.item_id))
        return {"matches": matches}

    def _flip_pair(self, truth: bool, rng: random.Random) -> bool:
        """How an erroneous judgement on one pair manifests.

        Missing a true match is far more common than inventing a false one in
        a two-column drag interface, so errors on non-matching pairs only
        produce a false positive 25% of the time.
        """
        if truth:
            return False
        return rng.random() < 0.25

    def _answer_comparisons(
        self, content: HITContent, oracle: AnswerOracle, rng: random.Random
    ) -> dict:
        answers: dict[str, str] = {}
        for item in content.items:
            truth = oracle.comparison_answer(item)
            if self._is_correct(rng):
                answers[item.item_id] = truth
            else:
                answers[item.item_id] = "right" if truth == "left" else "left"
        return answers

    def _answer_ratings(
        self, content: HITContent, oracle: AnswerOracle, rng: random.Random
    ) -> dict:
        low, high = content.rating_scale
        answers: dict[str, float] = {}
        spread = (high - low) * (1.0 - self.accuracy)
        for item in content.items:
            truth = oracle.rating_answer(item)
            noisy = truth + rng.gauss(0.0, max(spread, 1e-9)) if spread > 0 else truth
            answers[item.item_id] = float(min(max(noisy, low), high))
        return answers


@dataclass
class DiligentWorker(WorkerModel):
    """A careful worker: high accuracy, slightly slower than average."""

    accuracy: float = 0.97
    seconds_per_unit: float = 14.0
    speed_factor: float = 1.1


@dataclass
class NoisyWorker(WorkerModel):
    """An average worker whose accuracy is a tunable experiment parameter."""

    accuracy: float = 0.85


@dataclass
class SpammerWorker(WorkerModel):
    """A worker who answers without looking at the task, as fast as possible."""

    accuracy: float = 0.5
    seconds_per_unit: float = 2.0
    speed_factor: float = 0.5
    yes_bias: float = 0.65

    def _answer_form(self, content, oracle, rng):  # type: ignore[override]
        answers = {}
        for item in content.items:
            answers[item.item_id] = {f.name: "n/a" for f in content.fields}
        return answers

    def _answer_predicates(self, content, oracle, rng):  # type: ignore[override]
        return {item.item_id: rng.random() < self.yes_bias for item in content.items}

    def _answer_join_columns(self, content, oracle, rng):  # type: ignore[override]
        matches = []
        for left in content.left_items:
            for right in content.right_items:
                if rng.random() < 0.5 / max(len(content.right_items), 1):
                    matches.append((left.item_id, right.item_id))
        return {"matches": matches}

    def _answer_comparisons(self, content, oracle, rng):  # type: ignore[override]
        return {item.item_id: ("left" if rng.random() < 0.5 else "right") for item in content.items}

    def _answer_ratings(self, content, oracle, rng):  # type: ignore[override]
        low, high = content.rating_scale
        return {item.item_id: float(rng.randint(low, high)) for item in content.items}


@dataclass
class LazyWorker(WorkerModel):
    """A worker who answers carefully at first and degrades on long (batched) HITs.

    Accuracy decays with the position of the item inside the HIT, which is
    the mechanism behind the accuracy cost of aggressive batching (E8).
    """

    accuracy: float = 0.95
    fatigue: float = 0.03

    def _positional_accuracy(self, position: int) -> float:
        return max(self.accuracy - self.fatigue * position, 0.5)

    def _answer_predicates(self, content, oracle, rng):  # type: ignore[override]
        answers = {}
        for position, item in enumerate(content.items):
            truth = oracle.predicate_answer(item)
            correct = rng.random() < self._positional_accuracy(position)
            answers[item.item_id] = truth if correct else not truth
        return answers

    def _answer_form(self, content, oracle, rng):  # type: ignore[override]
        answers = {}
        for position, item in enumerate(content.items):
            fields = {}
            accuracy = self._positional_accuracy(position)
            for form_field in content.fields:
                if rng.random() < accuracy:
                    fields[form_field.name] = oracle.form_answer(item, form_field)
                else:
                    fields[form_field.name] = oracle.plausible_wrong_form_answer(item, form_field)
            answers[item.item_id] = fields
        return answers

    def _answer_comparisons(self, content, oracle, rng):  # type: ignore[override]
        answers = {}
        for position, item in enumerate(content.items):
            truth = oracle.comparison_answer(item)
            correct = rng.random() < self._positional_accuracy(position)
            answers[item.item_id] = truth if correct else ("right" if truth == "left" else "left")
        return answers

    def _answer_ratings(self, content, oracle, rng):  # type: ignore[override]
        low, high = content.rating_scale
        answers = {}
        for position, item in enumerate(content.items):
            truth = oracle.rating_answer(item)
            spread = (high - low) * (1.0 - self._positional_accuracy(position))
            noisy = truth + rng.gauss(0.0, max(spread, 1e-9)) if spread > 0 else truth
            answers[item.item_id] = float(min(max(noisy, low), high))
        return answers

    def _answer_join_columns(self, content, oracle, rng):  # type: ignore[override]
        matches = []
        pair_position = 0
        for left in content.left_items:
            for right in content.right_items:
                truth = oracle.pair_matches(left, right)
                correct = rng.random() < self._positional_accuracy(pair_position // 4)
                reported = truth if correct else self._flip_pair(truth, rng)
                if reported:
                    matches.append((left.item_id, right.item_id))
                pair_position += 1
        return {"matches": matches}
