"""Worker populations and marketplace dynamics.

The pool decides *which* simulated worker picks up an assignment and *when*.
Pick-up latency follows the marketplace intuition the paper relies on: HITs
take "several minutes" to complete, and better-paying HITs are picked up
faster.  The population mix (diligent / noisy / lazy / spammer fractions) is
the main knob for the redundancy experiments (E5).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.crowd.hit import HIT
from repro.crowd.workers import (
    DiligentWorker,
    LazyWorker,
    NoisyWorker,
    SpammerWorker,
    WorkerModel,
)
from repro.errors import WorkerError

__all__ = ["PopulationMix", "WorkerPool"]


@dataclass(frozen=True)
class PopulationMix:
    """Fractions of each worker archetype in the marketplace.

    The fractions need not sum exactly to 1; they are normalised.  The
    default mix (mostly reliable, some noisy, a few lazy, a small spammer
    tail) is calibrated to make single-assignment accuracy land around 85-90%,
    matching the paper's premise that one answer is not trustworthy enough.
    """

    diligent: float = 0.55
    noisy: float = 0.30
    lazy: float = 0.10
    spammer: float = 0.05
    noisy_accuracy: float = 0.85

    def __post_init__(self) -> None:
        fractions = (self.diligent, self.noisy, self.lazy, self.spammer)
        if any(f < 0 for f in fractions):
            raise WorkerError("population fractions must be non-negative")
        if sum(fractions) <= 0:
            raise WorkerError("population mix must contain at least one worker type")

    def normalised(self) -> tuple[float, float, float, float]:
        """The four fractions normalised to sum to 1."""
        total = self.diligent + self.noisy + self.lazy + self.spammer
        return (
            self.diligent / total,
            self.noisy / total,
            self.lazy / total,
            self.spammer / total,
        )


@dataclass
class WorkerPool:
    """A population of simulated workers and their marketplace behaviour.

    Parameters
    ----------
    size:
        Number of distinct workers in the pool.
    mix:
        Archetype fractions used to instantiate the population.
    seed:
        Seed for the pool's private random stream (worker creation, pick-up
        times, worker selection).  Answer noise uses per-assignment streams
        derived from this seed so that runs are reproducible.
    base_pickup_seconds:
        Mean time for a $0.01 HIT to be accepted by some worker.
    reward_elasticity:
        How strongly higher rewards shorten pick-up time.
    """

    size: int = 100
    mix: PopulationMix = field(default_factory=PopulationMix)
    seed: int = 7
    base_pickup_seconds: float = 180.0
    reward_elasticity: float = 0.5
    reference_reward: float = 0.01

    def __post_init__(self) -> None:
        if self.size < 1:
            raise WorkerError("worker pool must contain at least one worker")
        self._rng = random.Random(self.seed)
        self._workers: list[WorkerModel] = self._build_population()
        self._assignment_counter = 0

    # -- population ----------------------------------------------------------

    def _build_population(self) -> list[WorkerModel]:
        diligent, noisy, lazy, spammer = self.mix.normalised()
        workers: list[WorkerModel] = []
        for index in range(self.size):
            draw = self._rng.random()
            worker_id = f"W{index:04d}"
            if draw < diligent:
                workers.append(DiligentWorker(worker_id))
            elif draw < diligent + noisy:
                workers.append(NoisyWorker(worker_id, accuracy=self.mix.noisy_accuracy))
            elif draw < diligent + noisy + lazy:
                workers.append(LazyWorker(worker_id))
            else:
                workers.append(SpammerWorker(worker_id))
        return workers

    @property
    def workers(self) -> list[WorkerModel]:
        """The full population (stable order)."""
        return list(self._workers)

    def worker(self, worker_id: str) -> WorkerModel:
        """Look up one worker by id."""
        for candidate in self._workers:
            if candidate.worker_id == worker_id:
                return candidate
        raise WorkerError(f"unknown worker {worker_id!r}")

    def expected_accuracy(self) -> float:
        """Mean single-judgement accuracy across the population."""
        return sum(w.accuracy for w in self._workers) / len(self._workers)

    # -- marketplace ---------------------------------------------------------

    def select_workers(self, hit: HIT, count: int) -> list[WorkerModel]:
        """Choose ``count`` distinct workers to complete ``hit``.

        MTurk prevents the same worker from completing more than one
        assignment of a HIT, so selection is without replacement (falling
        back to replacement only if the pool is smaller than ``count``).
        A HIT's ``excluded_workers`` qualification is honoured while enough
        other workers exist, so re-posted tasks get fresh judges.
        """
        if hit.excluded_workers:
            candidates = [
                worker for worker in self._workers if worker.worker_id not in hit.excluded_workers
            ]
            if count <= len(candidates):
                return self._rng.sample(candidates, count)
            # Not enough fresh workers: take every fresh one and fill the
            # remainder from the excluded set — the independence guarantee
            # degrades as little as the pool allows (callers can detect the
            # repeat via duplicate worker ids on the answer list).
            excluded_pool = [
                worker for worker in self._workers if worker.worker_id in hit.excluded_workers
            ]
            fill = min(count - len(candidates), len(excluded_pool))
            return candidates + self._rng.sample(excluded_pool, fill)
        if count <= len(self._workers):
            return self._rng.sample(self._workers, count)
        return [self._rng.choice(self._workers) for _ in range(count)]

    def select_replacement(self, hit: HIT) -> WorkerModel | None:
        """Choose one worker to pick up an assignment returned to the pool.

        Used by the simulator's abandonment fault: the replacement must not
        already hold an assignment of the HIT (the marketplace rule), and
        preferably not be barred by the HIT's exclusion list; ``None`` when
        every worker has already touched the HIT.
        """
        taken = {assignment.worker_id for assignment in hit.assignments}
        candidates = [
            worker
            for worker in self._workers
            if worker.worker_id not in taken and worker.worker_id not in hit.excluded_workers
        ]
        if not candidates:
            candidates = [worker for worker in self._workers if worker.worker_id not in taken]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def pickup_delay(self, hit: HIT) -> float:
        """Sample the time until some worker accepts an assignment of ``hit``.

        Mean delay shrinks with the offered reward (diminishing returns via
        ``reward_elasticity``) and grows slightly with the amount of work in
        the HIT, since workers preview HITs before accepting long ones.
        """
        reward_ratio = max(hit.reward, 1e-4) / self.reference_reward
        mean = self.base_pickup_seconds / (reward_ratio ** self.reward_elasticity)
        mean *= 1.0 + 0.02 * max(hit.content.work_units - 1, 0)
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def assignment_rng(self, assignment_id: str) -> random.Random:
        """A private random stream for one assignment's answer noise.

        Derived from a CRC of the assignment id (not ``hash()``, which is
        salted per process) so runs are reproducible across interpreters.
        """
        digest = zlib.crc32(assignment_id.encode("utf-8"))
        return random.Random((self.seed << 32) ^ digest)

    def next_assignment_id(self) -> str:
        """Generate a platform-unique assignment id."""
        self._assignment_counter += 1
        return f"A{self._assignment_counter:06d}"

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Evolved marketplace state for a snapshot.

        The population itself is *not* captured: it is a pure function of
        ``(size, mix, seed)`` and is rebuilt identically by the engine
        spec.  What evolves during a run is the shared random stream and
        the assignment-id counter.
        """
        from repro.storage.snapshot import pack_rng_state

        return {
            "rng": pack_rng_state(self._rng.getstate()),
            "assignment_counter": self._assignment_counter,
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.storage.snapshot import unpack_rng_state

        self._rng.setstate(unpack_rng_state(state["rng"]))
        self._assignment_counter = int(state["assignment_counter"])
