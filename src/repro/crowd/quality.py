"""Worker quality control: reputations, gold-standard probes, and its config.

Section 2 of the paper motivates redundancy because "individual turker
results are often inaccurate" — but treats every worker identically.  This
module adds the per-worker half of quality control:

* :class:`WorkerReputation` — a per-worker accuracy posterior (Beta prior
  updated from gold-standard probe answers and from agreement with the
  majority vote), exposed as vote weights for confidence-weighted
  aggregation and as a population accuracy estimate for the optimizer's
  redundancy rule;
* :class:`GoldQuestion` / :class:`GoldStandardPool` — probe questions with
  known answers that the HIT compiler injects into outgoing HITs, so worker
  accuracy is measured against ground truth rather than only against peers;
* :class:`QualityConfig` — the engine-level switchboard (all features are
  opt-in; a ``None`` config leaves the legacy fixed-redundancy, unweighted
  pipeline byte-identical).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import CrowdError

__all__ = [
    "QualityConfig",
    "WorkerReputation",
    "GoldQuestion",
    "GoldStandardPool",
    "agreement_signal",
    "DEFAULT_AGREEMENT_WEIGHT",
]

#: Weight of one agreement-with-majority observation relative to one gold
#: observation (the majority itself can be wrong).  The single default
#: shared by :class:`QualityConfig` and the Task Manager's no-config path.
DEFAULT_AGREEMENT_WEIGHT = 0.25


@dataclass(frozen=True)
class QualityConfig:
    """Engine-level quality-control knobs (attach via ``QurkEngine(quality=...)``).

    Parameters
    ----------
    gold_frequency:
        Fraction of posted HITs that carry one gold probe item (0 disables
        probing).
    weighted_voting:
        Reduce answer lists with reputation-weighted votes once reputations
        diverge; degrades to the spec's plain combiner while they are
        uniform.
    adaptive_redundancy:
        Post assignments in waves of ``wave_size`` and stop early once the
        weighted agreement of the accumulated answers clears
        ``confidence_threshold`` — easy tasks cost ``wave_size`` assignments
        instead of the spec's full redundancy.
    wave_size:
        Assignments per wave.
    confidence_threshold:
        Weighted agreement needed to stop before the full redundancy target.
    max_attempts:
        How many times a task may be re-posted after its HIT expired or was
        abandoned before the task is abandoned too (the owning query then
        surfaces ``STALLED`` instead of hanging).
    agreement_weight:
        Weight of one agreement-with-majority observation relative to one
        gold observation (gold is ground truth; agreement is a proxy).
    seed:
        Seed of the quality-control random stream (gold probe placement).
    """

    gold_frequency: float = 0.25
    weighted_voting: bool = True
    adaptive_redundancy: bool = True
    wave_size: int = 3
    confidence_threshold: float = 0.85
    max_attempts: int = 3
    agreement_weight: float = DEFAULT_AGREEMENT_WEIGHT
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.gold_frequency <= 1.0:
            raise CrowdError(f"gold_frequency must be in [0, 1], got {self.gold_frequency}")
        if self.wave_size < 1:
            raise CrowdError(f"wave_size must be >= 1, got {self.wave_size}")
        if not 0.0 < self.confidence_threshold <= 1.0:
            raise CrowdError(
                f"confidence_threshold must be in (0, 1], got {self.confidence_threshold}"
            )
        if self.max_attempts < 1:
            raise CrowdError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.agreement_weight < 0:
            raise CrowdError(f"agreement_weight must be >= 0, got {self.agreement_weight}")


class WorkerReputation:
    """Per-worker accuracy posteriors learned from gold answers and agreement.

    Each worker carries a Beta(``prior_alpha``, ``prior_beta``) posterior over
    their single-judgement accuracy.  Gold-standard observations update it
    with weight 1; agreement-with-majority observations update it with the
    (smaller) weight the caller passes, since the majority itself can be
    wrong.  The prior mean (0.8 by default) matches the optimizer's default
    worker-accuracy assumption.
    """

    #: Workers whose posterior mean falls below this are flagged as spammers.
    FLAG_THRESHOLD = 0.65

    def __init__(self, *, prior_alpha: float = 4.0, prior_beta: float = 1.0) -> None:
        if prior_alpha <= 0 or prior_beta <= 0:
            raise CrowdError("reputation priors must be positive")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self._alpha: dict[str, float] = {}
        self._beta: dict[str, float] = {}
        self._gold_observations: dict[str, int] = {}
        #: Bumped on every observation; keys the population-accuracy memo so
        #: the O(workers) aggregate is recomputed only when something changed
        #: (the redundancy rule consults it once per task on the hot path).
        self._version = 0
        self._population_memo: tuple[int, float, int, float | None] | None = None

    # -- recording -----------------------------------------------------------

    def record_gold(self, worker_id: str, correct: bool, *, weight: float = 1.0) -> None:
        """Fold one gold-probe outcome (ground truth) into the posterior."""
        self._observe(worker_id, correct, weight)
        self._gold_observations[worker_id] = self._gold_observations.get(worker_id, 0) + 1

    def record_agreement(
        self, worker_id: str, agreed: bool, *, weight: float = DEFAULT_AGREEMENT_WEIGHT
    ) -> None:
        """Fold one agreement-with-majority observation into the posterior."""
        if weight <= 0:
            return
        self._observe(worker_id, agreed, weight)

    def _observe(self, worker_id: str, correct: bool, weight: float) -> None:
        if correct:
            self._alpha[worker_id] = self._alpha.get(worker_id, 0.0) + weight
        else:
            self._beta[worker_id] = self._beta.get(worker_id, 0.0) + weight
        self._version += 1

    # -- estimates -----------------------------------------------------------

    def accuracy(self, worker_id: str) -> float:
        """Posterior mean accuracy of one worker (prior mean when unseen)."""
        alpha = self.prior_alpha + self._alpha.get(worker_id, 0.0)
        beta = self.prior_beta + self._beta.get(worker_id, 0.0)
        return alpha / (alpha + beta)

    def observations(self, worker_id: str) -> float:
        """Total observation weight accumulated for one worker."""
        return self._alpha.get(worker_id, 0.0) + self._beta.get(worker_id, 0.0)

    def vote_weight(self, worker_id: str) -> float:
        """Log-odds vote weight for confidence-weighted aggregation.

        A worker at the prior mean gets the prior's log-odds; a detected
        spammer (accuracy near 0.5) contributes almost nothing; a worker
        *below* 0.5 still gets a small positive floor rather than a negative
        weight — inverting adversarial votes is out of scope for majority
        aggregation.
        """
        p = min(max(self.accuracy(worker_id), 0.05), 0.98)
        return max(math.log(p / (1.0 - p)), 0.05)

    def vote_weights(self, worker_ids: Mapping[str, Any] | list[str] | tuple[str, ...]) -> dict[str, float]:
        """Vote weights for a set of workers (for one answer list)."""
        return {worker_id: self.vote_weight(worker_id) for worker_id in worker_ids}

    def is_uniform(self, worker_ids: list[str] | tuple[str, ...] = ()) -> bool:
        """Whether the listed workers (or everyone) are still at the prior."""
        if worker_ids:
            return all(self.observations(worker_id) == 0.0 for worker_id in worker_ids)
        return not self._alpha and not self._beta

    def tracked_workers(self) -> list[str]:
        """Ids of workers with at least one observation."""
        return sorted(set(self._alpha) | set(self._beta))

    def flagged_workers(self) -> list[str]:
        """Workers whose posterior mean fell below :attr:`FLAG_THRESHOLD`."""
        return [
            worker_id
            for worker_id in self.tracked_workers()
            if self.accuracy(worker_id) < self.FLAG_THRESHOLD
        ]

    def population_accuracy(self, *, min_observations: float = 2.0, min_workers: int = 5) -> float | None:
        """Observation-weighted mean accuracy across informative workers.

        This is the observed marketplace accuracy the optimizer's redundancy
        rule consumes; it returns None until enough workers have enough
        observations for the estimate to mean something.  Memoized per
        observation version — the rule calls this once per task.
        """
        memo = self._population_memo
        if memo is not None and memo[:3] == (self._version, min_observations, min_workers):
            return memo[3]
        informative = [
            worker_id
            for worker_id in self.tracked_workers()
            if self.observations(worker_id) >= min_observations
        ]
        if len(informative) < min_workers:
            result: float | None = None
        else:
            total_weight = 0.0
            total = 0.0
            for worker_id in informative:
                weight = self.observations(worker_id)
                total += self.accuracy(worker_id) * weight
                total_weight += weight
            result = total / total_weight if total_weight else None
        self._population_memo = (self._version, min_observations, min_workers, result)
        return result

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """The learned posteriors, for a snapshot (priors come from config)."""
        return {
            "alpha": dict(self._alpha),
            "beta": dict(self._beta),
            "gold_observations": dict(self._gold_observations),
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._alpha = {str(k): float(v) for k, v in state["alpha"].items()}
        self._beta = {str(k): float(v) for k, v in state["beta"].items()}
        self._gold_observations = {
            str(k): int(v) for k, v in state["gold_observations"].items()
        }
        # Invalidate the population-accuracy memo.
        self._version += 1
        self._population_memo = None

    def summary(self) -> dict[str, Any]:
        """Aggregate view for the dashboard."""
        tracked = self.tracked_workers()
        mean = (
            sum(self.accuracy(worker_id) for worker_id in tracked) / len(tracked)
            if tracked
            else None
        )
        return {
            "workers_tracked": len(tracked),
            "mean_accuracy": mean,
            "flagged": len(self.flagged_workers()),
            "gold_observations": sum(self._gold_observations.values()),
        }


@dataclass(frozen=True)
class GoldQuestion:
    """One probe question with a known answer.

    ``payload`` must be answerable by the workload's oracle (gold questions
    are drawn from items whose ground truth the workload knows), and should
    carry the same keys a real item of the spec would.  ``expected`` is
    compared against the worker's raw answer by :meth:`matches`.
    """

    prompt: str
    payload: dict[str, Any] = field(default_factory=dict)
    expected: Any = None
    tolerance: float = 1.5

    def matches(self, answer: Any) -> bool:
        """Whether a worker's raw answer counts as correct."""
        return _answers_match(self.expected, answer, self.tolerance)


def _scalar_match(expected: Any, answer: Any, tolerance: float) -> bool | None:
    """Compare one scalar answer kind; None when ``expected`` is composite.

    The single leaf comparator shared by gold scoring
    (:meth:`GoldQuestion.matches`) and agreement scoring
    (:func:`agreement_signal`) — both feed the same reputation posterior, so
    they must agree on what a matching bool / string / number means.
    """
    if isinstance(expected, bool):
        return isinstance(answer, bool) and answer is expected
    if isinstance(expected, str):
        return isinstance(answer, str) and answer.strip().lower() == expected.strip().lower()
    if isinstance(expected, (int, float)):
        if isinstance(answer, bool) or not isinstance(answer, (int, float)):
            return False
        return abs(float(answer) - float(expected)) <= tolerance
    return None


def _answers_match(expected: Any, answer: Any, tolerance: float) -> bool:
    if answer is None:
        return False
    scalar = _scalar_match(expected, answer, tolerance)
    if scalar is not None:
        return scalar
    if isinstance(expected, Mapping):
        # Gold truth: every expected field must match — the question's
        # author chose exactly the fields that define correctness.
        if not isinstance(answer, Mapping):
            return False
        return all(
            _answers_match(value, answer.get(key), tolerance) for key, value in expected.items()
        )
    return expected == answer


#: Numeric answers within this distance of the reduced value count as
#: agreeing for reputation purposes (rating scales are ~1-7 wide).
AGREEMENT_NUMERIC_TOLERANCE = 1.0


def agreement_signal(answer: Any, reduced: Any) -> bool | None:
    """Whether one answer agrees with the reduced value, per answer kind.

    Used for reputation updates from vote agreement.  Exact equality is the
    wrong signal for continuous and composite answers (a rating never equals
    the mean of the ratings; a form answer right on one of two fields is not
    total disagreement), and since reputations are engine-global, scoring
    those as failures would poison vote weights and redundancy choices for
    every task spec.  Unlike gold scoring — where the known truth demands
    every expected field — agreement with a peer-consensus mapping counts a
    field majority.  Returns None when the kind carries no meaningful
    per-answer agreement signal (e.g. JOIN_BLOCK pair lists).
    """
    scalar = _scalar_match(reduced, answer, AGREEMENT_NUMERIC_TOLERANCE)
    if scalar is not None:
        return scalar
    if isinstance(reduced, Mapping):
        if not isinstance(answer, Mapping) or not reduced:
            return False
        matched = sum(
            1
            for field_name, value in reduced.items()
            if agreement_signal(answer.get(field_name), value)
        )
        return matched * 2 >= len(reduced)
    return None


class GoldStandardPool:
    """Registered gold questions, keyed by task spec name."""

    def __init__(self) -> None:
        self._questions: dict[str, tuple[GoldQuestion, ...]] = {}

    def register(self, spec_name: str, questions: list[GoldQuestion] | tuple[GoldQuestion, ...]) -> None:
        """Attach gold questions to one task spec (replaces prior ones)."""
        if not questions:
            raise CrowdError(f"gold pool for {spec_name!r} needs at least one question")
        self._questions[spec_name] = tuple(questions)

    def for_spec(self, spec_name: str) -> tuple[GoldQuestion, ...]:
        """All gold questions registered for a spec (possibly empty)."""
        return self._questions.get(spec_name, ())

    def pick(self, spec_name: str, rng: random.Random) -> GoldQuestion | None:
        """Choose one gold question for the next HIT (None when unregistered)."""
        questions = self._questions.get(spec_name)
        if not questions:
            return None
        return questions[rng.randrange(len(questions))]

    def __len__(self) -> int:
        return sum(len(questions) for questions in self._questions.values())
