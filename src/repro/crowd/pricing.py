"""Mechanical Turk pricing model.

The paper motivates Qurk's optimizer with monetary cost: typical HITs pay
$0.01–$0.03 and a naive cross-product join is "extraordinary monetary cost".
This module reproduces the fee structure requesters faced: a per-assignment
reward chosen by the requester plus a platform commission with a minimum fee
per assignment (MTurk charged 10% with a $0.005 minimum at the time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CrowdError

__all__ = ["PricingPolicy", "DEFAULT_PRICING", "CENTS"]

#: Convenience constant: one US cent expressed in dollars.
CENTS = 0.01


@dataclass(frozen=True)
class PricingPolicy:
    """Platform fee schedule applied on top of worker rewards.

    Parameters
    ----------
    commission_rate:
        Fraction of the reward charged by the platform (0.10 = 10%).
    minimum_fee:
        Minimum platform fee per assignment in dollars.
    minimum_reward:
        Smallest reward a requester may offer per assignment.
    """

    commission_rate: float = 0.10
    minimum_fee: float = 0.005
    minimum_reward: float = 0.005

    def __post_init__(self) -> None:
        if self.commission_rate < 0:
            raise CrowdError("commission_rate must be non-negative")
        if self.minimum_fee < 0 or self.minimum_reward < 0:
            raise CrowdError("fees and rewards must be non-negative")

    def validate_reward(self, reward: float) -> float:
        """Check a per-assignment reward and return it unchanged."""
        if reward < self.minimum_reward:
            raise CrowdError(
                f"reward ${reward:.4f} is below the platform minimum ${self.minimum_reward:.4f}"
            )
        return reward

    def fee(self, reward: float) -> float:
        """Platform commission charged for one assignment at ``reward``."""
        return max(reward * self.commission_rate, self.minimum_fee)

    def assignment_cost(self, reward: float) -> float:
        """Total requester cost for one completed assignment."""
        self.validate_reward(reward)
        return reward + self.fee(reward)

    def hit_cost(self, reward: float, assignments: int) -> float:
        """Total requester cost for a HIT completed by ``assignments`` workers."""
        if assignments < 1:
            raise CrowdError("a HIT needs at least one assignment")
        return self.assignment_cost(reward) * assignments


#: The default fee schedule used across the reproduction.
DEFAULT_PRICING = PricingPolicy()
