"""Simulated Mechanical Turk substrate.

The real MTurk service and its human workers are replaced by an in-process,
discrete-event simulation (see DESIGN.md, "Substitutions"):

* :class:`~repro.crowd.clock.SimulationClock` — simulated time.
* :class:`~repro.crowd.hit.HIT` / :class:`~repro.crowd.hit.HITContent` —
  the requester-facing HIT model, including the Figure 3 interfaces.
* :class:`~repro.crowd.workers.WorkerModel` subclasses — turker behaviour
  (diligent, noisy, lazy, spammer) driven by a ground-truth
  :class:`~repro.crowd.oracle.AnswerOracle`.
* :class:`~repro.crowd.worker_pool.WorkerPool` — population mix and
  marketplace pick-up latency.
* :class:`~repro.crowd.mturk.MTurkSimulator` — the requester API Qurk talks to.
"""

from repro.crowd.clock import ScheduledEvent, SimulationClock
from repro.crowd.faults import FaultProfile
from repro.crowd.quality import (
    GoldQuestion,
    GoldStandardPool,
    QualityConfig,
    WorkerReputation,
)
from repro.crowd.hit import (
    Assignment,
    AssignmentStatus,
    FormField,
    HIT,
    HITContent,
    HITInterface,
    HITItem,
    HITStatus,
)
from repro.crowd.mturk import MTurkSimulator, PlatformStats
from repro.crowd.oracle import AnswerOracle, CallbackOracle
from repro.crowd.pricing import CENTS, DEFAULT_PRICING, PricingPolicy
from repro.crowd.worker_pool import PopulationMix, WorkerPool
from repro.crowd.workers import (
    DiligentWorker,
    LazyWorker,
    NoisyWorker,
    SpammerWorker,
    WorkerModel,
)

__all__ = [
    "SimulationClock",
    "ScheduledEvent",
    "HIT",
    "HITContent",
    "HITItem",
    "HITInterface",
    "HITStatus",
    "FormField",
    "Assignment",
    "AssignmentStatus",
    "MTurkSimulator",
    "PlatformStats",
    "FaultProfile",
    "QualityConfig",
    "WorkerReputation",
    "GoldQuestion",
    "GoldStandardPool",
    "AnswerOracle",
    "CallbackOracle",
    "PricingPolicy",
    "DEFAULT_PRICING",
    "CENTS",
    "WorkerPool",
    "PopulationMix",
    "WorkerModel",
    "DiligentWorker",
    "NoisyWorker",
    "LazyWorker",
    "SpammerWorker",
]
