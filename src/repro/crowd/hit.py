"""HITs, assignments and the HIT content model.

A HIT ("Human Intelligence Task") is the unit of work posted to the crowd
platform.  Its *content* describes the interface a worker sees; the paper's
Task 1 compiles to a :data:`HITInterface.QUESTION_FORM` and Task 2 to a
:data:`HITInterface.JOIN_COLUMNS` two-column matching interface (Figure 3).
The batching optimizations of Section 2 put several items into one HIT, so
every interface carries a list of :class:`HITItem`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import AssignmentError, HITError

__all__ = [
    "HITInterface",
    "FormField",
    "HITItem",
    "HITContent",
    "HITStatus",
    "AssignmentStatus",
    "Assignment",
    "HIT",
]


class HITInterface(enum.Enum):
    """The kind of form a worker is shown (Figure 3 shows JOIN_COLUMNS)."""

    QUESTION_FORM = "question_form"
    BINARY_CHOICE = "binary_choice"
    JOIN_PAIRS = "join_pairs"
    JOIN_COLUMNS = "join_columns"
    COMPARISON = "comparison"
    RATING = "rating"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FormField:
    """One free-text input of a QUESTION_FORM HIT (e.g. ``CEO``, ``Phone``)."""

    name: str
    field_type: str = "String"


@dataclass(frozen=True)
class HITItem:
    """One unit of work inside a HIT.

    ``payload`` holds whatever the worker must look at (a company name, a
    pair of images, a list of images for a column).  ``group`` distinguishes
    the two sides of a JOIN_COLUMNS interface (``"left"`` / ``"right"``).
    """

    item_id: str
    prompt: str
    payload: dict[str, Any] = field(default_factory=dict)
    group: str = ""


@dataclass(frozen=True)
class HITContent:
    """Everything a worker sees when they accept a HIT."""

    interface: HITInterface
    title: str
    instructions: str
    items: tuple[HITItem, ...]
    fields: tuple[FormField, ...] = ()
    left_label: str = ""
    right_label: str = ""
    choices: tuple[str, ...] = ("yes", "no")
    rating_scale: tuple[int, int] = (1, 7)

    def __post_init__(self) -> None:
        if not self.items:
            raise HITError("a HIT must contain at least one item")
        if self.interface is HITInterface.QUESTION_FORM and not self.fields:
            raise HITError("QUESTION_FORM HITs must declare at least one form field")
        if self.interface is HITInterface.JOIN_COLUMNS:
            if not self.left_items or not self.right_items:
                raise HITError("JOIN_COLUMNS HITs need items in both columns")

    @property
    def left_items(self) -> tuple[HITItem, ...]:
        """Items displayed in the left column of a JOIN_COLUMNS interface."""
        return tuple(item for item in self.items if item.group == "left")

    @property
    def right_items(self) -> tuple[HITItem, ...]:
        """Items displayed in the right column of a JOIN_COLUMNS interface."""
        return tuple(item for item in self.items if item.group == "right")

    @property
    def work_units(self) -> int:
        """How many independent judgements the HIT asks for.

        For most interfaces this is the number of items; for the two-column
        join interface it is the size of the implied cross product, which is
        what actually determines worker effort and answer quality.
        """
        if self.interface is HITInterface.JOIN_COLUMNS:
            return len(self.left_items) * len(self.right_items)
        return len(self.items)


class HITStatus(enum.Enum):
    """Lifecycle of a HIT on the platform."""

    OPEN = "open"
    COMPLETED = "completed"
    EXPIRED = "expired"
    DISPOSED = "disposed"


class AssignmentStatus(enum.Enum):
    """Lifecycle of one worker's assignment of a HIT."""

    ACCEPTED = "accepted"
    SUBMITTED = "submitted"
    APPROVED = "approved"
    REJECTED = "rejected"
    #: The worker returned the assignment without submitting (fault injection).
    ABANDONED = "abandoned"


@dataclass
class Assignment:
    """One worker's completion of a HIT.

    ``answers`` is keyed by item id.  For QUESTION_FORM items the value is a
    ``{field name: text}`` mapping; for BINARY_CHOICE / JOIN_PAIRS it is a
    boolean; for COMPARISON it is the item id judged greater; for RATING a
    number; for JOIN_COLUMNS the special key ``"matches"`` maps to a list of
    ``(left item id, right item id)`` pairs.
    """

    assignment_id: str
    hit_id: str
    worker_id: str
    accepted_at: float
    status: AssignmentStatus = AssignmentStatus.ACCEPTED
    submitted_at: float | None = None
    answers: dict[str, Any] = field(default_factory=dict)

    @property
    def work_duration(self) -> float:
        """Seconds between acceptance and submission (0 while in flight)."""
        if self.submitted_at is None:
            return 0.0
        return self.submitted_at - self.accepted_at

    def submit(self, answers: dict[str, Any], at: float) -> None:
        """Record the worker's answers and mark the assignment submitted."""
        if self.status is not AssignmentStatus.ACCEPTED:
            raise AssignmentError(
                f"assignment {self.assignment_id} cannot be submitted from {self.status}"
            )
        if at < self.accepted_at:
            raise AssignmentError("assignment submitted before it was accepted")
        self.answers = dict(answers)
        self.submitted_at = at
        self.status = AssignmentStatus.SUBMITTED

    def approve(self) -> None:
        """Approve a submitted assignment (triggers payment on the platform)."""
        if self.status is not AssignmentStatus.SUBMITTED:
            raise AssignmentError(
                f"assignment {self.assignment_id} cannot be approved from {self.status}"
            )
        self.status = AssignmentStatus.APPROVED

    def reject(self) -> None:
        """Reject a submitted assignment (no payment)."""
        if self.status is not AssignmentStatus.SUBMITTED:
            raise AssignmentError(
                f"assignment {self.assignment_id} cannot be rejected from {self.status}"
            )
        self.status = AssignmentStatus.REJECTED

    def abandon(self) -> None:
        """The worker returned the assignment without submitting (no payment)."""
        if self.status is not AssignmentStatus.ACCEPTED:
            raise AssignmentError(
                f"assignment {self.assignment_id} cannot be abandoned from {self.status}"
            )
        self.status = AssignmentStatus.ABANDONED


@dataclass
class HIT:
    """A HIT posted on the (simulated) platform."""

    hit_id: str
    content: HITContent
    reward: float
    max_assignments: int
    created_at: float
    lifetime: float = 24 * 3600.0
    status: HITStatus = HITStatus.OPEN
    assignments: list[Assignment] = field(default_factory=list)
    requester_annotation: str = ""
    #: Workers barred from this HIT (the qualification mechanism requesters
    #: use so a re-posted task is not answered twice by the same worker —
    #: redundancy assumes independent judgements).
    excluded_workers: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.max_assignments < 1:
            raise HITError("max_assignments must be >= 1")
        if self.reward < 0:
            raise HITError("reward must be non-negative")

    @property
    def expires_at(self) -> float:
        """Simulated time after which the HIT no longer accepts workers."""
        return self.created_at + self.lifetime

    @property
    def submitted_assignments(self) -> list[Assignment]:
        """Assignments that have been submitted (or already reviewed)."""
        return [
            a
            for a in self.assignments
            if a.status
            in (AssignmentStatus.SUBMITTED, AssignmentStatus.APPROVED, AssignmentStatus.REJECTED)
        ]

    @property
    def is_fully_submitted(self) -> bool:
        """True when every requested assignment has been submitted."""
        return len(self.submitted_assignments) >= self.max_assignments

    def __repr__(self) -> str:
        return (
            f"HIT({self.hit_id}, {self.content.interface.value}, "
            f"items={len(self.content.items)}, reward=${self.reward:.3f}, "
            f"assignments={len(self.submitted_assignments)}/{self.max_assignments}, "
            f"{self.status.value})"
        )
