"""Simulated Mechanical Turk requester service.

This is the substrate substitution documented in DESIGN.md: the real MTurk
web service is replaced by an in-process simulator that exposes the same
requester-facing operations Qurk's HIT Compiler and Task Manager need —
posting HITs, polling for submitted assignments, approving/rejecting work,
and accounting for rewards and platform fees.  Completion happens on the
shared :class:`~repro.crowd.clock.SimulationClock`, so latency behaviour
("each HIT may take several minutes", Section 1) is preserved.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.crowd.clock import ScheduledEvent, SimulationClock
from repro.crowd.faults import FaultProfile
from repro.crowd.hit import (
    Assignment,
    AssignmentStatus,
    HIT,
    HITContent,
    HITStatus,
)
from repro.crowd.oracle import AnswerOracle
from repro.crowd.pricing import DEFAULT_PRICING, PricingPolicy
from repro.crowd.worker_pool import WorkerPool
from repro.crowd.workers import WorkerModel
from repro.errors import CrowdError, HITError

__all__ = ["MTurkSimulator", "PlatformStats"]


@dataclass
class PlatformStats:
    """Aggregate requester-side statistics for one simulator instance."""

    hits_created: int = 0
    assignments_submitted: int = 0
    assignments_approved: int = 0
    assignments_rejected: int = 0
    total_rewards_paid: float = 0.0
    total_fees_paid: float = 0.0
    per_worker_assignments: dict[str, int] = field(default_factory=dict)
    # Fault-injection outcomes (all zero when faults are disabled).
    hits_expired: int = 0
    assignments_abandoned: int = 0
    duplicate_submissions_ignored: int = 0
    #: Submissions that arrived after their HIT left the OPEN state, for any
    #: reason — a deadline miss (the late_rate fault), a deadline expiry of
    #: a slow HIT, or a forced expire_hit.  "Late" means late relative to
    #: the HIT's end, not specifically the late_rate fault path.
    late_submissions_dropped: int = 0

    @property
    def total_cost(self) -> float:
        """Total requester spend (rewards plus platform fees)."""
        return self.total_rewards_paid + self.total_fees_paid


class MTurkSimulator:
    """An in-process stand-in for the MTurk requester API.

    Parameters
    ----------
    clock:
        Shared simulation clock; assignment completion is scheduled on it.
    worker_pool:
        The simulated worker population answering HITs.
    oracle:
        Ground-truth oracle the workers consult (supplied by the workload).
    pricing:
        Platform fee schedule.
    auto_approve:
        When True (the default, matching common requester practice for small
        HITs), submitted assignments are approved and paid immediately.
    faults:
        Optional :class:`~repro.crowd.faults.FaultProfile` enabling
        marketplace misbehaviour (abandonment, duplicates, late submissions,
        slow pickup, forced expiry).  With the default inert profile the
        simulator never draws from the fault stream, so existing runs stay
        byte-identical.
    """

    def __init__(
        self,
        clock: SimulationClock,
        worker_pool: WorkerPool,
        oracle: AnswerOracle,
        *,
        pricing: PricingPolicy = DEFAULT_PRICING,
        auto_approve: bool = True,
        faults: FaultProfile | None = None,
    ) -> None:
        self.clock = clock
        self.worker_pool = worker_pool
        self.oracle = oracle
        self.pricing = pricing
        self.auto_approve = auto_approve
        self.faults = faults if faults is not None else FaultProfile()
        self.stats = PlatformStats()
        self._hits: dict[str, HIT] = {}
        # Status index: the control plane's hot paths (open_hits, expiry
        # processing, the drain check) only ever want HITs in one state, so
        # each state keeps its own id->HIT dict and completed/expired HITs
        # leave the OPEN (hot) dict the moment they settle.  ``_hits`` stays
        # the master archive for id lookups and unfiltered listings.
        self._hits_by_status: dict[HITStatus, dict[str, HIT]] = {
            status: {} for status in HITStatus
        }
        # Assignment id -> owning HIT id, so reviewing an assignment does not
        # scan every HIT ever posted.
        self._assignment_hits: dict[str, str] = {}
        #: Live count of assignments in the ACCEPTED state (scheduled, not
        #: yet submitted/abandoned) — the O(1) ``outstanding_assignments``.
        self._outstanding = 0
        # Expiry-deadline heap of (expires_at, hit_id): earliest open-HIT
        # deadline without scanning, lazily pruned as HITs settle.
        self._expiry_heap: list[tuple[float, str]] = []
        # Plain int (not itertools.count) so a snapshot can capture and
        # restore the id sequence exactly.
        self._hit_seq = 0
        self._completion_listeners: list[Callable[[HIT, Assignment], None]] = []
        self._expiry_listeners: list[Callable[[HIT], None]] = []
        self._fault_rng = random.Random(self.faults.seed) if self.faults.enabled else None
        self._expiry_events: dict[str, ScheduledEvent] = {}

    # -- listeners -------------------------------------------------------------

    def on_assignment_submitted(self, callback: Callable[[HIT, Assignment], None]) -> None:
        """Register a callback fired whenever any assignment is submitted."""
        self._completion_listeners.append(callback)

    def on_hit_expired(self, callback: Callable[[HIT], None]) -> None:
        """Register a callback fired whenever a HIT expires.

        Fires for forced expiry (:meth:`expire_hit`) and, when faults are
        enabled, for automatic deadline expiry.  The engine's Task Manager
        uses this to requeue the stranded tasks.
        """
        self._expiry_listeners.append(callback)

    # -- HIT lifecycle ----------------------------------------------------------

    def create_hit(
        self,
        content: HITContent,
        *,
        reward: float,
        max_assignments: int = 1,
        lifetime: float | None = None,
        requester_annotation: str = "",
        excluded_workers: frozenset[str] = frozenset(),
    ) -> HIT:
        """Post a HIT and schedule its simulated completion.

        Every assignment is assigned a worker, a pick-up delay and a work
        duration up front; the corresponding submission events are placed on
        the clock.  Callers observe results by polling
        :meth:`submitted_assignments` or via :meth:`on_assignment_submitted`.
        ``lifetime`` defaults to the fault profile's override, then 24 h.
        """
        self.pricing.validate_reward(reward)
        if lifetime is None:
            if self.faults.enabled and self.faults.hit_lifetime is not None:
                lifetime = self.faults.hit_lifetime
            else:
                lifetime = 24 * 3600.0
        self._hit_seq += 1
        hit = HIT(
            hit_id=f"HIT{self._hit_seq:06d}",
            content=content,
            reward=reward,
            max_assignments=max_assignments,
            created_at=self.clock.now,
            lifetime=lifetime,
            requester_annotation=requester_annotation,
            excluded_workers=excluded_workers,
        )
        self._hits[hit.hit_id] = hit
        self._hits_by_status[HITStatus.OPEN][hit.hit_id] = hit
        heapq.heappush(self._expiry_heap, (hit.expires_at, hit.hit_id))
        self.stats.hits_created += 1
        self._schedule_assignments(hit)
        if self.faults.enabled:
            # Under fault injection HITs actually hit their deadline: an
            # expiry event fires expiry listeners so stranded tasks can be
            # requeued.  Without faults, deadlines are only enforced lazily
            # (a late pick-up is skipped at scheduling time), preserving the
            # seed behaviour and its event counts exactly.
            self._expiry_events[hit.hit_id] = self.clock.schedule_at(
                hit.expires_at,
                lambda hit=hit: self._expire_if_incomplete(hit),
                label=f"expire:{hit.hit_id}",
            )
        return hit

    def _schedule_assignments(self, hit: HIT) -> None:
        workers = self.worker_pool.select_workers(hit, hit.max_assignments)
        for worker in workers:
            self._schedule_one(hit, worker)

    def _schedule_one(self, hit: HIT, worker: WorkerModel) -> None:
        """Schedule one worker's pick-up and submission of ``hit``."""
        pickup = self.worker_pool.pickup_delay(hit)
        if self._fault_rng is not None:
            pickup *= self.faults.pickup_slowdown
            if self.faults.congestion_per_open_hit > 0.0:
                # Congestion: every *other* open HIT competes for the same
                # worker pool and stretches this pick-up proportionally.
                backlog = max(0, self.open_hit_count() - 1)
                pickup *= 1.0 + self.faults.congestion_per_open_hit * backlog
        accepted_at = self.clock.now + pickup
        if accepted_at > hit.expires_at:
            # The HIT expires before this worker would have picked it up.
            return
        assignment = Assignment(
            assignment_id=self.worker_pool.next_assignment_id(),
            hit_id=hit.hit_id,
            worker_id=worker.worker_id,
            accepted_at=accepted_at,
        )
        hit.assignments.append(assignment)
        self._assignment_hits[assignment.assignment_id] = hit.hit_id
        self._outstanding += 1
        rng = self.worker_pool.assignment_rng(assignment.assignment_id)
        duration = worker.work_duration(hit.content, rng)
        submit_at = accepted_at + duration
        if self._fault_rng is not None:
            if self._fault_rng.random() < self.faults.abandonment_rate:
                self.clock.schedule_at(
                    submit_at,
                    lambda: self._abandon(hit, assignment),
                    label=f"abandon:{assignment.assignment_id}",
                )
                return
            if self._fault_rng.random() < self.faults.late_rate:
                # The submission slips past the deadline (kept if the HIT is
                # somehow still open — e.g. a generous lifetime).
                submit_at = max(submit_at, hit.expires_at + duration)

        def _complete(hit=hit, assignment=assignment, worker=worker, rng=rng) -> None:
            if assignment.status is not AssignmentStatus.ACCEPTED:
                # A duplicate client retry of an already-submitted form (a
                # duplicate stays a duplicate even once the HIT completed).
                self.stats.duplicate_submissions_ignored += 1
                return
            if hit.status is not HITStatus.OPEN:
                # The HIT expired (or was disposed) before this submission
                # arrived; the work is dropped unpaid, like real MTurk.
                self.stats.late_submissions_dropped += 1
                return
            answers = worker.answer(hit.content, self.oracle, rng)
            assignment.submit(answers, at=self.clock.now)
            self._outstanding -= 1
            self.stats.assignments_submitted += 1
            self.stats.per_worker_assignments[worker.worker_id] = (
                self.stats.per_worker_assignments.get(worker.worker_id, 0) + 1
            )
            if self.auto_approve:
                self._approve(hit, assignment)
            if hit.is_fully_submitted and hit.status is HITStatus.OPEN:
                self._set_status(hit, HITStatus.COMPLETED)
                self._cancel_expiry(hit)
            if self._fault_rng is not None and self._fault_rng.random() < self.faults.duplicate_rate:
                # The worker's client re-posts the same form moments later;
                # the guard above swallows it without paying twice.
                self.clock.schedule_in(
                    1.0, _complete, label=f"duplicate:{assignment.assignment_id}"
                )
            for listener in self._completion_listeners:
                listener(hit, assignment)

        self.clock.schedule_at(submit_at, _complete, label=f"submit:{assignment.assignment_id}")

    def _abandon(self, hit: HIT, assignment: Assignment) -> None:
        """A worker returns an accepted assignment; recruit a replacement."""
        assignment.abandon()
        self._outstanding -= 1
        self.stats.assignments_abandoned += 1
        if hit.status is not HITStatus.OPEN or self.clock.now >= hit.expires_at:
            return
        replacement = self.worker_pool.select_replacement(hit)
        if replacement is not None:
            self._schedule_one(hit, replacement)

    def _expire_if_incomplete(self, hit: HIT) -> None:
        """Deadline event: expire the HIT if it is still waiting on workers."""
        self._expiry_events.pop(hit.hit_id, None)
        if hit.status is HITStatus.OPEN:
            self.expire_hit(hit.hit_id)

    def _cancel_expiry(self, hit: HIT) -> None:
        event = self._expiry_events.pop(hit.hit_id, None)
        if event is not None:
            event.cancel()

    def _set_status(self, hit: HIT, status: HITStatus) -> None:
        """Move a HIT between the per-status index dicts."""
        self._hits_by_status[hit.status].pop(hit.hit_id, None)
        hit.status = status
        self._hits_by_status[status][hit.hit_id] = hit

    def _approve(self, hit: HIT, assignment: Assignment) -> None:
        assignment.approve()
        self.stats.assignments_approved += 1
        self.stats.total_rewards_paid += hit.reward
        self.stats.total_fees_paid += self.pricing.fee(hit.reward)

    # -- requester API -----------------------------------------------------------

    def get_hit(self, hit_id: str) -> HIT:
        """Fetch a HIT by id."""
        try:
            return self._hits[hit_id]
        except KeyError:
            raise HITError(f"unknown HIT {hit_id!r}") from None

    def list_hits(self, status: HITStatus | None = None) -> list[HIT]:
        """List HITs, optionally filtered by status (via the status index)."""
        if status is not None:
            return list(self._hits_by_status[status].values())
        return list(self._hits.values())

    def submitted_assignments(self, hit_id: str) -> list[Assignment]:
        """Assignments of a HIT that have been submitted (or reviewed)."""
        return self.get_hit(hit_id).submitted_assignments

    def approve_assignment(self, assignment_id: str) -> None:
        """Manually approve a submitted assignment (when auto-approve is off)."""
        hit, assignment = self._find_assignment(assignment_id)
        self._approve(hit, assignment)

    def reject_assignment(self, assignment_id: str) -> None:
        """Reject a submitted assignment; the worker is not paid."""
        _hit, assignment = self._find_assignment(assignment_id)
        assignment.reject()
        self.stats.assignments_rejected += 1

    def _find_assignment(self, assignment_id: str) -> tuple[HIT, Assignment]:
        hit_id = self._assignment_hits.get(assignment_id)
        if hit_id is None:
            raise CrowdError(f"unknown assignment {assignment_id!r}")
        hit = self._hits[hit_id]
        for assignment in hit.assignments:
            if assignment.assignment_id == assignment_id:
                return hit, assignment
        raise CrowdError(f"unknown assignment {assignment_id!r}")  # pragma: no cover

    def expire_hit(self, hit_id: str) -> None:
        """Expire a HIT: pending (unsubmitted) assignments never arrive.

        Fires the expiry listeners so the owner of the HIT's tasks can react
        (the engine's Task Manager requeues them).  Submissions already in
        flight arrive late and are dropped unpaid.
        """
        hit = self.get_hit(hit_id)
        if hit.status is not HITStatus.OPEN:
            return
        self._set_status(hit, HITStatus.EXPIRED)
        self.stats.hits_expired += 1
        self._cancel_expiry(hit)
        for listener in self._expiry_listeners:
            listener(hit)

    def dispose_hit(self, hit_id: str) -> None:
        """Dispose of a completed or expired HIT."""
        hit = self.get_hit(hit_id)
        if hit.status is HITStatus.OPEN:
            raise HITError(f"cannot dispose open HIT {hit_id}")
        self._cancel_expiry(hit)
        self._set_status(hit, HITStatus.DISPOSED)

    # -- aggregate accounting ------------------------------------------------------

    @property
    def total_cost(self) -> float:
        """Total requester spend so far (rewards + fees)."""
        return self.stats.total_cost

    def open_hits(self) -> list[HIT]:
        """HITs still waiting for assignments (O(open), not O(ever posted))."""
        return self.list_hits(HITStatus.OPEN)

    def open_hit_count(self) -> int:
        """Number of HITs still waiting for assignments, without a copy."""
        return len(self._hits_by_status[HITStatus.OPEN])

    def next_expiry_at(self) -> float | None:
        """Earliest deadline among open HITs, or None when none are open.

        Served from the expiry-deadline heap (entries for HITs that settled
        before their deadline are pruned lazily), so peeking never scans the
        HIT archive.
        """
        open_hits = self._hits_by_status[HITStatus.OPEN]
        while self._expiry_heap and self._expiry_heap[0][1] not in open_hits:
            heapq.heappop(self._expiry_heap)
        return self._expiry_heap[0][0] if self._expiry_heap else None

    def outstanding_assignments(self) -> int:
        """Number of scheduled assignments not yet submitted (live counter)."""
        return self._outstanding

    def estimate_cost(self, reward: float, hit_count: int, assignments: int) -> float:
        """Requester-side estimate used by the optimizer's cost model."""
        return self.pricing.assignment_cost(reward) * hit_count * assignments

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Evolved platform state for a quiescent-point snapshot.

        The HIT archive is deliberately *not* captured: live HITs are
        clock-heap closures that cannot serialize, and snapshots are only
        taken at quiescence, when every remaining archived HIT belongs to
        a terminal query and can never influence execution again (only
        the dashboard and the post-run invariant audit read the archive).
        What must survive is the cumulative accounting, the id sequence
        and the fault stream position.
        """
        from dataclasses import asdict

        from repro.storage.snapshot import pack_rng_state

        return {
            "stats": asdict(self.stats),
            "hit_seq": self._hit_seq,
            "fault_rng": (
                pack_rng_state(self._fault_rng.getstate())
                if self._fault_rng is not None
                else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.storage.snapshot import unpack_rng_state

        self.stats = PlatformStats(**state["stats"])
        self._hit_seq = int(state["hit_seq"])
        if state["fault_rng"] is not None:
            if self._fault_rng is None:
                raise CrowdError(
                    "snapshot has a fault stream but this simulator has faults disabled"
                )
            self._fault_rng.setstate(unpack_rng_state(state["fault_rng"]))

    def __repr__(self) -> str:
        return (
            f"MTurkSimulator(hits={self.stats.hits_created}, "
            f"submitted={self.stats.assignments_submitted}, "
            f"cost=${self.total_cost:.2f})"
        )


def _unused(_: Iterable) -> None:  # pragma: no cover - keeps imports tidy
    return None
