"""Shared experiment harness used by the benchmark suite."""

from repro.experiments.harness import (
    QUERY1_SQL,
    QUERY2_SQL,
    ExperimentRun,
    build_celebrity_engine,
    build_companies_engine,
    build_products_engine,
)
from repro.experiments.report import format_table, print_table

__all__ = [
    "ExperimentRun",
    "build_companies_engine",
    "build_celebrity_engine",
    "build_products_engine",
    "QUERY1_SQL",
    "QUERY2_SQL",
    "format_table",
    "print_table",
]
