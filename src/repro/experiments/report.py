"""Small text-table reporting helpers shared by the benchmark harness.

Every benchmark prints the rows/series the corresponding figure or dashboard
panel of the paper would show; these helpers keep that output consistent and
readable in benchmark logs.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "print_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, columns: Sequence[str], rows: Sequence[Mapping[str, Any]]) -> str:
    """Format rows (mappings keyed by column name) as an aligned text table."""
    rendered_rows = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(cells[index]) for cells in rendered_rows)) if rendered_rows else len(column)
        for index, column in enumerate(columns)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(column.ljust(widths[index]) for index, column in enumerate(columns)))
    lines.append("  ".join("-" * widths[index] for index in range(len(columns))))
    for cells in rendered_rows:
        lines.append("  ".join(cells[index].ljust(widths[index]) for index in range(len(columns))))
    return "\n".join(lines)


def print_table(title: str, columns: Sequence[str], rows: Sequence[Mapping[str, Any]]) -> None:
    """Print :func:`format_table` output with surrounding blank lines."""
    print()
    print(format_table(title, columns, rows))
    print()
