"""Experiment harness: canned engine setups for the benchmark suite.

Each helper builds a fresh :class:`~repro.engine.QurkEngine` wired to one of
the synthetic workloads, so benchmarks stay short and the configuration each
experiment sweeps (assignments, batch sizes, join interfaces, spammer
fractions, cache/model toggles) is explicit at the call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.exec.context import QueryConfig
from repro.crowd.faults import FaultProfile
from repro.crowd.quality import QualityConfig
from repro.crowd.worker_pool import PopulationMix
from repro.engine import QurkEngine
from repro.workloads.celebrities import CelebrityWorkload
from repro.workloads.companies import CompaniesWorkload
from repro.workloads.products import ProductsWorkload

__all__ = [
    "ExperimentRun",
    "build_companies_engine",
    "build_celebrity_engine",
    "build_products_engine",
    "QUERY1_SQL",
    "QUERY2_SQL",
]

#: Query 1 from the paper (schema extension via findCEO).
QUERY1_SQL = (
    "SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone "
    "FROM companies"
)

#: Query 2 from the paper (celebrity image join via samePerson).
QUERY2_SQL = (
    "SELECT celebrities.name, spottedstars.id "
    "FROM celebrities, spottedstars "
    "WHERE samePerson(celebrities.image, spottedstars.image)"
)


@dataclass
class ExperimentRun:
    """One engine + workload pairing, plus anything the benchmark measures."""

    engine: QurkEngine
    workload: Any
    metadata: dict[str, Any]


def build_companies_engine(
    *,
    n_companies: int = 50,
    assignments: int = 3,
    enable_cache: bool = True,
    seed: int = 7,
    population_mix: PopulationMix | None = None,
    adaptive: bool = False,
    fault_profile: FaultProfile | None = None,
    quality: QualityConfig | None = None,
    engine_kwargs: dict[str, Any] | None = None,
) -> ExperimentRun:
    """Engine prepared for Query 1 (findCEO schema extension)."""
    workload = CompaniesWorkload(n_companies=n_companies, seed=seed)
    engine = QurkEngine(
        seed=seed,
        enable_cache=enable_cache,
        enable_task_model=False,
        population_mix=population_mix,
        default_query_config=QueryConfig(adaptive=adaptive),
        fault_profile=fault_profile,
        quality=quality,
        **(engine_kwargs or {}),
    )
    workload.install(engine.database)
    engine.register_oracle("findCEO", workload.oracle())
    engine.define_task(workload.findceo_spec(assignments=assignments))
    return ExperimentRun(engine, workload, {"n_companies": n_companies, "assignments": assignments})


def build_celebrity_engine(
    *,
    n_celebrities: int = 20,
    n_spotted: int = 20,
    interface: str = "columns",
    assignments: int = 3,
    left_per_hit: int = 3,
    right_per_hit: int = 3,
    pairs_per_hit: int = 1,
    use_prefilter: bool = False,
    prefilter_threshold: float = 0.6,
    enable_task_model: bool = False,
    seed: int = 11,
    population_mix: PopulationMix | None = None,
    adaptive: bool = False,
    fault_profile: FaultProfile | None = None,
    quality: QualityConfig | None = None,
    engine_kwargs: dict[str, Any] | None = None,
) -> ExperimentRun:
    """Engine prepared for Query 2 (celebrity join) with a chosen interface."""
    workload = CelebrityWorkload(n_celebrities=n_celebrities, n_spotted=n_spotted, seed=seed)
    engine = QurkEngine(
        seed=seed,
        enable_cache=False,
        enable_task_model=enable_task_model,
        population_mix=population_mix,
        default_query_config=QueryConfig(adaptive=adaptive),
        fault_profile=fault_profile,
        quality=quality,
        **(engine_kwargs or {}),
    )
    workload.install(engine.database)
    engine.register_oracle("samePerson", workload.oracle())
    spec = workload.sameperson_spec(
        interface="columns" if interface == "columns" else "pairs",
        assignments=assignments,
        left_per_hit=left_per_hit,
        right_per_hit=right_per_hit,
        batch_size=pairs_per_hit,
    )
    engine.define_task(
        spec,
        left_payload=workload.left_payload,
        right_payload=workload.right_payload,
        prefilter=workload.feature_prefilter(prefilter_threshold) if use_prefilter else None,
        learnable=enable_task_model,
    )
    return ExperimentRun(
        engine,
        workload,
        {
            "n_celebrities": n_celebrities,
            "n_spotted": n_spotted,
            "interface": interface,
            "assignments": assignments,
        },
    )


def build_products_engine(
    *,
    n_products: int = 40,
    assignments: int = 3,
    filter_batch: int = 1,
    sort_batch: int = 1,
    enable_task_model: bool = False,
    seed: int = 13,
    population_mix: PopulationMix | None = None,
    adaptive: bool = False,
    fault_profile: FaultProfile | None = None,
    quality: QualityConfig | None = None,
    engine_kwargs: dict[str, Any] | None = None,
) -> ExperimentRun:
    """Engine prepared for filter / sort / batching experiments on products.

    ``engine_kwargs`` passes extra :class:`QurkEngine` knobs straight
    through (admission limits, circuit breaker config, ...) without the
    harness needing to re-declare every engine parameter.
    """
    workload = ProductsWorkload(n_products=n_products, seed=seed)
    engine = QurkEngine(
        seed=seed,
        enable_cache=False,
        enable_task_model=enable_task_model,
        population_mix=population_mix,
        default_query_config=QueryConfig(adaptive=adaptive),
        fault_profile=fault_profile,
        quality=quality,
        **(engine_kwargs or {}),
    )
    workload.install(engine.database)
    if quality is not None and quality.gold_frequency > 0:
        engine.register_gold("isTargetColor", workload.gold_questions())
    oracle = workload.oracle()
    for task_name in ("isTargetColor", "biggerItem", "rateSize"):
        engine.register_oracle(task_name, oracle)
    engine.define_task(
        workload.color_filter_spec(assignments=assignments, batch_size=filter_batch),
        learnable=enable_task_model,
    )
    name_payload = lambda row: {"name": row["name"]}  # noqa: E731 - tiny adapter
    engine.define_task(
        workload.size_compare_spec(assignments=assignments, batch_size=sort_batch),
        payload=name_payload,
        learnable=False,
    )
    engine.define_task(
        workload.size_rating_spec(assignments=assignments, batch_size=sort_batch),
        payload=name_payload,
        learnable=False,
    )
    return ExperimentRun(
        engine, workload, {"n_products": n_products, "assignments": assignments}
    )
