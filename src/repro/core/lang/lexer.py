"""Tokenizer shared by the SQL and TASK-definition parsers."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its position (1-based line / column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        if value is None:
            return True
        if token_type is TokenType.IDENT:
            return self.value.upper() == value.upper()
        return self.value == value


_SYMBOLS = set("(),.:;[]%")
_OPERATOR_STARTS = set("=<>!+-*/")
_TWO_CHAR_OPERATORS = {"<=", ">=", "!=", "<>"}


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL / TASK text.  Comments (``--`` to end of line) are skipped."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line=line, column=column)

    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "-" and index + 1 < length and text[index + 1] == "-":
            while index < length and text[index] != "\n":
                index += 1
            continue
        start_line, start_column = line, column
        if char in "\"'":
            quote = char
            index += 1
            column += 1
            value_chars: list[str] = []
            while index < length and text[index] != quote:
                if text[index] == "\n":
                    raise error("unterminated string literal")
                value_chars.append(text[index])
                index += 1
                column += 1
            if index >= length:
                raise error("unterminated string literal")
            index += 1
            column += 1
            tokens.append(Token(TokenType.STRING, "".join(value_chars), start_line, start_column))
            continue
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            number_chars = []
            seen_dot = False
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # A dot not followed by a digit is field access, not a decimal point.
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                number_chars.append(text[index])
                index += 1
                column += 1
            tokens.append(Token(TokenType.NUMBER, "".join(number_chars), start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            ident_chars = []
            while index < length and (text[index].isalnum() or text[index] == "_"):
                ident_chars.append(text[index])
                index += 1
                column += 1
            tokens.append(Token(TokenType.IDENT, "".join(ident_chars), start_line, start_column))
            continue
        if char in _OPERATOR_STARTS:
            two = text[index:index + 2]
            if two in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, "!=" if two == "<>" else two, start_line, start_column))
                index += 2
                column += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, char, start_line, start_column))
                index += 1
                column += 1
            continue
        if char in _SYMBOLS:
            tokens.append(Token(TokenType.SYMBOL, char, start_line, start_column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
