"""The Qurk query language front end: SQL dialect plus the TASK UDF language."""

from repro.core.lang.ast import OrderItem, SelectItem, SelectStatement, TableRef
from repro.core.lang.lexer import Token, TokenType, tokenize
from repro.core.lang.sql_parser import parse_select
from repro.core.lang.task_parser import parse_task, parse_tasks

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_select",
    "parse_task",
    "parse_tasks",
    "SelectStatement",
    "SelectItem",
    "TableRef",
    "OrderItem",
]
