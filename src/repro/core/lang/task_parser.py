"""Parser for the TASK definition language (Task 1 / Task 2 in the paper).

.. code-block:: text

    TASK findCEO(String companyName)
    RETURNS (String CEO, String Phone):
        TaskType: Question
        Text: "Find the CEO and the CEO's phone number for the company %s", companyName
        Response: Form(("CEO", String), ("Phone", String))
        Price: 0.02
        Assignments: 3

    TASK samePerson(Image[] celebs, Image[] spotted)
    RETURNS BOOL:
        TaskType: JoinPredicate
        Text: "Drag a picture of any Celebrity ..."
        Response: JoinColumns("Celebrity", celebs, "Spotted Star", spotted)

``Price``, ``Assignments``, ``BatchSize`` and ``Combiner`` are optional tuning
fields beyond the paper's examples; they map onto the corresponding
:class:`~repro.core.tasks.spec.TaskSpec` attributes.
"""

from __future__ import annotations

from repro.core.lang.lexer import Token, TokenType, tokenize
from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    Parameter,
    RatingResponse,
    ResponseSpec,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.errors import ParseError

__all__ = ["parse_task", "parse_tasks"]


def parse_task(text: str) -> TaskSpec:
    """Parse a single TASK definition."""
    specs = parse_tasks(text)
    if len(specs) != 1:
        raise ParseError(f"expected exactly one TASK definition, found {len(specs)}")
    return specs[0]


def parse_tasks(text: str) -> list[TaskSpec]:
    """Parse one or more TASK definitions from ``text``."""
    return _TaskParser(text).parse_all()


class _TaskParser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # -- token helpers ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, line=token.line, column=token.column)

    def _expect_ident(self, value: str | None = None) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT or (
            value is not None and token.value.upper() != value.upper()
        ):
            expected = value or "an identifier"
            raise self._error(f"expected {expected}, found {token.value!r}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.matches(TokenType.SYMBOL, symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().matches(TokenType.SYMBOL, symbol):
            self._advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------------------

    def parse_all(self) -> list[TaskSpec]:
        specs = []
        while self._peek().type is not TokenType.EOF:
            specs.append(self._task())
        if not specs:
            raise self._error("no TASK definition found")
        return specs

    def _task(self) -> TaskSpec:
        self._expect_ident("TASK")
        name = self._expect_ident().value
        parameters = self._parameters()
        self._expect_ident("RETURNS")
        returns = self._returns()
        self._expect_symbol(":")
        fields = self._fields()

        task_type_text = fields.get("tasktype")
        if task_type_text is None:
            raise self._error(f"TASK {name}: missing TaskType field")
        task_type = TaskType.from_string(task_type_text)
        text_value, _text_args = fields.get("text", ("", ()))
        response = fields.get("response")
        if response is None:
            response = self._default_response(task_type)
        spec_kwargs = {}
        if "price" in fields:
            spec_kwargs["price"] = float(fields["price"])
        if "assignments" in fields:
            spec_kwargs["assignments"] = int(fields["assignments"])
        if "batchsize" in fields:
            spec_kwargs["batch_size"] = int(fields["batchsize"])
        if "combiner" in fields:
            spec_kwargs["combiner"] = fields["combiner"]
        return TaskSpec(
            name=name,
            task_type=task_type,
            text=text_value,
            response=response,
            parameters=tuple(parameters),
            returns=tuple(returns),
            **spec_kwargs,
        )

    @staticmethod
    def _default_response(task_type: TaskType) -> ResponseSpec:
        if task_type in (TaskType.FILTER, TaskType.JOIN_PREDICATE):
            return YesNoResponse()
        if task_type is TaskType.RANK:
            return ComparisonResponse()
        if task_type is TaskType.RATING:
            return RatingResponse()
        raise ParseError(f"TaskType {task_type.value} requires an explicit Response field")

    def _parameters(self) -> list[Parameter]:
        self._expect_symbol("(")
        parameters: list[Parameter] = []
        if not self._peek().matches(TokenType.SYMBOL, ")"):
            parameters.append(self._parameter())
            while self._accept_symbol(","):
                parameters.append(self._parameter())
        self._expect_symbol(")")
        return parameters

    def _parameter(self) -> Parameter:
        type_name = self._expect_ident().value
        if self._accept_symbol("["):
            self._expect_symbol("]")
            type_name += "[]"
        name = self._expect_ident().value
        return Parameter(name=name, type_name=type_name)

    def _returns(self) -> list[ReturnField]:
        token = self._peek()
        if token.matches(TokenType.IDENT, "BOOL"):
            self._advance()
            return []
        self._expect_symbol("(")
        fields = [self._return_field()]
        while self._accept_symbol(","):
            fields.append(self._return_field())
        self._expect_symbol(")")
        return fields

    def _return_field(self) -> ReturnField:
        type_name = self._expect_ident().value
        name = self._expect_ident().value
        return ReturnField(name=name, type_name=type_name)

    # -- TASK body fields -----------------------------------------------------------------

    def _fields(self) -> dict:
        fields: dict = {}
        while self._peek().type is TokenType.IDENT and self._peek(1).matches(TokenType.SYMBOL, ":"):
            key_token = self._advance()
            key = key_token.value.lower()
            if key == "task":
                # The start of the next TASK definition, not a field.
                self.position -= 1
                break
            self._expect_symbol(":")
            if key == "tasktype":
                fields[key] = self._expect_ident().value
            elif key == "text":
                fields[key] = self._text_field()
            elif key == "response":
                fields[key] = self._response_field()
            elif key in ("price", "assignments", "batchsize"):
                fields[key] = self._number()
            elif key == "combiner":
                fields[key] = self._expect_ident().value
            else:
                raise self._error(f"unknown TASK field {key_token.value!r}", key_token)
        return fields

    def _number(self) -> str:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise self._error(f"expected a number, found {token.value!r}")
        self._advance()
        return token.value

    def _text_field(self) -> tuple[str, tuple[str, ...]]:
        parts: list[str] = []
        token = self._peek()
        if token.type is not TokenType.STRING:
            raise self._error("Text field must start with a string literal")
        while self._peek().type is TokenType.STRING:
            parts.append(self._advance().value)
        args: list[str] = []
        while self._accept_symbol(","):
            args.append(self._expect_ident().value)
        return "".join(parts), tuple(args)

    def _response_field(self) -> ResponseSpec:
        kind = self._expect_ident().value.lower()
        if kind == "form":
            return self._form_response()
        if kind == "yesno":
            return YesNoResponse()
        if kind == "joincolumns":
            return self._join_columns_response()
        if kind == "comparison":
            return ComparisonResponse()
        if kind == "rating":
            return self._rating_response()
        raise self._error(f"unknown Response type {kind!r}")

    def _form_response(self) -> FormResponse:
        self._expect_symbol("(")
        fields: list[tuple[str, str]] = []
        fields.append(self._form_field())
        while self._accept_symbol(","):
            fields.append(self._form_field())
        self._expect_symbol(")")
        return FormResponse(tuple(fields))

    def _form_field(self) -> tuple[str, str]:
        self._expect_symbol("(")
        name_token = self._peek()
        if name_token.type is TokenType.STRING:
            self._advance()
            name = name_token.value
        else:
            name = self._expect_ident().value
        self._expect_symbol(",")
        type_name = self._expect_ident().value
        self._expect_symbol(")")
        return name, type_name

    def _join_columns_response(self) -> JoinColumnsResponse:
        self._expect_symbol("(")
        left_label = self._label()
        self._expect_symbol(",")
        self._expect_ident()  # the left table-valued argument name
        self._expect_symbol(",")
        right_label = self._label()
        self._expect_symbol(",")
        self._expect_ident()  # the right table-valued argument name
        left_per_hit = 3
        right_per_hit = 3
        if self._accept_symbol(","):
            left_per_hit = int(self._number())
            self._expect_symbol(",")
            right_per_hit = int(self._number())
        self._expect_symbol(")")
        return JoinColumnsResponse(
            left_label, right_label, left_per_hit=left_per_hit, right_per_hit=right_per_hit
        )

    def _label(self) -> str:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        return self._expect_ident().value

    def _rating_response(self) -> RatingResponse:
        if self._accept_symbol("("):
            low = int(self._number())
            self._expect_symbol(",")
            high = int(self._number())
            self._expect_symbol(")")
            return RatingResponse((low, high))
        return RatingResponse()
