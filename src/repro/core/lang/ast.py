"""Abstract syntax for the SQL dialect (Section 3 of the paper).

Expressions reuse :mod:`repro.storage.expressions` so that locally evaluable
parts of a query can be executed directly; crowd UDF calls appear as
:class:`~repro.storage.expressions.FunctionCall` nodes without an
implementation, which the planner later rewrites into crowd operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.expressions import Expression

__all__ = ["SelectItem", "TableRef", "OrderItem", "SelectStatement"]


@dataclass(frozen=True)
class SelectItem:
    """One entry of the SELECT list: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def output_name(self) -> str:
        """Column name this item produces in the result schema."""
        return self.alias if self.alias else str(self.expression)


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, optionally aliased."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """Name other clauses use to refer to this table."""
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key (an expression, possibly a crowd Rank UDF call)."""

    expression: Expression
    ascending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT query.

    ``budget`` is a Qurk extension (``BUDGET 5.00``) giving the query's
    monetary budget in dollars; the dashboard and the ledger enforce it.
    """

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where: Expression | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    budget: float | None = None
    raw_sql: str = field(default="", compare=False)
