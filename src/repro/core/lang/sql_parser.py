"""Recursive-descent parser for the Qurk SQL dialect.

The dialect covers what the paper's examples need (plus the usual tail):

.. code-block:: sql

    SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone
    FROM companies

    SELECT celebrities.name, spottedstars.id
    FROM celebrities, spottedstars
    WHERE samePerson(celebrities.image, spottedstars.image)

plus ``GROUP BY``, ``ORDER BY <expr> [ASC|DESC]``, ``LIMIT n`` and the Qurk
extension ``BUDGET <dollars>``.
"""

from __future__ import annotations

from repro.core.lang.ast import OrderItem, SelectItem, SelectStatement, TableRef
from repro.core.lang.lexer import Token, TokenType, tokenize
from repro.errors import ParseError
from repro.storage.expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FieldAccess,
    FunctionCall,
    Literal,
    Not,
)

__all__ = ["parse_select"]

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "BUDGET",
    "AND", "OR", "NOT", "AS", "ASC", "DESC", "TRUE", "FALSE", "NULL",
}


def parse_select(sql: str) -> SelectStatement:
    """Parse a SELECT statement; raises :class:`ParseError` on malformed input."""
    return _Parser(sql).parse()


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, line=token.line, column=token.column)

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches(TokenType.IDENT, keyword):
            raise self._error(f"expected {keyword}, found {token.value!r}")
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.matches(TokenType.SYMBOL, symbol):
            raise self._error(f"expected {symbol!r}, found {token.value!r}")
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches(TokenType.IDENT, keyword):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().matches(TokenType.SYMBOL, symbol):
            self._advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        select_items = self._select_list()
        self._expect_keyword("FROM")
        tables = self._table_list()
        where = None
        group_by: tuple[str, ...] = ()
        order_by: tuple[OrderItem, ...] = ()
        limit = None
        budget = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        if self._peek().matches(TokenType.IDENT, "GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by = tuple(self._column_name_list())
        if self._peek().matches(TokenType.IDENT, "ORDER"):
            self._advance()
            self._expect_keyword("BY")
            order_by = tuple(self._order_list())
        if self._accept_keyword("LIMIT"):
            limit = int(self._number_token())
        if self._accept_keyword("BUDGET"):
            budget = float(self._number_token())
        self._accept_symbol(";")
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise self._error(f"unexpected trailing input {trailing.value!r}", trailing)
        return SelectStatement(
            select_items=tuple(select_items),
            from_tables=tuple(tables),
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            budget=budget,
            raw_sql=self.sql,
        )

    def _number_token(self) -> str:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise self._error(f"expected a number, found {token.value!r}")
        self._advance()
        return token.value

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expression = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.type is not TokenType.IDENT:
                raise self._error("expected an alias after AS")
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _table_list(self) -> list[TableRef]:
        tables = [self._table_ref()]
        while self._accept_symbol(","):
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> TableRef:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected a table name")
        name = self._advance().value
        alias = None
        next_token = self._peek()
        if next_token.type is TokenType.IDENT and next_token.value.upper() not in _KEYWORDS:
            alias = self._advance().value
        return TableRef(name, alias)

    def _column_name_list(self) -> list[str]:
        names = [self._qualified_name()]
        while self._accept_symbol(","):
            names.append(self._qualified_name())
        return names

    def _qualified_name(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error("expected a column name")
        name = self._advance().value
        while self._peek().matches(TokenType.SYMBOL, ".") and self._peek(1).type is TokenType.IDENT:
            self._advance()
            name += "." + self._advance().value
        return name

    def _order_list(self) -> list[OrderItem]:
        items = [self._order_item()]
        while self._accept_symbol(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> OrderItem:
        expression = self._expression()
        ascending = False
        if self._accept_keyword("ASC"):
            ascending = True
        elif self._accept_keyword("DESC"):
            ascending = False
        return OrderItem(expression, ascending)

    # -- expressions (precedence: OR < AND < NOT < comparison < additive < multiplicative < unary) --

    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        left = self._and_expression()
        while self._peek().matches(TokenType.IDENT, "OR"):
            self._advance()
            left = BooleanOp("or", left, self._and_expression())
        return left

    def _and_expression(self) -> Expression:
        left = self._not_expression()
        while self._peek().matches(TokenType.IDENT, "AND"):
            self._advance()
            left = BooleanOp("and", left, self._not_expression())
        return left

    def _not_expression(self) -> Expression:
        if self._peek().matches(TokenType.IDENT, "NOT"):
            self._advance()
            return Not(self._not_expression())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._additive()
            return Comparison(token.value, left, right)
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("+", "-"):
            operator = self._advance().value
            left = Arithmetic(operator, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while self._peek().type is TokenType.OPERATOR and self._peek().value in ("*", "/"):
            operator = self._advance().value
            left = Arithmetic(operator, left, self._unary())
        return left

    def _unary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            operand = self._unary()
            return Arithmetic("-", Literal(0), operand)
        return self._postfix()

    def _postfix(self) -> Expression:
        expression = self._primary()
        while self._peek().matches(TokenType.SYMBOL, ".") and self._peek(1).type is TokenType.IDENT:
            # Field access on a function call (findCEO(x).CEO); plain column
            # qualification is handled inside _primary.
            self._advance()
            field_name = self._advance().value
            expression = FieldAccess(expression, field_name)
        return expression

    def _primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.matches(TokenType.SYMBOL, "("):
            self._advance()
            expression = self._expression()
            self._expect_symbol(")")
            return expression
        if token.type is TokenType.IDENT:
            upper = token.value.upper()
            if upper == "TRUE":
                self._advance()
                return Literal(True)
            if upper == "FALSE":
                self._advance()
                return Literal(False)
            if upper == "NULL":
                self._advance()
                return Literal(None)
            return self._name_or_call()
        raise self._error(f"unexpected token {token.value!r} in expression")

    def _name_or_call(self) -> Expression:
        name = self._advance().value
        if self._peek().matches(TokenType.SYMBOL, "("):
            self._advance()
            args: list[Expression] = []
            if not self._peek().matches(TokenType.SYMBOL, ")"):
                args.append(self._expression())
                while self._accept_symbol(","):
                    args.append(self._expression())
            self._expect_symbol(")")
            return FunctionCall(name, tuple(args))
        # Qualified column name: table.column (one level of qualification).
        if self._peek().matches(TokenType.SYMBOL, ".") and self._peek(1).type is TokenType.IDENT:
            follower = self._peek(2)
            # Only treat it as qualification when it is not a call like x.f(...)
            self._advance()
            column = self._advance().value
            if self._peek().matches(TokenType.SYMBOL, "("):
                raise self._error("method-style calls are not supported")
            _ = follower
            return ColumnRef(f"{name}.{column}")
        return ColumnRef(name)
