"""Crowd-powered join (Query 2 / Task 2 of the paper).

The join predicate (``samePerson(celebrities.image, spottedstars.image)``) is
answered by turkers.  The naive implementation asks one HIT per pair of the
cross product — "extraordinary monetary cost" (Section 1) — so this operator
implements the interfaces the demo lets the audience explore (Section 4.1):

* ``PAIRWISE`` — one yes/no question per pair; the Task Manager may batch
  several pairs into one HIT (naive batching).
* ``COLUMNS`` — the two-column drag-and-drop interface of Figure 3: blocks of
  the cross product are shown as a left column and a right column, so one HIT
  covers ``left_per_hit × right_per_hit`` comparisons (smart batching).

Both modes optionally apply a *pre-filter* — a locally evaluable predicate on
pairs (e.g. a feature-distance threshold) — which reduces the cross-product
size before any money is spent (Section 4.1's "filtering-based reduction in
cross-product size").
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.core.operators.base import Operator
from repro.core.tasks.batching import FixedBatching
from repro.core.tasks.spec import JoinColumnsResponse, TaskSpec
from repro.core.tasks.task import Task, TaskKind, TaskResult
from repro.storage.batch import RowBatch
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["JoinStrategy", "CrowdJoinOperator"]

PayloadFn = Callable[[Row], dict]
PrefilterFn = Callable[[Row, Row], bool]


class JoinStrategy(enum.Enum):
    """How the cross product is presented to workers."""

    PAIRWISE = "pairwise"
    COLUMNS = "columns"


def _default_payload(row: Row) -> dict:
    return {"row": row.to_dict()}


class CrowdJoinOperator(Operator):
    """Joins its two inputs on a crowd-evaluated predicate.

    Parameters
    ----------
    spec:
        A ``TaskType: JoinPredicate`` spec.
    left_schema, right_schema:
        Schemas of the two children (left is child 0, right is child 1).
    strategy:
        Pairwise yes/no questions or the two-column block interface.
    pairs_per_hit:
        For PAIRWISE: how many pairs the Task Manager batches into one HIT.
    left_per_hit, right_per_hit:
        For COLUMNS: block dimensions; default from the spec's JoinColumns
        response.
    left_payload, right_payload:
        Functions mapping a row to the payload workers (and the oracle) see.
    prefilter:
        Optional machine-evaluable pair predicate applied before asking the
        crowd; pairs failing it are assumed non-matching for free.
    """

    IS_CROWD = True

    def __init__(
        self,
        spec: TaskSpec,
        left_schema: Schema,
        right_schema: Schema,
        *,
        strategy: JoinStrategy = JoinStrategy.COLUMNS,
        pairs_per_hit: int = 1,
        left_per_hit: int | None = None,
        right_per_hit: int | None = None,
        left_payload: PayloadFn | None = None,
        right_payload: PayloadFn | None = None,
        prefilter: PrefilterFn | None = None,
    ):
        super().__init__(f"crowd-join({spec.name},{strategy.value})")
        self.spec = spec
        self.strategy = strategy
        self.pairs_per_hit = max(pairs_per_hit, 1)
        response = spec.response
        default_block = response if isinstance(response, JoinColumnsResponse) else None
        self.left_per_hit = left_per_hit or (default_block.left_per_hit if default_block else 3)
        self.right_per_hit = right_per_hit or (default_block.right_per_hit if default_block else 3)
        self.left_payload = left_payload or _default_payload
        self.right_payload = right_payload or _default_payload
        self.prefilter = prefilter
        self._schema = left_schema.concat(right_schema)
        self._left_rows: list[Row] = []
        self._right_rows: list[Row] = []
        # COLUMNS mode keeps drained input columnar until end-of-input; rows
        # materialize once, when the cross-product blocks are built.
        self._left_batches: list[RowBatch] = []
        self._right_batches: list[RowBatch] = []
        self.pairs_considered = 0
        self.pairs_prefiltered = 0
        self.pairs_asked = 0
        #: Planner cardinality expectations per side (set by PhysicalPlanner).
        self.planned_left_rows: float | None = None
        self.planned_right_rows: float | None = None

    def consumed_input(self) -> list[tuple[Row, int]]:
        self._materialize_sides()
        rows = [(row, 0) for row in self._left_rows]
        rows += [(row, 1) for row in self._right_rows]
        return rows

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context) -> None:
        super().open(context)
        if self.strategy is JoinStrategy.PAIRWISE and self.pairs_per_hit > 1:
            context.task_manager.set_batching_policy(
                self.spec.name, TaskKind.JOIN_PAIR, FixedBatching(self.pairs_per_hit)
            )

    # -- streaming input ------------------------------------------------------------

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        if self.strategy is JoinStrategy.COLUMNS:
            # Build sides buffer until end-of-input: keep the columnar slice
            # as-is instead of materializing rows per drained batch.
            (self._left_batches if slot == 0 else self._right_batches).append(batch)
            return
        # Pairwise streams tasks as rows arrive; keep per-row pair order.
        self._process_batch(batch.to_rows(), slot)

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        if self.strategy is JoinStrategy.COLUMNS:
            # Row-major input (replanner replay) joins the same buffers.
            if rows:
                (self._left_batches if slot == 0 else self._right_batches).append(
                    RowBatch.from_rows(rows[0].schema, rows)
                )
            return
        for row in rows:
            self._process(row, slot)

    def _materialize_sides(self) -> None:
        """Flush buffered columnar slices into the row-major build sides."""
        if self._left_batches:
            schema = self._left_batches[0].schema
            self._left_rows.extend(RowBatch.vstack(schema, self._left_batches).to_rows())
            self._left_batches.clear()
        if self._right_batches:
            schema = self._right_batches[0].schema
            self._right_rows.extend(RowBatch.vstack(schema, self._right_batches).to_rows())
            self._right_batches.clear()

    def _process(self, row: Row, slot: int) -> None:
        if slot == 0:
            self._left_rows.append(row)
            if self.strategy is JoinStrategy.PAIRWISE:
                for right in self._right_rows:
                    self._consider_pair(row, right)
        else:
            self._right_rows.append(row)
            if self.strategy is JoinStrategy.PAIRWISE:
                for left in self._left_rows:
                    self._consider_pair(left, right=row)

    def _on_inputs_finished(self) -> None:
        if self.strategy is JoinStrategy.COLUMNS:
            self._materialize_sides()
            self._build_blocks()

    # -- pairwise strategy ----------------------------------------------------------------

    def _consider_pair(self, left: Row, right: Row) -> None:
        self.pairs_considered += 1
        if self.prefilter is not None and not self.prefilter(left, right):
            self.pairs_prefiltered += 1
            return
        self.pairs_asked += 1
        payload: dict[str, Any] = {
            "left": self.left_payload(left),
            "right": self.right_payload(right),
        }
        task = Task(
            kind=TaskKind.JOIN_PAIR,
            spec=self.spec,
            payload=payload,
            callback=lambda result, left=left, right=right: self._on_pair_result(
                left, right, result
            ),
            cache_key=None,
            query_id=self.context.query_id,
            assignments_override=self.context.assignments_for(self.spec),
        )
        self._task_started()
        self.context.task_manager.submit(task)

    def _on_pair_result(self, left: Row, right: Row, result: TaskResult) -> None:
        if bool(result.reduced):
            self.emit(left.concat(right))
        self._task_finished()

    # -- column-block strategy ----------------------------------------------------------------

    def _build_blocks(self) -> None:
        lefts = self._candidate_rows(self._left_rows, self._right_rows, side="left")
        rights = self._candidate_rows(self._right_rows, self._left_rows, side="right")
        left_chunks = _chunks(lefts, self.left_per_hit)
        right_chunks = _chunks(rights, self.right_per_hit)
        for left_chunk in left_chunks:
            for right_chunk in right_chunks:
                self.pairs_considered += len(left_chunk) * len(right_chunk)
                self.pairs_asked += len(left_chunk) * len(right_chunk)
                self._submit_block(left_chunk, right_chunk)

    def _candidate_rows(self, rows: list[Row], others: list[Row], *, side: str) -> list[Row]:
        """Drop rows that cannot match anything according to the pre-filter."""
        if self.prefilter is None:
            return list(rows)
        survivors = []
        for row in rows:
            if side == "left":
                has_candidate = any(self.prefilter(row, other) for other in others)
            else:
                has_candidate = any(self.prefilter(other, row) for other in others)
            if has_candidate:
                survivors.append(row)
            else:
                self.pairs_prefiltered += len(others)
        return survivors

    def _submit_block(self, left_chunk: list[Row], right_chunk: list[Row]) -> None:
        payload = {
            "left_items": [self.left_payload(row) for row in left_chunk],
            "right_items": [self.right_payload(row) for row in right_chunk],
        }
        task = Task(
            kind=TaskKind.JOIN_BLOCK,
            spec=self.spec,
            payload=payload,
            callback=lambda result, lc=left_chunk, rc=right_chunk: self._on_block_result(
                lc, rc, result
            ),
            cache_key=None,
            query_id=self.context.query_id,
            assignments_override=self.context.assignments_for(self.spec),
        )
        self._task_started()
        self.context.task_manager.submit(task)

    def _on_block_result(
        self, left_chunk: list[Row], right_chunk: list[Row], result: TaskResult
    ) -> None:
        matches = result.reduced or []
        for left_index, right_index in matches:
            if left_index >= len(left_chunk) or right_index >= len(right_chunk):
                continue
            left = left_chunk[left_index]
            right = right_chunk[right_index]
            if self.prefilter is not None and not self.prefilter(left, right):
                continue
            self.emit(left.concat(right))
        self._task_finished()


def _chunks(rows: list[Row], size: int) -> list[list[Row]]:
    return [rows[start:start + size] for start in range(0, len(rows), size)] if rows else []
