"""Projection and local (non-crowd) selection operators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operators.base import Operator
from repro.storage.expressions import Expression
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

__all__ = ["ProjectionItem", "ProjectOperator", "LocalFilterOperator"]


@dataclass(frozen=True)
class ProjectionItem:
    """One output column of a projection: an expression and its output name."""

    alias: str
    expression: Expression
    data_type: DataType = DataType.ANY


class ProjectOperator(Operator):
    """Evaluates a list of expressions against each input row."""

    def __init__(self, items: list[ProjectionItem]):
        super().__init__("project")
        self.items = list(items)
        self._schema = Schema.of(*[Column(item.alias, item.data_type) for item in self.items])

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process(self, row: Row, slot: int) -> None:
        values = [item.expression.evaluate(row) for item in self.items]
        self.emit(Row(self._schema, values))


class LocalFilterOperator(Operator):
    """Applies a locally evaluable predicate (no crowd involvement).

    The optimizer pushes these below crowd operators whenever possible,
    because a free local filter that removes tuples before they reach a
    crowd operator directly reduces monetary cost (Section 4.1:
    "filtering-based reduction in cross-product size").
    """

    def __init__(self, predicate: Expression, input_schema: Schema):
        super().__init__("filter(local)")
        self.predicate = predicate
        self._schema = input_schema

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process(self, row: Row, slot: int) -> None:
        if self.predicate.evaluate(row) is True:
            self.emit(row)
