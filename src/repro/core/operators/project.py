"""Projection and local (non-crowd) selection operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import operator as _operator

from repro.core.operators.base import Operator
from repro.storage import accel
from repro.storage.batch import RowBatch
from repro.storage.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    compile_batch_expression,
    compile_batch_predicate,
    compile_expression,
)
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["ProjectionItem", "ProjectOperator", "LocalFilterOperator"]

#: Batches below this size filter faster through the plain Python kernel.
_ACCEL_MIN_ROWS = 256

_MASK_OPS = {
    "=": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}
_FLIPPED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _comparison_mask(batch: RowBatch, predicate: Expression):
    """Bool ndarray selection vector for ``column op literal``, or None.

    Eligible when the compared column is homogeneous numeric (no NULLs, so
    three-valued logic never differs from the plain bool mask) or the column
    is dictionary-encoded and the predicate is a string equality.  Anything
    else returns None and takes the reference kernel path.
    """
    if not isinstance(predicate, Comparison):
        return None
    left, op, right = predicate.left, predicate.op, predicate.right
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = _FLIPPED_OPS.get(op, op)
    if not isinstance(left, ColumnRef) or not isinstance(right, Literal):
        return None
    value = right.value
    if value is None or op not in _MASK_OPS:
        return None
    index = batch.schema.try_index_of(left.name)
    if index is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        column = batch._num_array(index)
        if column is None:
            return None
        # Int/float cross-comparisons are exact in Python but go through a
        # float64 conversion in numpy; keep the int side within 2**53 where
        # that conversion is lossless.
        if isinstance(value, int):
            if column.dtype.kind == "f" and abs(value) > 2**53:
                return None
        elif column.dtype.kind == "i" and len(column):
            if column.max() > 2**53 or column.min() < -(2**53):
                return None
        return _MASK_OPS[op](column, value)
    if isinstance(value, str) and op == "=":
        codes = batch._codes(index)
        if codes is None:
            return None
        codes_array, encoding = codes
        code = encoding.code_of(value)
        if code is None:
            return accel.np.zeros(len(codes_array), dtype=bool)
        return codes_array == code
    return None


@dataclass(frozen=True)
class ProjectionItem:
    """One output column of a projection: an expression and its output name."""

    alias: str
    expression: Expression
    data_type: DataType = DataType.ANY


class ProjectOperator(Operator):
    """Evaluates a list of expressions against each input batch.

    The expressions are compiled once per open against the child's output
    schema — both as per-row callables (kept for the row fallback) and as
    column kernels: one kernel call per output column evaluates the whole
    batch, and the resulting columns bind directly into the output batch
    without ever materializing intermediate rows.
    """

    def __init__(self, items: list[ProjectionItem]):
        super().__init__("project")
        self.items = list(items)
        self._schema = Schema.of(*[Column(item.alias, item.data_type) for item in self.items])
        # Untyped nullable outputs need no coercion, so projected columns can
        # take the trusted constructor; typed outputs keep full validation.
        self._trusted_output = all(
            c.data_type is DataType.ANY and c.nullable for c in self._schema.columns
        )
        self._compiled: list[Callable[[Row], Any]] | None = None
        self._kernels: list[Callable[[RowBatch], Sequence[Any]]] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        if self.children:
            input_schema = self.children[0].output_schema
            self._compiled = [
                compile_expression(item.expression, input_schema) for item in self.items
            ]
            self._kernels = [
                compile_batch_expression(item.expression, input_schema)
                for item in self.items
            ]

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        kernels = self._kernels
        if kernels is None:  # hand-built plan stepped without children/open
            self._process_batch(batch.to_rows(), slot)
            return
        columns = tuple(tuple(kernel(batch)) for kernel in kernels)
        if self._trusted_output:
            out = RowBatch.of_columns(self._schema, columns, len(batch))
        else:
            out = RowBatch.from_values(self._schema, zip(*columns))
        self.emit_rowbatch(out)

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        compiled = self._compiled
        if compiled is None:  # hand-built plan stepped without children/open
            for row in rows:
                self._process(row, slot)
            return
        schema = self._schema
        if self._trusted_output:
            out = [
                Row.unchecked(schema, tuple(evaluate(row) for evaluate in compiled))
                for row in rows
            ]
        else:
            out = [
                Row(schema, [evaluate(row) for evaluate in compiled]) for row in rows
            ]
        self.emit_batch(out)

    def _process(self, row: Row, slot: int) -> None:
        values = [item.expression.evaluate(row) for item in self.items]
        self.emit(Row(self._schema, values))


class LocalFilterOperator(Operator):
    """Applies a locally evaluable predicate (no crowd involvement).

    The optimizer pushes these below crowd operators whenever possible,
    because a free local filter that removes tuples before they reach a
    crowd operator directly reduces monetary cost (Section 4.1:
    "filtering-based reduction in cross-product size").  The predicate is
    compiled once per open as a selection-vector kernel: one kernel call per
    batch produces the mask, and the surviving rows leave as one compressed
    batch — the per-row compiled path remains as fallback for hand-built
    plans, with identical strict-True WHERE semantics.
    """

    def __init__(self, predicate: Expression, input_schema: Schema):
        super().__init__("filter(local)")
        self.predicate = predicate
        self._schema = input_schema
        self._predicate_fn: Callable[[Row], Any] | None = None
        self._mask_kernel: Callable[[RowBatch], Sequence[Any]] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        input_schema = self.children[0].output_schema if self.children else self._schema
        self._predicate_fn = compile_expression(self.predicate, input_schema)
        self._mask_kernel = compile_batch_predicate(self.predicate, input_schema)

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        kernel = self._mask_kernel
        if kernel is None:  # hand-built plan stepped without open
            self._process_batch(batch.to_rows(), slot)
            return
        if accel.HAVE_NUMPY and len(batch) >= _ACCEL_MIN_ROWS:
            mask = _comparison_mask(batch, self.predicate)
            if mask is not None:
                self.emit_rowbatch(batch._compress_array(mask))
                return
        self.emit_rowbatch(batch.compress(kernel(batch)))

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        predicate = self._predicate_fn or self.predicate.evaluate
        self.emit_batch([row for row in rows if predicate(row) is True])

    def _process(self, row: Row, slot: int) -> None:
        if self.predicate.evaluate(row) is True:
            self.emit(row)
