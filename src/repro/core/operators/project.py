"""Projection and local (non-crowd) selection operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.operators.base import Operator
from repro.storage.expressions import Expression, compile_expression
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["ProjectionItem", "ProjectOperator", "LocalFilterOperator"]


@dataclass(frozen=True)
class ProjectionItem:
    """One output column of a projection: an expression and its output name."""

    alias: str
    expression: Expression
    data_type: DataType = DataType.ANY


class ProjectOperator(Operator):
    """Evaluates a list of expressions against each input row.

    The expressions are compiled once per open against the child's output
    schema, so per-row evaluation reads values positionally instead of
    resolving column names per row.
    """

    def __init__(self, items: list[ProjectionItem]):
        super().__init__("project")
        self.items = list(items)
        self._schema = Schema.of(*[Column(item.alias, item.data_type) for item in self.items])
        # Untyped nullable outputs need no coercion, so projected rows can
        # take the trusted constructor; typed outputs keep full validation.
        self._trusted_output = all(
            c.data_type is DataType.ANY and c.nullable for c in self._schema.columns
        )
        self._compiled: list[Callable[[Row], Any]] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        if self.children:
            input_schema = self.children[0].output_schema
            self._compiled = [
                compile_expression(item.expression, input_schema) for item in self.items
            ]

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        compiled = self._compiled
        if compiled is None:  # hand-built plan stepped without children/open
            for row in rows:
                self._process(row, slot)
            return
        schema = self._schema
        if self._trusted_output:
            out = [
                Row.unchecked(schema, tuple(evaluate(row) for evaluate in compiled))
                for row in rows
            ]
        else:
            out = [
                Row(schema, [evaluate(row) for evaluate in compiled]) for row in rows
            ]
        self.emit_batch(out)

    def _process(self, row: Row, slot: int) -> None:
        values = [item.expression.evaluate(row) for item in self.items]
        self.emit(Row(self._schema, values))


class LocalFilterOperator(Operator):
    """Applies a locally evaluable predicate (no crowd involvement).

    The optimizer pushes these below crowd operators whenever possible,
    because a free local filter that removes tuples before they reach a
    crowd operator directly reduces monetary cost (Section 4.1:
    "filtering-based reduction in cross-product size").  The predicate is
    compiled once per open; each batch then filters with one callable per
    row and emits the survivors in a single batch.
    """

    def __init__(self, predicate: Expression, input_schema: Schema):
        super().__init__("filter(local)")
        self.predicate = predicate
        self._schema = input_schema
        self._predicate_fn: Callable[[Row], Any] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        input_schema = self.children[0].output_schema if self.children else self._schema
        self._predicate_fn = compile_expression(self.predicate, input_schema)

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        predicate = self._predicate_fn or self.predicate.evaluate
        self.emit_batch([row for row in rows if predicate(row) is True])

    def _process(self, row: Row, slot: int) -> None:
        if self.predicate.evaluate(row) is True:
            self.emit(row)
