"""Local (machine-evaluated) equi-join.

The paper's joins are crowd-powered (``samePerson``), but the engine also
needs a conventional join for the purely-local parts of a workload — e.g.
joining crowd results back to a dimension table, or the crowd-free
engine-overhead benchmark (E13).  This is a classic blocking hash join:
both inputs are buffered as column-major batches, the build (left) side is
hashed on its key — or, when the build child is a base-table scan whose key
column already carries a hash index, the table's index buckets are reused
verbatim — and the probe side drives one gather per side to assemble the
output batch.

NULL keys never match, following SQL equi-join semantics.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators.base import Operator
from repro.storage import accel
from repro.storage.batch import RowBatch
from repro.storage.expressions import ColumnRef, Expression, compile_batch_expression
from repro.storage.indexes import HashIndex
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["LocalHashJoinOperator"]

#: Below this many build rows the Python dict build wins over argsort setup.
_ACCEL_MIN_ROWS = 256


class LocalHashJoinOperator(Operator):
    """Joins its two inputs on locally evaluable equi-join keys.

    Parameters
    ----------
    left_key, right_key:
        Expressions evaluated against left (child 0) / right (child 1) rows;
        rows pair up when the two keys compare equal.  Keys must be hashable.
    left_schema, right_schema:
        Schemas of the two children.
    build_side:
        Which input is hashed: ``"left"`` (the default, preserving the
        classic build-left convention) or ``"right"``.  The planner picks
        the side with the cheaper build — fewer estimated rows, or one
        whose base table already carries a hash index on the join key.
        Output schema is always ``left ++ right``; only the emission order
        (probe-major) depends on the build side, and no ordering is
        guaranteed either way.
    """

    def __init__(
        self,
        left_key: Expression,
        right_key: Expression,
        left_schema: Schema,
        right_schema: Schema,
        *,
        build_side: str = "left",
    ):
        if build_side not in ("left", "right"):
            raise ValueError(f"build_side must be 'left' or 'right', got {build_side!r}")
        suffix = "" if build_side == "left" else ",build=right"
        super().__init__(f"join(local-hash{suffix})")
        self.left_key = left_key
        self.right_key = right_key
        self.build_side = build_side
        self._schema = left_schema.concat(right_schema)
        self._left_batches: list[RowBatch] = []
        self._right_batches: list[RowBatch] = []

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def consumed_input(self) -> list[tuple[Row, int]]:
        rows = [
            (row, 0) for batch in self._left_batches for row in batch.to_rows()
        ]
        rows += [
            (row, 1) for batch in self._right_batches for row in batch.to_rows()
        ]
        return rows

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        (self._left_batches if slot == 0 else self._right_batches).append(batch)

    def _process(self, row: Row, slot: int) -> None:
        self._process_batches(RowBatch.single(row), slot)

    def _index_backed_build(
        self, build: RowBatch, build_key: Expression, build_child: int
    ) -> dict[Any, list[int]] | None:
        """The build table's existing hash-index buckets, when reusable.

        Reusable means: the build child is a base-table scan (positions in
        the buffered batch equal table positions), the build key is a bare
        column reference, that column carries a hash index, and the scan saw
        every current row of the table.  The bucket lists are position lists
        in ascending order — exactly the build structure the loop below
        would produce.
        """
        from repro.core.operators.scan import ScanOperator

        if (
            len(self.children) <= build_child
            or type(self.children[build_child]) is not ScanOperator
        ):
            return None
        if not isinstance(build_key, ColumnRef):
            return None
        scan = self.children[build_child]
        index = scan.table.index_on(build_key.name.rsplit(".", 1)[-1])
        if not isinstance(index, HashIndex):
            return None
        if len(build) != len(scan.table):
            return None
        return index.buckets

    def _accel_join(
        self,
        build: RowBatch,
        probe: RowBatch,
        build_key: Expression,
        probe_key: Expression,
        probe_schema: Schema,
    ) -> tuple[bool, tuple[Any, Any] | None]:
        """Dictionary-code build+probe: ``(handled, (build_take, probe_take))``.

        Eligible when the build key is a bare column reference whose batch
        column carries dictionary codes (string columns scanned out of a
        table).  A stable argsort on the codes groups build positions by key
        with ascending positions inside each group — exactly the bucket lists
        the Python dict build produces — and each probe hit contributes one
        contiguous slice of that order instead of a per-match list append.
        Key equality semantics are identical because the encoding *is* a
        dict keyed by value; NULL build keys carry a code but no probe key
        can reach it (probe NULLs are skipped before the code lookup).
        """
        if not (accel.HAVE_NUMPY and len(build) >= _ACCEL_MIN_ROWS):
            return False, None
        if not isinstance(build_key, ColumnRef):
            return False, None
        key_index = build.schema.try_index_of(build_key.name)
        if key_index is None:
            return False, None
        codes = build._codes(key_index)
        if codes is None:
            return False, None
        codes_array, encoding = codes
        np = accel.np
        order = np.argsort(codes_array, kind="stable")
        counts = np.bincount(codes_array, minlength=len(encoding))
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

        probe_keys = compile_batch_expression(probe_key, probe_schema)(probe)
        code_of = encoding.code_of
        slices = []
        positions: list[int] = []
        match_counts: list[int] = []
        for position, key in enumerate(probe_keys):
            if key is None:
                continue
            code = code_of(key)
            if code is None:
                continue
            n = int(counts[code])
            if not n:
                continue
            start = int(starts[code])
            slices.append(order[start : start + n])
            positions.append(position)
            match_counts.append(n)
        if not slices:
            return True, None
        build_take = np.concatenate(slices)
        probe_take = np.repeat(
            np.asarray(positions, dtype=np.intp),
            np.asarray(match_counts),
        )
        return True, (build_take, probe_take)

    def _on_inputs_finished(self) -> None:
        left_schema = (
            self.children[0].output_schema if self.children else self._schema
        )
        right_schema = (
            self.children[1].output_schema if len(self.children) > 1 else self._schema
        )
        left = RowBatch.vstack(left_schema, self._left_batches)
        right = RowBatch.vstack(right_schema, self._right_batches)
        self._left_batches.clear()
        self._right_batches.clear()

        if self.build_side == "left":
            build, probe = left, right
            build_key, probe_key = self.left_key, self.right_key
            probe_schema, build_child = right_schema, 0
        else:
            build, probe = right, left
            build_key, probe_key = self.right_key, self.left_key
            probe_schema, build_child = left_schema, 1

        handled, takes = self._accel_join(build, probe, build_key, probe_key, probe_schema)
        if handled:
            if takes is not None:
                build_take, probe_take = takes
                if self.build_side == "left":
                    out = left._take_array(build_take).concat(right._take_array(probe_take))
                else:
                    out = left._take_array(probe_take).concat(right._take_array(build_take))
                self.emit_rowbatch(out)
            return

        buckets = self._index_backed_build(build, build_key, build_child)
        if buckets is None:
            build_schema = left_schema if self.build_side == "left" else right_schema
            build_keys = compile_batch_expression(build_key, build_schema)(build)
            buckets = {}
            setdefault = buckets.setdefault
            for position, key in enumerate(build_keys):
                if key is not None:
                    setdefault(key, []).append(position)

        probe_keys = compile_batch_expression(probe_key, probe_schema)(probe)
        build_take: list[int] = []
        probe_take: list[int] = []
        get = buckets.get
        for position, key in enumerate(probe_keys):
            if key is None:
                continue
            matches = get(key)
            if matches:
                build_take.extend(matches)
                probe_take.extend([position] * len(matches))
        if not build_take:
            return
        if self.build_side == "left":
            out = left.take(build_take).concat(right.take(probe_take))
        else:
            out = left.take(probe_take).concat(right.take(build_take))
        self.emit_rowbatch(out)
