"""Local (machine-evaluated) equi-join.

The paper's joins are crowd-powered (``samePerson``), but the engine also
needs a conventional join for the purely-local parts of a workload — e.g.
joining crowd results back to a dimension table, or the crowd-free
engine-overhead benchmark (E13).  This is a classic blocking hash join:
both inputs are buffered, the smaller convention (left) side is hashed on
its key, and the right side probes it once all inputs have arrived.

NULL keys never match, following SQL equi-join semantics.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators.base import Operator
from repro.storage.expressions import Expression, compile_expression
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["LocalHashJoinOperator"]


class LocalHashJoinOperator(Operator):
    """Joins its two inputs on locally evaluable equi-join keys.

    Parameters
    ----------
    left_key, right_key:
        Expressions evaluated against left (child 0) / right (child 1) rows;
        rows pair up when the two keys compare equal.  Keys must be hashable.
    left_schema, right_schema:
        Schemas of the two children.
    """

    def __init__(
        self,
        left_key: Expression,
        right_key: Expression,
        left_schema: Schema,
        right_schema: Schema,
    ):
        super().__init__("join(local-hash)")
        self.left_key = left_key
        self.right_key = right_key
        self._schema = left_schema.concat(right_schema)
        self._left_rows: list[Row] = []
        self._right_rows: list[Row] = []

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def consumed_input(self) -> list[tuple[Row, int]]:
        rows = [(row, 0) for row in self._left_rows]
        rows += [(row, 1) for row in self._right_rows]
        return rows

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        (self._left_rows if slot == 0 else self._right_rows).extend(rows)

    def _process(self, row: Row, slot: int) -> None:
        (self._left_rows if slot == 0 else self._right_rows).append(row)

    def _on_inputs_finished(self) -> None:
        left_schema = (
            self.children[0].output_schema if self.children else self._schema
        )
        right_schema = (
            self.children[1].output_schema if len(self.children) > 1 else self._schema
        )
        left_key_of = compile_expression(self.left_key, left_schema)
        right_key_of = compile_expression(self.right_key, right_schema)
        table: dict[Any, list[Row]] = {}
        for left in self._left_rows:
            key = left_key_of(left)
            if key is None:
                continue
            table.setdefault(key, []).append(left)
        out: list[Row] = []
        empty: tuple[Row, ...] = ()
        for right in self._right_rows:
            key = right_key_of(right)
            if key is None:
                continue
            for left in table.get(key, empty):
                out.append(left.concat(right))
        self.emit_batch(out)
        self._left_rows.clear()
        self._right_rows.clear()
