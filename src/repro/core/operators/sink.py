"""Results sink: the top of every plan.

"Results are automatically emitted from the top-most operator and inserted
into a results table.  The user can periodically poll the table for new
result tuples." (Section 2)
"""

from __future__ import annotations

from repro.core.operators.base import Operator
from repro.storage.batch import RowBatch
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["ResultSinkOperator"]


class ResultSinkOperator(Operator):
    """Appends every produced row to the query's results table.

    This is one of the places rows genuinely materialize: results tables are
    row stores that users poll.  Result rows were validated when they entered
    the plan and every derivation kept them validated, so batches land via
    the table's trusted bulk append instead of one re-validating insert per
    row.
    """

    def __init__(self, results_table: Table):
        super().__init__("results-sink")
        self.results_table = results_table

    @property
    def output_schema(self) -> Schema:
        return self.results_table.schema

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        inserted = self.results_table.insert_batch(batch)
        self.metrics.rows_out += inserted
        self.context.statistics.record_result_emitted(self.context.query_id, inserted)

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        inserted = self.results_table.append_rows(rows)
        self.metrics.rows_out += inserted
        self.context.statistics.record_result_emitted(self.context.query_id, inserted)

    def _process(self, row: Row, slot: int) -> None:
        self._process_batch([row], slot)

    def emit(self, row: Row) -> None:  # pragma: no cover - sinks never emit upward
        raise AssertionError("the results sink is the top-most operator")
