"""Local (machine-evaluated) ORDER BY operator."""

from __future__ import annotations

from repro.core.operators.base import Operator
from repro.storage.expressions import Expression, compile_expression
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["LocalSortOperator"]


class LocalSortOperator(Operator):
    """Buffers its input and emits it ordered by a locally evaluable key.

    NULL keys sort last regardless of direction, matching common SQL engines.
    Input batches extend the buffer wholesale; the key expression is compiled
    once when the buffer is sorted, and the ordered output leaves as batches.
    """

    def __init__(self, key: Expression, input_schema: Schema, *, ascending: bool = True):
        super().__init__("sort(local)")
        self.key = key
        self.ascending = ascending
        self._schema = input_schema
        self._rows: list[Row] = []

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        self._rows.extend(rows)

    def _process(self, row: Row, slot: int) -> None:
        self._rows.append(row)

    def _on_inputs_finished(self) -> None:
        input_schema = self.children[0].output_schema if self.children else self._schema
        key_of = compile_expression(self.key, input_schema)
        keyed = [(key_of(row), row) for row in self._rows]
        non_null = [(value, row) for value, row in keyed if value is not None]
        nulls = [row for value, row in keyed if value is None]
        try:
            non_null.sort(key=lambda pair: pair[0], reverse=not self.ascending)
        except TypeError:
            # Mixed types that cannot be compared directly: sort by text.
            non_null.sort(key=lambda pair: str(pair[0]), reverse=not self.ascending)
        self.emit_batch([row for _value, row in non_null])
        self.emit_batch(nulls)
        self._rows.clear()
