"""Local (machine-evaluated) ORDER BY operator."""

from __future__ import annotations

from repro.core.operators.base import Operator
from repro.storage import accel
from repro.storage.batch import RowBatch
from repro.storage.expressions import Expression, compile_batch_expression
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["LocalSortOperator"]

#: Below this many rows Python's timsort wins over ndarray setup.
_ACCEL_MIN_ROWS = 256


class LocalSortOperator(Operator):
    """Buffers its input and emits it ordered by a locally evaluable key.

    NULL keys sort last regardless of direction, matching common SQL engines.
    Input batches are buffered as-is (no materialization); on finish, the key
    expression — compiled once as a column kernel — produces the key column,
    an argsort orders the row indices, and one gather (:meth:`RowBatch.take`)
    produces the output batch.  The sort is stable, so rows with equal keys
    keep their arrival order, exactly like the old row-pair sort.
    """

    def __init__(self, key: Expression, input_schema: Schema, *, ascending: bool = True):
        super().__init__("sort(local)")
        self.key = key
        self.ascending = ascending
        self._schema = input_schema
        self._batches: list[RowBatch] = []

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        self._batches.append(batch)

    def _process(self, row: Row, slot: int) -> None:
        self._batches.append(RowBatch.single(row))

    def _on_inputs_finished(self) -> None:
        input_schema = self.children[0].output_schema if self.children else self._schema
        combined = RowBatch.vstack(input_schema, self._batches)
        self._batches.clear()
        if not len(combined):
            return
        if accel.HAVE_NUMPY and len(combined) >= _ACCEL_MIN_ROWS:
            # Numeric keys (NaN/NULL-free): a stable argsort on the key array
            # (negated for DESC) is order-identical to the stable Python sort.
            # array_kernel computes the key column without materializing any
            # Python tuples; the sortable_array fallback covers keys it
            # cannot express once the reference kernel has produced them.
            key_array = accel.array_kernel(self.key, combined)
            if key_array is not None and (
                key_array.dtype.kind != "f" or not accel.np.isnan(key_array).any()
            ):
                if not self.ascending:
                    key_array = -key_array
                order = accel.np.argsort(key_array, kind="stable")
                self.emit_rowbatch(combined._take_array(order))
                return
        keys = compile_batch_expression(self.key, input_schema)(combined)
        if accel.HAVE_NUMPY and len(combined) >= _ACCEL_MIN_ROWS:
            key_array = accel.sortable_array(keys)
            if key_array is not None:
                if not self.ascending:
                    key_array = -key_array
                order = accel.np.argsort(key_array, kind="stable")
                self.emit_rowbatch(combined._take_array(order))
                return
        non_null = [i for i, key in enumerate(keys) if key is not None]
        nulls = [i for i, key in enumerate(keys) if key is None]
        try:
            non_null.sort(key=keys.__getitem__, reverse=not self.ascending)
        except TypeError:
            # Mixed types that cannot be compared directly: sort by text.
            non_null.sort(key=lambda i: str(keys[i]), reverse=not self.ascending)
        order = non_null + nulls if nulls else non_null
        self.emit_rowbatch(combined.take(order))
