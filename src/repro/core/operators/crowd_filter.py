"""Crowd-powered selection: ask the crowd a yes/no question about each tuple."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.core.operators.base import Operator
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import Task, TaskKind, TaskResult
from repro.storage.batch import RowBatch
from repro.storage.expressions import Expression, compile_batch_expression, compile_expression
from repro.storage.row import Row
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["CrowdFilterOperator"]


class CrowdFilterOperator(Operator):
    """Emits only the input rows for which the crowd answers "yes".

    Parameters
    ----------
    spec:
        A ``TaskType: Filter`` spec with a YesNo response.
    arg_expressions:
        Expressions producing the values substituted into the question text.
    input_schema:
        Schema of the child operator.
    cache_key_fn:
        Optional function deriving a stable cache key from the row; defaults
        to the rendered argument tuple, which makes identical questions about
        identical values cacheable.
    negate:
        When True, emit rows the crowd answered "no" for (``WHERE NOT f(x)``).
    """

    IS_CROWD = True

    def __init__(
        self,
        spec: TaskSpec,
        arg_expressions: list[Expression],
        input_schema: Schema,
        *,
        cache_key_fn: Callable[[Row], Hashable] | None = None,
        negate: bool = False,
    ):
        super().__init__(f"crowd-filter({spec.name})")
        self.spec = spec
        self.arg_expressions = list(arg_expressions)
        self.cache_key_fn = cache_key_fn
        self.negate = negate
        self._schema = input_schema
        self._arg_fns: list[Callable[[Row], Any]] | None = None
        self._batch_arg_fns: list[Callable[[RowBatch], Any]] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        input_schema = self.children[0].output_schema if self.children else self._schema
        self._arg_fns = [
            compile_expression(expression, input_schema)
            for expression in self.arg_expressions
        ]
        self._batch_arg_fns = [
            compile_batch_expression(expression, input_schema)
            for expression in self.arg_expressions
        ]

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        """Drain one columnar slice: argument kernels run batch-at-a-time.

        Each argument expression is evaluated once over the whole batch (a
        column kernel), so the per-row Python overhead left on this path is
        only what the task boundary genuinely requires.  Submission stays
        per-row in batch order — one crowd task per row, identical args,
        cache keys and ordering to the per-row loop — so HIT batching and
        the determinism fingerprints are unchanged.
        """
        batch_fns = self._batch_arg_fns
        if batch_fns is None:
            self._process_batch(batch.to_rows(), slot)
            return
        arg_columns = [fn(batch) for fn in batch_fns]
        rows = batch.to_rows()
        if not arg_columns:
            for row in rows:
                self._submit(row, ())
            return
        for row, args in zip(rows, zip(*arg_columns)):
            self._submit(row, tuple(args))

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        """Drain a row-major slice, evaluating compiled args per row.

        Task submission stays per-row (each row becomes one crowd task, and
        redundancy is re-resolved per task so adaptive assignment keeps
        tightening mid-query), but the name-resolution work is hoisted out.
        """
        arg_fns = self._arg_fns
        if arg_fns is None:
            for row in rows:
                self._process(row, slot)
            return
        for row in rows:
            self._submit(row, tuple(fn(row) for fn in arg_fns))

    def _process(self, row: Row, slot: int) -> None:
        args = tuple(expression.evaluate(row) for expression in self.arg_expressions)
        self._submit(row, args)

    def _submit(self, row: Row, args: tuple[Any, ...]) -> None:
        payload: dict[str, Any] = {"args": args, "row": row.to_dict()}
        for parameter, value in zip(self.spec.parameters, args):
            payload[parameter.name] = value
        if self.cache_key_fn is not None:
            cache_key = self.cache_key_fn(row)
        else:
            cache_key = args if args else None
        task = Task(
            kind=TaskKind.FILTER,
            spec=self.spec,
            payload=payload,
            callback=lambda result, row=row: self._on_result(row, result),
            cache_key=cache_key,
            query_id=self.context.query_id,
            assignments_override=self.context.assignments_for(self.spec),
        )
        self._task_started()
        self.context.task_manager.submit(task)

    def _on_result(self, row: Row, result: TaskResult) -> None:
        keep = bool(result.reduced)
        if self.negate:
            keep = not keep
        if keep:
            self.emit(row)
        self._task_finished()
