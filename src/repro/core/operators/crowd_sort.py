"""Crowd-powered ORDER BY (Section 3: "Qurk also facilitates human-powered
filter, rank, and group by operators").

Two implementations, following the companion CIDR paper the demo cites as [5]:

* ``COMPARISON`` — workers answer pairwise "which is greater?" questions; the
  operator asks O(n²) pairs (optionally batched several per HIT) and ranks
  items by their Copeland score (number of pairwise wins).
* ``RATING`` — workers rate each item independently on a numeric scale; items
  are sorted by their mean (or median) rating.  Linear in n, cheaper, but the
  ranking is noisier — exactly the cost/accuracy trade-off the dashboard lets
  the audience explore.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.core.operators.base import Operator
from repro.core.tasks.batching import FixedBatching
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import Task, TaskKind, TaskResult
from repro.storage.batch import RowBatch
from repro.storage.row import Row
from repro.storage.schema import Schema

__all__ = ["SortStrategy", "CrowdSortOperator"]

PayloadFn = Callable[[Row], dict]


class SortStrategy(enum.Enum):
    """How the crowd establishes the ordering."""

    COMPARISON = "comparison"
    RATING = "rating"


def _default_payload(row: Row) -> dict:
    return {"row": row.to_dict()}


class CrowdSortOperator(Operator):
    """Orders its input by a crowd-judged criterion.

    Parameters
    ----------
    spec:
        A ``TaskType: Rank`` spec (Comparison or Rating response).
    input_schema:
        Schema of the child operator.
    strategy:
        Pairwise comparisons or per-item ratings.
    descending:
        Emit rows best-first when True (the default).
    items_per_hit:
        Batching: comparisons or ratings placed into one HIT.
    payload:
        Maps a row to what workers (and the oracle) see.
    """

    IS_CROWD = True

    def __init__(
        self,
        spec: TaskSpec,
        input_schema: Schema,
        *,
        strategy: SortStrategy = SortStrategy.COMPARISON,
        descending: bool = True,
        items_per_hit: int = 1,
        payload: PayloadFn | None = None,
    ):
        super().__init__(f"crowd-sort({spec.name},{strategy.value})")
        self.spec = spec
        self.strategy = strategy
        self.descending = descending
        self.items_per_hit = max(items_per_hit, 1)
        self.payload = payload or _default_payload
        self._schema = input_schema
        self._rows: list[Row] = []
        # Drained input stays columnar until the ranking tasks are built.
        self._batches: list[RowBatch] = []
        self._scores: dict[int, float] = {}
        self._emitted = False
        self.comparisons_asked = 0
        self.ratings_asked = 0

    def consumed_input(self) -> list[tuple[Row, int]]:
        self._materialize_rows()
        return [(row, 0) for row in self._rows]

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context) -> None:
        super().open(context)
        if self.items_per_hit > 1:
            kind = (
                TaskKind.COMPARE if self.strategy is SortStrategy.COMPARISON else TaskKind.RATE
            )
            context.task_manager.set_batching_policy(
                self.spec.name, kind, FixedBatching(self.items_per_hit)
            )

    # -- input buffering --------------------------------------------------------------

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        # Buffer the columnar slice as-is; rows materialize once, when the
        # ranking tasks are submitted at end-of-input.
        self._batches.append(batch)

    def _process(self, row: Row, slot: int) -> None:
        self._rows.append(row)

    def _materialize_rows(self) -> None:
        """Flush buffered columnar slices into the row-major sort buffer."""
        if self._batches:
            schema = self._batches[0].schema
            self._rows.extend(RowBatch.vstack(schema, self._batches).to_rows())
            self._batches.clear()

    def _on_inputs_finished(self) -> None:
        self._materialize_rows()
        if not self._rows:
            self._emitted = True
            return
        if len(self._rows) == 1:
            self.emit(self._rows[0])
            self._emitted = True
            return
        self._scores = {index: 0.0 for index in range(len(self._rows))}
        if self.strategy is SortStrategy.COMPARISON:
            self._submit_comparisons()
        else:
            self._submit_ratings()

    # -- comparison strategy -----------------------------------------------------------

    def _submit_comparisons(self) -> None:
        for i in range(len(self._rows)):
            for j in range(i + 1, len(self._rows)):
                self.comparisons_asked += 1
                payload = {
                    "left": self.payload(self._rows[i]),
                    "right": self.payload(self._rows[j]),
                }
                task = Task(
                    kind=TaskKind.COMPARE,
                    spec=self.spec,
                    payload=payload,
                    callback=lambda result, i=i, j=j: self._on_comparison(i, j, result),
                    query_id=self.context.query_id,
                    assignments_override=self.context.assignments_for(self.spec),
                )
                self._task_started()
                self.context.task_manager.submit(task)

    def _on_comparison(self, i: int, j: int, result: TaskResult) -> None:
        winner = i if result.reduced == "left" else j
        self._scores[winner] += 1.0
        self._task_finished()
        self._maybe_emit()

    # -- rating strategy -----------------------------------------------------------------

    def _submit_ratings(self) -> None:
        for index, row in enumerate(self._rows):
            self.ratings_asked += 1
            task = Task(
                kind=TaskKind.RATE,
                spec=self.spec,
                payload={"row": row.to_dict(), **self.payload(row)},
                callback=lambda result, index=index: self._on_rating(index, result),
                query_id=self.context.query_id,
                assignments_override=self.context.assignments_for(self.spec),
            )
            self._task_started()
            self.context.task_manager.submit(task)

    def _on_rating(self, index: int, result: TaskResult) -> None:
        self._scores[index] = float(result.reduced)
        self._task_finished()
        self._maybe_emit()

    # -- emission ------------------------------------------------------------------------------

    def _maybe_emit(self) -> None:
        if self._emitted or self._outstanding_tasks > 0:
            return
        order = sorted(
            range(len(self._rows)),
            key=lambda index: self._scores.get(index, 0.0),
            reverse=self.descending,
        )
        for index in order:
            self.emit(self._rows[index])
        self._emitted = True

    def _internal_work_remaining(self) -> int:
        if not self._finalized:
            return 1
        return 0 if self._emitted else 1
