"""Local grouping / aggregation and LIMIT operators.

These are conventional blocking operators: they do not consult the crowd, but
they are needed to express the reduction of multi-answer attributes ("which
can be reduced using user-defined aggregates", Section 3) and the usual tail
of a SELECT statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.operators.base import Operator
from repro.errors import OperatorError
from repro.storage import accel
from repro.storage.batch import RowBatch
from repro.storage.expressions import Expression, compile_batch_expression
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

__all__ = ["AggregateSpec", "GroupByOperator", "LimitOperator", "AGGREGATE_FUNCTIONS"]

#: Below this many rows the Python bucketing loop wins over ndarray setup.
_ACCEL_MIN_ROWS = 256


def _count(values: list[Any]) -> int:
    return len([v for v in values if v is not None])


def _sum(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return sum(values) if values else None


def _avg(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _min(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return min(values) if values else None


def _max(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return max(values) if values else None


def _collect(values: list[Any]) -> list[Any]:
    return list(values)


#: SQL aggregate name -> reduction over the group's values.
AGGREGATE_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "count": _count,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
    "collect": _collect,
}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column: ``function(expression) AS alias``."""

    alias: str
    function: str
    expression: Expression | None  # None means COUNT(*)

    def __post_init__(self) -> None:
        if self.function.lower() not in AGGREGATE_FUNCTIONS:
            raise OperatorError(f"unknown aggregate function {self.function!r}")


class GroupByOperator(Operator):
    """Groups input rows and computes aggregates per group.

    With no group-by columns it produces a single row aggregating all input
    (or no row at all when the input is empty, matching SQL semantics for
    grouped aggregates and keeping the implementation predictable).

    Grouping is columnar: input batches are buffered as-is, and on finish the
    group keys come straight off the key columns while each aggregate's
    argument expression runs once as a column kernel over all input — the
    groups then gather from that value column by row index.  Output groups
    appear in first-arrival order, exactly like the old row-bucketing loop.
    """

    def __init__(
        self,
        group_columns: list[str],
        aggregates: list[AggregateSpec],
        input_schema: Schema,
    ):
        super().__init__("group-by")
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._input_schema = input_schema
        columns = [input_schema.column(name) for name in self.group_columns]
        columns += [Column(agg.alias, DataType.ANY) for agg in self.aggregates]
        self._schema = Schema(tuple(columns))
        self._batches: list[RowBatch] = []

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        self._batches.append(batch)

    def _process(self, row: Row, slot: int) -> None:
        self._batches.append(RowBatch.single(row))

    def _on_inputs_finished(self) -> None:
        input_schema = (
            self.children[0].output_schema if self.children else self._input_schema
        )
        combined = RowBatch.vstack(input_schema, self._batches)
        self._batches.clear()
        length = len(combined)
        if not length:
            return
        if self._accel_finish(combined, input_schema):
            return

        # Bucket row positions by group key, preserving first-arrival order.
        groups: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        indices = input_schema.indices_of(self.group_columns)
        if indices:
            key_columns = [combined.column_at(i) for i in indices]
            keys = zip(*key_columns) if len(key_columns) > 1 else (
                (value,) for value in key_columns[0]
            )
        else:
            keys = ((),) * length
        for position, key in enumerate(keys):
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(position)

        # One kernel pass per aggregate argument over the whole input.
        value_columns: list[Any] = []
        for aggregate in self.aggregates:
            if aggregate.expression is None:
                value_columns.append(None)  # COUNT(*): every row counts 1
            else:
                value_columns.append(
                    compile_batch_expression(aggregate.expression, input_schema)(combined)
                )

        out: list[Row] = []
        for key in order:
            positions = groups[key]
            values: list[Any] = list(key)
            for aggregate, column in zip(self.aggregates, value_columns):
                if column is None:
                    group_values: list[Any] = [1] * len(positions)
                else:
                    group_values = [column[i] for i in positions]
                function = AGGREGATE_FUNCTIONS[aggregate.function.lower()]
                values.append(function(group_values))
            out.append(Row(self._schema, values))
        self.emit_batch(out)

    def _accel_finish(self, combined: RowBatch, input_schema: Schema) -> bool:
        """Dictionary-code grouping for count/sum/avg; True when it emitted.

        Eligible when there is exactly one group column and it carries
        dictionary codes (string columns scanned out of a table), and every
        aggregate is COUNT(*), or count/sum/avg over a NULL-free numeric
        argument column (sum/avg additionally require float64, since a
        Python sum over ints stays int).  ``np.bincount`` accumulates each
        bin sequentially in input order — the same left-to-right additions
        from 0.0 the Python per-group ``sum`` performs — so sums are
        bit-identical; group order is first arrival, recovered from
        ``np.unique``'s first-occurrence indices.  Anything else returns
        False and the reference bucketing loop runs.
        """
        if not (accel.HAVE_NUMPY and len(combined) >= _ACCEL_MIN_ROWS):
            return False
        if len(self.group_columns) != 1:
            return False
        key_index = input_schema.try_index_of(self.group_columns[0])
        if key_index is None:
            return False
        codes = combined._codes(key_index)
        if codes is None:
            return False
        codes_array, encoding = codes
        np = accel.np
        counts = np.bincount(codes_array, minlength=len(encoding))

        # (kind, per-code sums or None), one per aggregate output column.
        plans: list[tuple[str, Any]] = []
        for aggregate in self.aggregates:
            function = aggregate.function.lower()
            if aggregate.expression is None:
                if function != "count":
                    return False
                plans.append(("count", None))
                continue
            if function not in ("count", "sum", "avg"):
                return False
            array = accel.array_kernel(aggregate.expression, combined)
            if array is None:
                column = compile_batch_expression(aggregate.expression, input_schema)(
                    combined
                )
                array = accel.numeric_array(column)
            if array is None:
                return False
            if function == "count":
                plans.append(("count", None))
                continue
            if array.dtype.kind != "f":
                return False
            sums = np.bincount(codes_array, weights=array, minlength=len(encoding))
            plans.append((function, sums))

        uniq, first_seen = np.unique(codes_array, return_index=True)
        ordered = uniq[np.argsort(first_seen, kind="stable")]
        out: list[Row] = []
        for code in ordered.tolist():
            values: list[Any] = [encoding.values[code]]
            n = int(counts[code])
            for kind, sums in plans:
                if kind == "count":
                    values.append(n)
                elif kind == "sum":
                    values.append(float(sums[code]))
                else:  # avg
                    values.append(float(sums[code]) / n)
            out.append(Row(self._schema, values))
        self.emit_batch(out)
        return True


class LimitOperator(Operator):
    """Passes through at most ``limit`` rows."""

    def __init__(self, limit: int, input_schema: Schema):
        super().__init__(f"limit({limit})")
        if limit < 0:
            raise OperatorError("LIMIT must be non-negative")
        self.limit = limit
        self._schema = input_schema
        self._emitted = 0

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        remaining = self.limit - self._emitted
        if remaining <= 0:
            return
        if len(batch) > remaining:
            batch = batch.slice(0, remaining)
        self._emitted += len(batch)
        self.emit_rowbatch(batch)

    def _process(self, row: Row, slot: int) -> None:
        if self._emitted < self.limit:
            self._emitted += 1
            self.emit(row)
