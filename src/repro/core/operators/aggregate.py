"""Local grouping / aggregation and LIMIT operators.

These are conventional blocking operators: they do not consult the crowd, but
they are needed to express the reduction of multi-answer attributes ("which
can be reduced using user-defined aggregates", Section 3) and the usual tail
of a SELECT statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.operators.base import Operator
from repro.errors import OperatorError
from repro.storage.expressions import Expression, compile_expression
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["AggregateSpec", "GroupByOperator", "LimitOperator", "AGGREGATE_FUNCTIONS"]


def _count(values: list[Any]) -> int:
    return len([v for v in values if v is not None])


def _sum(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return sum(values) if values else None


def _avg(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _min(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return min(values) if values else None


def _max(values: list[Any]) -> Any:
    values = [v for v in values if v is not None]
    return max(values) if values else None


def _collect(values: list[Any]) -> list[Any]:
    return list(values)


#: SQL aggregate name -> reduction over the group's values.
AGGREGATE_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "count": _count,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
    "collect": _collect,
}


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output column: ``function(expression) AS alias``."""

    alias: str
    function: str
    expression: Expression | None  # None means COUNT(*)

    def __post_init__(self) -> None:
        if self.function.lower() not in AGGREGATE_FUNCTIONS:
            raise OperatorError(f"unknown aggregate function {self.function!r}")


class GroupByOperator(Operator):
    """Groups input rows and computes aggregates per group.

    With no group-by columns it produces a single row aggregating all input
    (or no row at all when the input is empty, matching SQL semantics for
    grouped aggregates and keeping the implementation predictable).
    """

    def __init__(
        self,
        group_columns: list[str],
        aggregates: list[AggregateSpec],
        input_schema: Schema,
    ):
        super().__init__("group-by")
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)
        self._input_schema = input_schema
        columns = [input_schema.column(name) for name in self.group_columns]
        columns += [Column(agg.alias, DataType.ANY) for agg in self.aggregates]
        self._schema = Schema(tuple(columns))
        self._groups: dict[tuple, list[Row]] = {}
        self._order: list[tuple] = []
        self._group_indices: tuple[int, ...] | None = None
        self._compiled_aggregates: list[Callable[[Row], Any] | None] | None = None

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def open(self, context: "ExecutionContext") -> None:
        super().open(context)
        input_schema = (
            self.children[0].output_schema if self.children else self._input_schema
        )
        self._group_indices = input_schema.indices_of(self.group_columns)
        self._compiled_aggregates = [
            None if agg.expression is None else compile_expression(agg.expression, input_schema)
            for agg in self.aggregates
        ]

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        indices = self._group_indices
        if indices is None:
            indices = self._input_schema.indices_of(self.group_columns)
        groups = self._groups
        order = self._order
        for row in rows:
            row_values = row.values
            key = tuple(row_values[i] for i in indices)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)

    def _process(self, row: Row, slot: int) -> None:
        self._process_batch([row], slot)

    def _on_inputs_finished(self) -> None:
        compiled = self._compiled_aggregates or [
            None if agg.expression is None else agg.expression.evaluate
            for agg in self.aggregates
        ]
        out: list[Row] = []
        for key in self._order:
            rows = self._groups[key]
            values: list[Any] = list(key)
            for aggregate, evaluate in zip(self.aggregates, compiled):
                if evaluate is None:
                    group_values: list[Any] = [1] * len(rows)
                else:
                    group_values = [evaluate(row) for row in rows]
                function = AGGREGATE_FUNCTIONS[aggregate.function.lower()]
                values.append(function(group_values))
            out.append(Row(self._schema, values))
        self.emit_batch(out)


class LimitOperator(Operator):
    """Passes through at most ``limit`` rows."""

    def __init__(self, limit: int, input_schema: Schema):
        super().__init__(f"limit({limit})")
        if limit < 0:
            raise OperatorError("LIMIT must be non-negative")
        self.limit = limit
        self._schema = input_schema
        self._emitted = 0

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process(self, row: Row, slot: int) -> None:
        if self._emitted < self.limit:
            self._emitted += 1
            self.emit(row)
