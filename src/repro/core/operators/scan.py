"""Table access operators (leaves of every plan): full scan and index scan."""

from __future__ import annotations

from typing import Any

from repro.core.operators.base import Operator
from repro.errors import OperatorError
from repro.storage.batch import RowBatch
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["ScanOperator", "IndexScanOperator"]


class _TableAccessOperator(Operator):
    """Shared leaf machinery: emit a precomputed batch in drain-bound slices.

    Both access paths materialize their output as one column-major batch on
    the first step (the table's cached column snapshot, optionally gathered
    through an index), then emit at most one drain bound's worth of rows per
    step so the executor can interleave leaves with downstream crowd
    operators — important because those start posting HITs as soon as the
    first tuples arrive (asynchronous pipelining, Section 2).
    """

    def __init__(self, name: str, table: Table, alias: str | None = None):
        alias = alias or table.name
        super().__init__(name)
        self.table = table
        self.alias = alias
        self._schema = table.schema.qualified(alias)
        self._batch: RowBatch | None = None
        self._position = 0
        self._exhausted = False

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _load_batch(self) -> RowBatch:
        """Produce the full output batch (qualified); called once, lazily."""
        raise NotImplementedError

    def step(self) -> bool:
        emitted = 0
        if not self._exhausted:
            if self._batch is None:
                self._batch = self._load_batch()
            start = self._position
            end = min(start + self._max_rows_per_step, len(self._batch))
            if end > start:
                self._position = end
                emitted = end - start
                self.metrics.rows_in += emitted
                self.emit_rowbatch(self._batch.slice(start, end))
            if self._position >= len(self._batch):
                self._exhausted = True
        # Let the base class run the finalisation hook once exhausted.
        base_progress = super().step() if self._exhausted else False
        return emitted > 0 or base_progress

    def _process(self, row: Row, slot: int) -> None:  # pragma: no cover - leaf operator
        raise AssertionError("table access operators have no inputs")

    def is_done(self) -> bool:
        return self._exhausted and super().is_done()


class ScanOperator(_TableAccessOperator):
    """Emits every row of a base table, re-qualified with the table (or alias) name.

    The output is the table's cached column snapshot rebound to the qualified
    schema — qualifying renames columns but keeps their types, so the rebind
    (:meth:`RowBatch.with_schema` fast path) copies nothing and scanning an
    unchanged table twice reuses the same snapshot columns.
    """

    def __init__(self, table: Table, alias: str | None = None):
        super().__init__(f"scan({alias or table.name})", table, alias)

    def _load_batch(self) -> RowBatch:
        return self.table.to_batch().with_schema(self._schema)


class IndexScanOperator(_TableAccessOperator):
    """Emits the rows of a base table matched by one indexed predicate.

    The predicate is ``column op literal`` where ``column`` carries a
    secondary index: a hash index answers ``=``, a sorted index answers both
    ``=`` and the range operators.  The index yields row *positions* in
    ascending order, which the operator gathers out of the table's cached
    column snapshot — so the output is byte-identical to scan-then-filter
    over the same predicate (property-tested), just without touching the
    non-matching rows.
    """

    RANGE_OPS = ("<", "<=", ">", ">=")
    SUPPORTED_OPS = ("=",) + RANGE_OPS

    def __init__(
        self,
        table: Table,
        column: str,
        op: str,
        value: Any,
        alias: str | None = None,
    ):
        if op not in self.SUPPORTED_OPS:
            raise OperatorError(f"index scan cannot serve operator {op!r}")
        name = alias or table.name
        super().__init__(f"index-scan({name}.{column} {op} {value!r})", table, alias)
        self.column = column
        self.op = op
        self.value = value

    def _matched_positions(self) -> list[int]:
        index = self.table.index_on(self.column)
        if index is None:
            raise OperatorError(
                f"no index on {self.table.name}.{self.column}; "
                "the planner must not choose an index scan here"
            )
        if self.op == "=":
            return index.positions_equal(self.value)
        if not hasattr(index, "positions_range"):
            raise OperatorError(
                f"index on {self.table.name}.{self.column} is {index.kind!r}; "
                f"range operator {self.op!r} needs a sorted index"
            )
        if self.op == "<":
            return index.positions_range(high=self.value, high_inclusive=False)
        if self.op == "<=":
            return index.positions_range(high=self.value, high_inclusive=True)
        if self.op == ">":
            return index.positions_range(low=self.value, low_inclusive=False)
        return index.positions_range(low=self.value, low_inclusive=True)

    def _load_batch(self) -> RowBatch:
        snapshot = self.table.to_batch().with_schema(self._schema)
        if self.value is None:
            # column op NULL is never True: SQL three-valued logic.
            return RowBatch.empty(self._schema)
        positions = self._matched_positions()
        if len(positions) == len(snapshot):
            return snapshot
        return snapshot.take(positions)
