"""Table scan operator (leaf of every plan)."""

from __future__ import annotations

from repro.core.operators.base import Operator
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["ScanOperator"]


class ScanOperator(Operator):
    """Emits every row of a base table, re-qualified with the table (or alias) name.

    The scan emits at most one drain bound's worth of rows per step so the
    executor can interleave scans with downstream crowd operators — important
    because downstream operators start posting HITs as soon as the first
    tuples arrive (asynchronous pipelining, Section 2).  Each step takes one
    slice of the table snapshot and emits it as a single batch; re-qualifying
    a row is a schema rebind (:meth:`Row.with_schema` fast path), not a
    re-validation.
    """

    def __init__(self, table: Table, alias: str | None = None):
        name = alias or table.name
        super().__init__(f"scan({name})")
        self.table = table
        self.alias = name
        self._schema = table.schema.qualified(name)
        self._snapshot: list[Row] | None = None
        self._position = 0
        self._exhausted = False

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def step(self) -> bool:
        emitted = 0
        if not self._exhausted:
            if self._snapshot is None:
                self._snapshot = self.table.rows()
            start = self._position
            end = min(start + self._max_rows_per_step, len(self._snapshot))
            if end > start:
                schema = self._schema
                if schema.same_shape_as(self.table.schema):
                    # Qualifying renames columns but keeps their types, so
                    # stored values rebind without per-row validation.
                    unchecked = Row.unchecked
                    batch = [
                        unchecked(schema, row.values) for row in self._snapshot[start:end]
                    ]
                else:  # pragma: no cover - qualification never changes types
                    batch = [row.with_schema(schema) for row in self._snapshot[start:end]]
                self._position = end
                self.metrics.rows_in += len(batch)
                self.emit_batch(batch)
                emitted = end - start
            if self._position >= len(self._snapshot):
                self._exhausted = True
        # Let the base class run the finalisation hook once exhausted.
        base_progress = super().step() if self._exhausted else False
        return emitted > 0 or base_progress

    def _process(self, row: Row, slot: int) -> None:  # pragma: no cover - leaf operator
        raise AssertionError("scan operators have no inputs")

    def is_done(self) -> bool:
        return self._exhausted and super().is_done()
