"""Table scan operator (leaf of every plan)."""

from __future__ import annotations

from repro.core.operators.base import Operator
from repro.storage.row import Row
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["ScanOperator"]


class ScanOperator(Operator):
    """Emits every row of a base table, re-qualified with the table (or alias) name.

    The scan emits at most :attr:`MAX_ROWS_PER_STEP` rows per step so the
    executor can interleave scans with downstream crowd operators — important
    because downstream operators start posting HITs as soon as the first
    tuples arrive (asynchronous pipelining, Section 2).
    """

    def __init__(self, table: Table, alias: str | None = None):
        name = alias or table.name
        super().__init__(f"scan({name})")
        self.table = table
        self.alias = name
        self._schema = table.schema.qualified(name)
        self._iterator = None
        self._exhausted = False

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def step(self) -> bool:
        if self._exhausted:
            return super().step()
        if self._iterator is None:
            self._iterator = iter(self.table.scan())
        emitted = 0
        while emitted < self.MAX_ROWS_PER_STEP:
            try:
                raw = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                break
            self.metrics.rows_in += 1
            self.emit(raw.with_schema(self._schema))
            emitted += 1
        # Let the base class run the finalisation hook once exhausted.
        base_progress = super().step() if self._exhausted else False
        return emitted > 0 or base_progress

    def _process(self, row: Row, slot: int) -> None:  # pragma: no cover - leaf operator
        raise AssertionError("scan operators have no inputs")

    def is_done(self) -> bool:
        return self._exhausted and super().is_done()
