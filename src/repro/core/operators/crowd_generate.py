"""Crowd-powered schema extension (Query 1 / Task 1 of the paper).

``SELECT companyName, findCEO(companyName).CEO, findCEO(companyName).Phone``
runs the ``findCEO`` task once per input tuple and widens the tuple with the
task's RETURNS fields.  The operator relies on the Task Cache so repeated uses
of the same UDF call — within the query, across operators, or across queries —
only pay for one HIT per distinct argument tuple.
"""

from __future__ import annotations

from typing import Any

from repro.core.operators.base import Operator
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import Task, TaskKind, TaskResult
from repro.storage.expressions import Expression
from repro.storage.row import Row
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

__all__ = ["CrowdGenerateOperator"]


class CrowdGenerateOperator(Operator):
    """Widens each input row with the RETURNS fields of a Question task.

    Parameters
    ----------
    spec:
        The TASK definition (``TaskType: Question`` with a Form response).
    arg_expressions:
        Expressions evaluated against the input row to produce the task's
        arguments (e.g. ``companyName``), substituted into the Text template
        and used as the cache key.
    input_schema:
        Schema of the child operator.
    output_prefix:
        Prefix for the new columns; defaults to the task name, producing
        ``findCEO.CEO`` / ``findCEO.Phone``.
    """

    IS_CROWD = True

    def __init__(
        self,
        spec: TaskSpec,
        arg_expressions: list[Expression],
        input_schema: Schema,
        *,
        output_prefix: str | None = None,
    ):
        super().__init__(f"crowd-generate({spec.name})")
        self.spec = spec
        self.arg_expressions = list(arg_expressions)
        prefix = output_prefix or spec.name
        self._new_columns = tuple(
            Column(f"{prefix}.{ret.name}", DataType.ANY) for ret in spec.returns
        )
        self._schema = input_schema.extend(*self._new_columns)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def _process(self, row: Row, slot: int) -> None:
        args = tuple(expression.evaluate(row) for expression in self.arg_expressions)
        payload: dict[str, Any] = {"args": args, "row": row.to_dict()}
        for parameter, value in zip(self.spec.parameters, args):
            payload[parameter.name] = value
        task = Task(
            kind=TaskKind.GENERATE,
            spec=self.spec,
            payload=payload,
            callback=lambda result, row=row: self._on_result(row, result),
            cache_key=args,
            query_id=self.context.query_id,
            assignments_override=self.context.assignments_for(self.spec),
        )
        self._task_started()
        self.context.task_manager.submit(task)

    def _on_result(self, row: Row, result: TaskResult) -> None:
        reduced = result.reduced if isinstance(result.reduced, dict) else {}
        values = [reduced.get(ret.name) for ret in self.spec.returns]
        self.emit(row.extended(self._new_columns, values))
        self._task_finished()
