"""Physical operators: conventional relational operators plus the crowd-powered
generate / filter / join / sort operators that make Qurk a "query processor for
human operators"."""

from repro.core.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateSpec,
    GroupByOperator,
    LimitOperator,
)
from repro.core.operators.base import Operator, OperatorMetrics
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_generate import CrowdGenerateOperator
from repro.core.operators.crowd_join import CrowdJoinOperator, JoinStrategy
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.operators.project import LocalFilterOperator, ProjectOperator, ProjectionItem
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sink import ResultSinkOperator
from repro.core.operators.sort_local import LocalSortOperator

__all__ = [
    "Operator",
    "OperatorMetrics",
    "ScanOperator",
    "ProjectOperator",
    "ProjectionItem",
    "LocalFilterOperator",
    "CrowdGenerateOperator",
    "CrowdFilterOperator",
    "CrowdJoinOperator",
    "JoinStrategy",
    "LocalHashJoinOperator",
    "CrowdSortOperator",
    "SortStrategy",
    "LocalSortOperator",
    "GroupByOperator",
    "LimitOperator",
    "AggregateSpec",
    "AGGREGATE_FUNCTIONS",
    "ResultSinkOperator",
]
