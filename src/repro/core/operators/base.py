"""Asynchronous, queue-connected query operators.

Section 2: "due to the latency in processing HITs, the query operators
communicate asynchronously through input queues, as in the Volcano system...
in contrast to the pull based iterator model, results are automatically
emitted from the top-most operator and inserted into a results table."

Each operator owns one input queue per child.  The executor repeatedly calls
:meth:`Operator.step`, which drains a bounded amount of queued input, possibly
submits crowd tasks, and pushes produced rows into its parent's queue.  Crowd
operators keep a count of outstanding tasks; an operator is *done* only when
its inputs are finished, its queues are drained, it has no outstanding tasks,
and it has flushed any internal buffers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import OperatorError
from repro.storage.row import Row
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["OperatorMetrics", "Operator"]


@dataclass
class OperatorMetrics:
    """Per-operator counters surfaced by the dashboard's plan view."""

    rows_in: int = 0
    rows_out: int = 0
    tasks_created: int = 0
    tasks_completed: int = 0


class Operator:
    """Base class for all physical operators."""

    #: Upper bound on rows drained from input queues per :meth:`step` call,
    #: keeping single steps cheap so the executor can interleave operators.
    MAX_ROWS_PER_STEP = 64

    #: Drain bound for plans with no crowd operator anywhere: nothing is
    #: waiting on simulated HIT latency, so steps may be large and cheap
    #: instead of small and interleaved.  The executor raises each
    #: operator's ``_max_rows_per_step`` to this for local-only plans.
    LOCAL_MAX_ROWS_PER_STEP = 8192

    #: Whether this operator submits crowd tasks.  Crowd subclasses override
    #: this; the executor uses it to spot plans that never touch the crowd.
    IS_CROWD = False

    def __init__(self, name: str):
        self.name = name
        self.children: list[Operator] = []
        self.parent: Operator | None = None
        self.child_slot: int = 0
        self.metrics = OperatorMetrics()
        #: Cardinality the physical planner expected on this operator's first
        #: input (None for hand-built plans).  The adaptive replanner compares
        #: it against observed cardinalities to detect misestimation.
        self.planned_input_rows: float | None = None
        self._max_rows_per_step = self.MAX_ROWS_PER_STEP
        self._in_queues: list[deque[Row]] = []
        self._inputs_done: list[bool] = []
        self._outstanding_tasks = 0
        self._finalized = False
        self._context: "ExecutionContext | None" = None

    # -- tree construction ----------------------------------------------------------

    def add_child(self, child: "Operator") -> "Operator":
        """Attach ``child`` as the next input of this operator."""
        child.parent = self
        child.child_slot = len(self.children)
        self.children.append(child)
        self._in_queues.append(deque())
        self._inputs_done.append(False)
        return self

    def walk(self) -> Iterable["Operator"]:
        """Yield this operator and all descendants, depth first, children first."""
        for child in self.children:
            yield from child.walk()
        yield self

    # -- schema -------------------------------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        """Schema of rows this operator emits."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------------------

    def open(self, context: "ExecutionContext") -> None:
        """Bind the operator to an execution context before any work happens."""
        self._context = context

    def close(self) -> None:
        """Release any resources (default: nothing)."""

    @property
    def context(self) -> "ExecutionContext":
        if self._context is None:
            raise OperatorError(f"operator {self.name} was stepped before open()")
        return self._context

    # -- data flow --------------------------------------------------------------------------

    def push(self, row: Row, slot: int = 0) -> None:
        """Enqueue an input row from child ``slot``."""
        self._in_queues[slot].append(row)

    def push_batch(self, rows: list[Row], slot: int = 0) -> None:
        """Enqueue several input rows from child ``slot`` in one call."""
        self._in_queues[slot].extend(rows)

    def finish_input(self, slot: int = 0) -> None:
        """Signal that child ``slot`` will push no more rows."""
        self._inputs_done[slot] = True

    def inputs_finished(self) -> bool:
        """True when every child has signalled completion (leaves: immediately)."""
        return all(self._inputs_done) if self._inputs_done else True

    def queued_rows(self) -> int:
        """Total rows waiting in this operator's input queues."""
        return sum(len(queue) for queue in self._in_queues)

    def emit(self, row: Row) -> None:
        """Push a produced row into the parent's input queue."""
        self.metrics.rows_out += 1
        if self.parent is not None:
            self.parent.push(row, self.child_slot)

    def emit_batch(self, rows: list[Row]) -> None:
        """Push several produced rows into the parent's queue in one call."""
        if not rows:
            return
        self.metrics.rows_out += len(rows)
        if self.parent is not None:
            self.parent.push_batch(rows, self.child_slot)

    def consumed_input(self) -> list[tuple[Row, int]]:
        """Input rows this operator has drained but not irrevocably acted on.

        Operators that merely *buffer* their input before submitting crowd
        work (joins, sorts) override this so the adaptive replanner can
        replay those rows into a replacement operator.  Operators that act
        on rows immediately return the empty list (the default), which makes
        them non-replaceable once any input has been processed.
        """
        return []

    # -- task accounting -------------------------------------------------------------------

    @property
    def outstanding_tasks(self) -> int:
        """Crowd tasks submitted by this operator that have not completed yet."""
        return self._outstanding_tasks

    def _task_started(self) -> None:
        self._outstanding_tasks += 1
        self.metrics.tasks_created += 1

    def _task_finished(self) -> None:
        if self._outstanding_tasks <= 0:
            raise OperatorError(f"operator {self.name}: task bookkeeping underflow")
        self._outstanding_tasks -= 1
        self.metrics.tasks_completed += 1

    # -- stepping ---------------------------------------------------------------------------

    def step(self) -> bool:
        """Perform a bounded amount of work.  Returns True when progress was made.

        Input queues are drained in slices handed to :meth:`_process_batch`,
        so an operator pays one call per slice instead of one virtual call
        per row.  The drain budget is shared across slots, exactly like the
        old one-``popleft``-per-row loop.
        """
        progress = False
        budget = self._max_rows_per_step
        for slot, queue in enumerate(self._in_queues):
            while queue and budget > 0:
                if len(queue) <= budget:
                    rows = list(queue)
                    queue.clear()
                else:
                    rows = [queue.popleft() for _ in range(budget)]
                self.metrics.rows_in += len(rows)
                budget -= len(rows)
                self._process_batch(rows, slot)
                progress = True
            if budget <= 0:
                break
        if not self._finalized and self.inputs_finished() and self.queued_rows() == 0:
            self._finalized = True
            self._on_inputs_finished()
            progress = True
        return progress

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        """Handle one slice of input rows.

        The default is the per-row loop; operators with a cheaper bulk form
        (buffer extends, compiled-expression loops, batch table appends)
        override this instead of :meth:`_process`.
        """
        process = self._process
        for row in rows:
            process(row, slot)

    def _process(self, row: Row, slot: int) -> None:
        """Handle one input row (override in subclasses)."""
        raise NotImplementedError

    def _on_inputs_finished(self) -> None:
        """Hook called once all inputs are finished and drained (override as needed)."""

    # -- completion --------------------------------------------------------------------------

    def is_done(self) -> bool:
        """Whether this operator will never emit another row."""
        return (
            self.inputs_finished()
            and self.queued_rows() == 0
            and self._finalized
            and self._outstanding_tasks == 0
            and self._internal_work_remaining() == 0
        )

    def _internal_work_remaining(self) -> int:
        """Extra pending work beyond queues/tasks (override for buffering operators)."""
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, in={self.metrics.rows_in}, "
            f"out={self.metrics.rows_out}, outstanding={self._outstanding_tasks})"
        )
