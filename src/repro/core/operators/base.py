"""Asynchronous, queue-connected query operators.

Section 2: "due to the latency in processing HITs, the query operators
communicate asynchronously through input queues, as in the Volcano system...
in contrast to the pull based iterator model, results are automatically
emitted from the top-most operator and inserted into a results table."

Each operator owns one input queue per child.  The executor repeatedly calls
:meth:`Operator.step`, which drains a bounded amount of queued input, possibly
submits crowd tasks, and pushes produced rows into its parent's queue.  Crowd
operators keep a count of outstanding tasks; an operator is *done* only when
its inputs are finished, its queues are drained, it has no outstanding tasks,
and it has flushed any internal buffers.

Queues carry **column-major batches** (:class:`~repro.storage.batch.RowBatch`),
not rows: the local data plane is columnar end-to-end, and rows materialize
only at sinks, crowd-operator task-emission boundaries, and HIT compilation.
Operators choose the abstraction level they need by overriding exactly one of
three hooks, from most to least columnar:

- :meth:`_process_batches` — batch in, batch out (local filter/project/
  sort/join/aggregate); the default materializes rows and delegates down.
- :meth:`_process_batch` — one slice of rows per call (sinks, crowd
  operators that submit one task per row).
- :meth:`_process` — one row per call (the simplest fallback).

The drain budget is counted in *rows* regardless of batch shape, and a batch
larger than the remaining budget is split at the boundary, so per-step row
counts — and therefore HIT batching and the determinism fingerprints — are
independent of how emitters grouped their output.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import OperatorError
from repro.storage.batch import RowBatch
from repro.storage.row import Row
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.exec.context import ExecutionContext

__all__ = ["OperatorMetrics", "Operator"]


@dataclass
class OperatorMetrics:
    """Per-operator counters surfaced by the dashboard's plan view."""

    rows_in: int = 0
    rows_out: int = 0
    tasks_created: int = 0
    tasks_completed: int = 0


class Operator:
    """Base class for all physical operators."""

    #: Upper bound on rows drained from input queues per :meth:`step` call,
    #: keeping single steps cheap so the executor can interleave operators.
    MAX_ROWS_PER_STEP = 64

    #: Drain bound for plans with no crowd operator anywhere: nothing is
    #: waiting on simulated HIT latency, so steps may be large and cheap
    #: instead of small and interleaved.  The executor raises each
    #: operator's ``_max_rows_per_step`` to this for local-only plans.
    LOCAL_MAX_ROWS_PER_STEP = 8192

    #: Whether this operator submits crowd tasks.  Crowd subclasses override
    #: this; the executor uses it to spot plans that never touch the crowd.
    IS_CROWD = False

    def __init__(self, name: str):
        self.name = name
        self.children: list[Operator] = []
        self.parent: Operator | None = None
        self.child_slot: int = 0
        self.metrics = OperatorMetrics()
        #: Cardinality the physical planner expected on this operator's first
        #: input (None for hand-built plans).  The adaptive replanner compares
        #: it against observed cardinalities to detect misestimation.
        self.planned_input_rows: float | None = None
        self._max_rows_per_step = self.MAX_ROWS_PER_STEP
        self._in_queues: list[deque[RowBatch]] = []
        self._inputs_done: list[bool] = []
        self._outstanding_tasks = 0
        self._finalized = False
        self._context: "ExecutionContext | None" = None

    # -- tree construction ----------------------------------------------------------

    def add_child(self, child: "Operator") -> "Operator":
        """Attach ``child`` as the next input of this operator."""
        child.parent = self
        child.child_slot = len(self.children)
        self.children.append(child)
        self._in_queues.append(deque())
        self._inputs_done.append(False)
        return self

    def walk(self) -> Iterable["Operator"]:
        """Yield this operator and all descendants, depth first, children first."""
        for child in self.children:
            yield from child.walk()
        yield self

    # -- schema -------------------------------------------------------------------------

    @property
    def output_schema(self) -> Schema:
        """Schema of rows this operator emits."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------------------------

    def open(self, context: "ExecutionContext") -> None:
        """Bind the operator to an execution context before any work happens."""
        self._context = context

    def close(self) -> None:
        """Release any resources (default: nothing)."""

    @property
    def context(self) -> "ExecutionContext":
        if self._context is None:
            raise OperatorError(f"operator {self.name} was stepped before open()")
        return self._context

    # -- data flow --------------------------------------------------------------------------

    def push(self, row: Row, slot: int = 0) -> None:
        """Enqueue one input row from child ``slot`` (wrapped as a 1-row batch)."""
        self._in_queues[slot].append(RowBatch.single(row))

    def push_batch(self, rows: list[Row], slot: int = 0) -> None:
        """Enqueue several input rows from child ``slot`` in one call.

        Consecutive rows sharing a schema object become one column-major
        batch; schema derivations are memoized, so a homogeneous list (the
        overwhelmingly common case) transposes into a single batch.
        """
        if not rows:
            return
        queue = self._in_queues[slot]
        start = 0
        schema = rows[0].schema
        for i in range(1, len(rows)):
            if rows[i].schema is not schema:
                queue.append(RowBatch.from_rows(schema, rows[start:i]))
                start, schema = i, rows[i].schema
        queue.append(RowBatch.from_rows(schema, rows[start:]))

    def push_rowbatch(self, batch: RowBatch, slot: int = 0) -> None:
        """Enqueue an already-columnar batch from child ``slot`` as-is."""
        if len(batch):
            self._in_queues[slot].append(batch)

    def finish_input(self, slot: int = 0) -> None:
        """Signal that child ``slot`` will push no more rows."""
        self._inputs_done[slot] = True

    def inputs_finished(self) -> bool:
        """True when every child has signalled completion (leaves: immediately)."""
        return all(self._inputs_done) if self._inputs_done else True

    def queued_rows(self) -> int:
        """Total rows waiting in this operator's input queues."""
        return sum(len(batch) for queue in self._in_queues for batch in queue)

    def emit(self, row: Row) -> None:
        """Push a produced row into the parent's input queue."""
        self.metrics.rows_out += 1
        if self.parent is not None:
            self.parent.push(row, self.child_slot)

    def emit_batch(self, rows: list[Row]) -> None:
        """Push several produced rows into the parent's queue in one call."""
        if not rows:
            return
        self.metrics.rows_out += len(rows)
        if self.parent is not None:
            self.parent.push_batch(rows, self.child_slot)

    def emit_rowbatch(self, batch: RowBatch) -> None:
        """Push a produced column-major batch into the parent's queue as-is."""
        length = len(batch)
        if not length:
            return
        self.metrics.rows_out += length
        if self.parent is not None:
            self.parent.push_rowbatch(batch, self.child_slot)

    def consumed_input(self) -> list[tuple[Row, int]]:
        """Input rows this operator has drained but not irrevocably acted on.

        Operators that merely *buffer* their input before submitting crowd
        work (joins, sorts) override this so the adaptive replanner can
        replay those rows into a replacement operator.  Operators that act
        on rows immediately return the empty list (the default), which makes
        them non-replaceable once any input has been processed.
        """
        return []

    # -- task accounting -------------------------------------------------------------------

    @property
    def outstanding_tasks(self) -> int:
        """Crowd tasks submitted by this operator that have not completed yet."""
        return self._outstanding_tasks

    def _task_started(self) -> None:
        self._outstanding_tasks += 1
        self.metrics.tasks_created += 1

    def _task_finished(self) -> None:
        if self._outstanding_tasks <= 0:
            raise OperatorError(f"operator {self.name}: task bookkeeping underflow")
        self._outstanding_tasks -= 1
        self.metrics.tasks_completed += 1

    # -- stepping ---------------------------------------------------------------------------

    def step(self) -> bool:
        """Perform a bounded amount of work.  Returns True when progress was made.

        Input queues hold column-major batches, drained one batch per
        :meth:`_process_batches` call.  The drain budget counts *rows* and is
        shared across slots; a batch straddling the budget boundary is split
        there (the remainder goes back to the front of its queue), so the
        rows drained per step match the old one-``popleft``-per-row loop
        exactly, whatever the batch shapes.
        """
        progress = False
        budget = self._max_rows_per_step
        for slot, queue in enumerate(self._in_queues):
            while queue and budget > 0:
                batch = queue.popleft()
                size = len(batch)
                if size > budget:
                    queue.appendleft(batch.slice(budget, size))
                    batch = batch.slice(0, budget)
                    size = budget
                self.metrics.rows_in += size
                budget -= size
                self._process_batches(batch, slot)
                progress = True
            if budget <= 0:
                break
        if not self._finalized and self.inputs_finished() and self.queued_rows() == 0:
            self._finalized = True
            self._on_inputs_finished()
            progress = True
        return progress

    def _process_batches(self, batch: RowBatch, slot: int) -> None:
        """Handle one column-major input batch.

        Local operators with true batch-in/batch-out forms (column kernels,
        selection vectors, gathers) override this.  The default materializes
        the batch into rows and delegates to :meth:`_process_batch`, so
        per-row operators — crowd operators above all — are untouched by the
        columnar exchange format.
        """
        self._process_batch(batch.to_rows(), slot)

    def _process_batch(self, rows: list[Row], slot: int) -> None:
        """Handle one slice of input rows.

        The default is the per-row loop; operators with a cheaper bulk form
        (buffer extends, compiled-expression loops, batch table appends)
        override this instead of :meth:`_process`.
        """
        process = self._process
        for row in rows:
            process(row, slot)

    def _process(self, row: Row, slot: int) -> None:
        """Handle one input row (override in subclasses)."""
        raise NotImplementedError

    def _on_inputs_finished(self) -> None:
        """Hook called once all inputs are finished and drained (override as needed)."""

    # -- completion --------------------------------------------------------------------------

    def is_done(self) -> bool:
        """Whether this operator will never emit another row."""
        return (
            self.inputs_finished()
            and self.queued_rows() == 0
            and self._finalized
            and self._outstanding_tasks == 0
            and self._internal_work_remaining() == 0
        )

    def _internal_work_remaining(self) -> int:
        """Extra pending work beyond queues/tasks (override for buffering operators)."""
        return 0

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, in={self.metrics.rows_in}, "
            f"out={self.metrics.rows_out}, outstanding={self._outstanding_tasks})"
        )
