"""Qurk core: answers, tasks, operators, execution, optimizer and language."""
