"""Plans SELECT statements into trees of physical operators.

The planner rewrites crowd UDF calls into crowd operators:

* ``findCEO(companyName).CEO`` in the SELECT list → a
  :class:`~repro.core.operators.crowd_generate.CrowdGenerateOperator` below
  the projection, with the field access rewritten to the generated column;
* ``WHERE isTargetColor(name)`` → a crowd filter on that table;
* ``WHERE samePerson(a.image, b.image)`` over two tables → a crowd join,
  whose interface (pairwise vs two-column) the optimizer chooses by cost;
* ``ORDER BY biggerItem(...)`` / a Rank UDF → a crowd sort, comparison or
  rating based.

Locally evaluable predicates are pushed onto their tables *below* the crowd
operators, because a free machine filter that removes tuples before they
reach the crowd directly reduces monetary cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exec.context import QueryConfig
from repro.core.lang.ast import SelectItem, SelectStatement
from repro.core.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateSpec,
    GroupByOperator,
    LimitOperator,
)
from repro.core.operators.base import Operator
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_generate import CrowdGenerateOperator
from repro.core.operators.crowd_join import CrowdJoinOperator
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.project import LocalFilterOperator, ProjectOperator, ProjectionItem
from repro.core.operators.scan import ScanOperator
from repro.core.operators.sink import ResultSinkOperator
from repro.core.operators.sort_local import LocalSortOperator
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.plan.registry import RegisteredTask, TaskRegistry
from repro.errors import PlanError
from repro.storage.database import Database
from repro.storage.expressions import (
    BooleanOp,
    ColumnRef,
    Expression,
    FieldAccess,
    FunctionCall,
    Not,
    find_calls,
    walk,
)
from repro.storage.schema import Schema

__all__ = ["PlannedQuery", "QueryPlanner"]


@dataclass
class PlannedQuery:
    """The output of planning: the sink-rooted operator tree and its schema."""

    root: ResultSinkOperator
    output_schema: Schema
    statement: SelectStatement


class QueryPlanner:
    """Turns parsed SELECT statements into physical plans."""

    def __init__(
        self,
        database: Database,
        registry: TaskRegistry,
        optimizer: QueryOptimizer,
        *,
        config: QueryConfig | None = None,
    ) -> None:
        self.database = database
        self.registry = registry
        self.optimizer = optimizer
        self.config = config if config is not None else QueryConfig()

    # -- entry point --------------------------------------------------------------------

    def plan(self, statement: SelectStatement, *, query_id: str = "") -> PlannedQuery:
        """Plan a statement; the results table is created by the caller."""
        scans = self._build_scans(statement)
        conjuncts = _split_conjuncts(statement.where)
        local_conjuncts, crowd_filters, join_predicates = self._classify_conjuncts(
            conjuncts, scans
        )

        pipelines = {
            binding: self._build_table_pipeline(
                binding, scan, local_conjuncts.get(binding, []), crowd_filters.get(binding, [])
            )
            for binding, scan in scans.items()
        }
        current = self._combine_tables(statement, pipelines, join_predicates, scans)

        post_join_filters = local_conjuncts.get(None, [])
        for predicate in post_join_filters:
            operator = LocalFilterOperator(predicate, current.output_schema)
            operator.add_child(current)
            current = operator

        current, rewritten_items = self._plan_generates(statement.select_items, current)
        current = self._plan_order_by(statement, current)
        current, rewritten_items = self._plan_grouping(statement, rewritten_items, current)
        if statement.limit is not None:
            limit = LimitOperator(statement.limit, current.output_schema)
            limit.add_child(current)
            current = limit

        project = self._build_projection(rewritten_items, current)
        project.add_child(current)

        results_table = self.database.create_results_table(
            project.output_schema, query_id=query_id or None
        )
        sink = ResultSinkOperator(results_table)
        sink.add_child(project)
        return PlannedQuery(root=sink, output_schema=project.output_schema, statement=statement)

    # -- FROM ----------------------------------------------------------------------------------

    def _build_scans(self, statement: SelectStatement) -> dict[str, ScanOperator]:
        if not statement.from_tables:
            raise PlanError("a query needs at least one table in FROM")
        scans: dict[str, ScanOperator] = {}
        for table_ref in statement.from_tables:
            table = self.database.table(table_ref.name)
            if table_ref.binding in scans:
                raise PlanError(f"duplicate table binding {table_ref.binding!r}")
            scans[table_ref.binding] = ScanOperator(table, alias=table_ref.alias)
        return scans

    # -- WHERE classification --------------------------------------------------------------------

    def _classify_conjuncts(
        self, conjuncts: list[Expression], scans: dict[str, ScanOperator]
    ) -> tuple[dict, dict, list]:
        local_conjuncts: dict[str | None, list[Expression]] = {}
        crowd_filters: dict[str, list[tuple[RegisteredTask, FunctionCall, bool]]] = {}
        join_predicates: list[tuple[RegisteredTask, FunctionCall, str, str]] = []
        for conjunct in conjuncts:
            crowd_call, negated = _as_crowd_call(conjunct, self.registry)
            if crowd_call is not None:
                entry = self.registry.require(crowd_call.name)
                bindings = self._bindings_of(crowd_call, scans)
                if entry.is_join_predicate and len(bindings) == 2:
                    if negated:
                        raise PlanError("negated crowd join predicates are not supported")
                    left, right = self._ordered_bindings(bindings, scans)
                    join_predicates.append((entry, crowd_call, left, right))
                    continue
                if len(bindings) > 1:
                    raise PlanError(
                        f"crowd filter {crowd_call.name} references several tables; "
                        "only join predicates may span tables"
                    )
                binding = next(iter(bindings)) if bindings else next(iter(scans))
                crowd_filters.setdefault(binding, []).append((entry, crowd_call, negated))
                continue
            self._require_locally_evaluable(conjunct)
            bindings = self._bindings_of(conjunct, scans)
            if len(bindings) == 1:
                local_conjuncts.setdefault(next(iter(bindings)), []).append(conjunct)
            elif len(bindings) == 0:
                local_conjuncts.setdefault(next(iter(scans)), []).append(conjunct)
            else:
                local_conjuncts.setdefault(None, []).append(conjunct)
        return local_conjuncts, crowd_filters, join_predicates

    def _require_locally_evaluable(self, conjunct: Expression) -> None:
        """Reject predicates that call functions Qurk knows nothing about."""
        for call in find_calls(conjunct):
            if call.implementation is None and call.name not in self.registry:
                raise PlanError(
                    f"function {call.name!r} in WHERE is neither a registered crowd TASK "
                    "nor a locally implemented function"
                )

    def _bindings_of(self, expression: Expression, scans: dict[str, ScanOperator]) -> set[str]:
        bindings: set[str] = set()
        for name in expression.references():
            qualifier = name.rsplit(".", 1)[0] if "." in name else None
            if qualifier and qualifier in scans:
                bindings.add(qualifier)
                continue
            # Unqualified column: find which table defines it.
            owners = [b for b, scan in scans.items() if name in scan.output_schema]
            if len(owners) == 1:
                bindings.add(owners[0])
            elif len(owners) > 1:
                raise PlanError(f"column reference {name!r} is ambiguous across tables")
            else:
                raise PlanError(f"unknown column {name!r}")
        return bindings

    @staticmethod
    def _ordered_bindings(bindings: set[str], scans: dict[str, ScanOperator]) -> tuple[str, str]:
        ordered = [binding for binding in scans if binding in bindings]
        return ordered[0], ordered[1]

    # -- per-table pipelines -------------------------------------------------------------------------

    def _build_table_pipeline(
        self,
        binding: str,
        scan: ScanOperator,
        local_predicates: list[Expression],
        crowd_predicates: list[tuple[RegisteredTask, FunctionCall, bool]],
    ) -> Operator:
        current: Operator = scan
        for predicate in local_predicates:
            operator = LocalFilterOperator(predicate, current.output_schema)
            operator.add_child(current)
            current = operator
        for entry, call, negated in crowd_predicates:
            operator = CrowdFilterOperator(
                entry.spec,
                list(call.args),
                current.output_schema,
                negate=negated,
            )
            operator.add_child(current)
            current = operator
        return current

    def _combine_tables(
        self,
        statement: SelectStatement,
        pipelines: dict[str, Operator],
        join_predicates: list[tuple[RegisteredTask, FunctionCall, str, str]],
        scans: dict[str, ScanOperator],
    ) -> Operator:
        if len(pipelines) == 1:
            if join_predicates:
                raise PlanError("a join predicate needs two tables in FROM")
            return next(iter(pipelines.values()))
        if len(pipelines) != 2:
            raise PlanError("queries over more than two tables are not supported")
        if not join_predicates:
            raise PlanError(
                "joining two tables requires a crowd join predicate in WHERE "
                "(cartesian products are never what you want to pay for)"
            )
        if len(join_predicates) > 1:
            raise PlanError("only one crowd join predicate per query is supported")
        entry, _call, left_binding, right_binding = join_predicates[0]
        left = pipelines[left_binding]
        right = pipelines[right_binding]
        n_left = len(scans[left_binding].table)
        n_right = len(scans[right_binding].table)
        choice = self.optimizer.choose_join_strategy(entry.spec, n_left, n_right)
        join = CrowdJoinOperator(
            entry.spec,
            left.output_schema,
            right.output_schema,
            strategy=choice.strategy,
            pairs_per_hit=choice.pairs_per_hit,
            left_per_hit=choice.left_per_hit,
            right_per_hit=choice.right_per_hit,
            left_payload=entry.left_payload,
            right_payload=entry.right_payload,
            prefilter=entry.prefilter,
        )
        join.add_child(left)
        join.add_child(right)
        return join

    # -- SELECT-list crowd generates ---------------------------------------------------------------------

    def _plan_generates(
        self, select_items: tuple[SelectItem, ...], current: Operator
    ) -> tuple[Operator, list[SelectItem]]:
        generate_calls: dict[str, tuple[RegisteredTask, FunctionCall, str]] = {}
        for item in select_items:
            for call in find_calls(item.expression):
                entry = self.registry.lookup(call.name)
                if entry is None or not entry.is_question:
                    continue
                key = str(call)
                if key not in generate_calls:
                    suffix = "" if not generate_calls else f"_{len(generate_calls) + 1}"
                    prefix = f"{entry.spec.name}{suffix}"
                    generate_calls[key] = (entry, call, prefix)
        for entry, call, prefix in generate_calls.values():
            operator = CrowdGenerateOperator(
                entry.spec,
                list(call.args),
                current.output_schema,
                output_prefix=prefix,
            )
            operator.add_child(current)
            current = operator
        prefixes = {key: prefix for key, (_e, _c, prefix) in generate_calls.items()}
        specs = {key: entry.spec for key, (entry, _c, _p) in generate_calls.items()}
        rewritten = [
            SelectItem(_rewrite_generates(item.expression, prefixes, specs), item.alias)
            for item in select_items
        ]
        return current, rewritten

    # -- ORDER BY -----------------------------------------------------------------------------------------

    def _plan_order_by(self, statement: SelectStatement, current: Operator) -> Operator:
        for order_item in statement.order_by:
            expression = order_item.expression
            crowd_call = None
            if isinstance(expression, FunctionCall):
                entry = self.registry.lookup(expression.name)
                if entry is not None and entry.is_rank:
                    crowd_call = (entry, expression)
            if crowd_call is not None:
                entry, _call = crowd_call
                # The TASK's Response type is authoritative: a Rating response
                # sorts by per-item ratings, a Comparison response by pairwise
                # comparisons (the optimizer only arbitrates programmatic
                # sorts that could go either way).
                strategy = (
                    SortStrategy.RATING if entry.prefers_rating_sort else SortStrategy.COMPARISON
                )
                operator = CrowdSortOperator(
                    entry.spec,
                    current.output_schema,
                    strategy=strategy,
                    descending=not order_item.ascending,
                    items_per_hit=entry.spec.batch_size,
                    payload=entry.payload,
                )
            else:
                operator = LocalSortOperator(
                    expression, current.output_schema, ascending=order_item.ascending
                )
            operator.add_child(current)
            current = operator
        return current

    # -- GROUP BY / aggregates ---------------------------------------------------------------------------------

    def _plan_grouping(
        self,
        statement: SelectStatement,
        select_items: list[SelectItem],
        current: Operator,
    ) -> tuple[Operator, list[SelectItem]]:
        aggregate_items = [
            item
            for item in select_items
            if isinstance(item.expression, FunctionCall)
            and item.expression.name.lower() in AGGREGATE_FUNCTIONS
        ]
        if not statement.group_by and not aggregate_items:
            return current, select_items
        aggregates = []
        rewritten: list[SelectItem] = []
        for index, item in enumerate(select_items):
            expression = item.expression
            if item in aggregate_items:
                call = expression
                alias = item.alias or f"{call.name.lower()}_{index}"
                argument = call.args[0] if call.args else None
                aggregates.append(AggregateSpec(alias, call.name.lower(), argument))
                rewritten.append(SelectItem(ColumnRef(alias), item.alias or alias))
            else:
                if not isinstance(expression, ColumnRef):
                    raise PlanError(
                        "non-aggregate SELECT items in a grouped query must be plain columns"
                    )
                rewritten.append(item)
        group_columns = list(statement.group_by)
        if not group_columns:
            group_columns = [
                item.expression.name
                for item in select_items
                if isinstance(item.expression, ColumnRef) and item not in aggregate_items
            ]
        operator = GroupByOperator(group_columns, aggregates, current.output_schema)
        operator.add_child(current)
        return operator, rewritten

    # -- projection ----------------------------------------------------------------------------------------------

    def _build_projection(self, select_items: list[SelectItem], current: Operator) -> ProjectOperator:
        items = []
        seen: set[str] = set()
        for item in select_items:
            name = item.alias or _default_output_name(item.expression)
            base = name
            counter = 2
            while name in seen:
                name = f"{base}_{counter}"
                counter += 1
            seen.add(name)
            items.append(ProjectionItem(name, item.expression))
        return ProjectOperator(items)


# -- helpers -------------------------------------------------------------------------------------------


def _split_conjuncts(expression: Expression | None) -> list[Expression]:
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "and":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _as_crowd_call(
    expression: Expression, registry: TaskRegistry
) -> tuple[FunctionCall | None, bool]:
    """Return (call, negated) when a conjunct is a bare crowd UDF call."""
    negated = False
    if isinstance(expression, Not):
        negated = True
        expression = expression.operand
    if isinstance(expression, FunctionCall) and expression.name in registry:
        return expression, negated
    return None, False


def _rewrite_generates(
    expression: Expression,
    prefixes: dict[str, str],
    specs: dict[str, object],
) -> Expression:
    """Rewrite ``findCEO(x).CEO`` into a reference to the generated column."""
    if isinstance(expression, FieldAccess):
        base = expression.base
        key = str(base)
        if isinstance(base, FunctionCall) and key in prefixes:
            return ColumnRef(f"{prefixes[key]}.{expression.field}")
        return FieldAccess(_rewrite_generates(base, prefixes, specs), expression.field)
    if isinstance(expression, FunctionCall):
        key = str(expression)
        if key in prefixes:
            spec = specs[key]
            returns = getattr(spec, "returns", ())
            if len(returns) == 1:
                return ColumnRef(f"{prefixes[key]}.{returns[0].name}")
            raise PlanError(
                f"{expression.name}(...) returns a tuple; select a field such as "
                f"{expression.name}(...).{returns[0].name if returns else 'Field'}"
            )
        rewritten_args = tuple(_rewrite_generates(arg, prefixes, specs) for arg in expression.args)
        return FunctionCall(expression.name, rewritten_args, expression.implementation)
    for node in walk(expression):
        if isinstance(node, (FieldAccess, FunctionCall)) and node is not expression:
            break
    else:
        return expression
    # Generic structural rewrite for composite expressions.
    if hasattr(expression, "left") and hasattr(expression, "right"):
        left = _rewrite_generates(expression.left, prefixes, specs)
        right = _rewrite_generates(expression.right, prefixes, specs)
        return type(expression)(expression.op, left, right)  # type: ignore[call-arg]
    if isinstance(expression, Not):
        return Not(_rewrite_generates(expression.operand, prefixes, specs))
    return expression


def _default_output_name(expression: Expression) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    return str(expression)


def _estimate_rows(operator: Operator) -> int:
    """Crude cardinality guess for sort-strategy selection (scan sizes below)."""
    total = 0
    for node in operator.walk():
        if isinstance(node, ScanOperator):
            total = max(total, len(node.table))
    return total or 10
