"""Plans SELECT statements in two phases: logical lowering, then physical.

**Phase 1 — lowering** (:meth:`QueryPlanner.lower`) rewrites the parsed
statement into the logical IR of :mod:`repro.core.plan.logical`:

* ``findCEO(companyName).CEO`` in the SELECT list → a
  :class:`~repro.core.plan.logical.LogicalGenerate` below the projection,
  with the field access rewritten to the generated column;
* ``WHERE isTargetColor(name)`` → a crowd :class:`LogicalFilter` on that
  table;
* ``WHERE samePerson(a.image, b.image)`` over two tables → a
  :class:`LogicalJoin` predicate (multi-join queries produce several);
* ``ORDER BY biggerItem(...)`` / a Rank UDF → a crowd
  :class:`LogicalSort`.

Locally evaluable predicates are pushed onto their tables *below* the crowd
operators, because a free machine filter that removes tuples before they
reach the crowd directly reduces monetary cost.

**Phase 2 — physical planning** hands the logical plan to the
:class:`~repro.core.plan.physical.PhysicalPlanner`, which enumerates join
orders, join and sort interfaces and crowd-filter placements, costs every
candidate through the optimizer's per-node logical costing, and builds the
cost-minimal tree of physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exec.context import QueryConfig
from repro.core.lang.ast import SelectItem, SelectStatement
from repro.core.operators.aggregate import AGGREGATE_FUNCTIONS, AggregateSpec
from repro.core.operators.sink import ResultSinkOperator
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.plan.logical import (
    LogicalFilter,
    LogicalGenerate,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalLocalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    render_tree,
)
from repro.core.plan.physical import PhysicalCandidate, PhysicalPlanner
from repro.core.plan.registry import RegisteredTask, TaskRegistry
from repro.errors import PlanError
from repro.storage.database import Database
from repro.storage.expressions import (
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    FieldAccess,
    FunctionCall,
    Not,
    find_calls,
    walk,
)
from repro.storage.schema import Schema

__all__ = ["PlannedQuery", "QueryPlanner"]


@dataclass
class PlannedQuery:
    """The output of planning: the sink-rooted operator tree and its schema.

    ``logical``, ``candidates`` and ``chosen`` expose the optimizer's work —
    the logical plan, every costed physical alternative, and the winner —
    for ``EXPLAIN`` and the dashboard.
    """

    root: ResultSinkOperator
    output_schema: Schema
    statement: SelectStatement
    logical: LogicalPlan | None = None
    candidates: tuple[PhysicalCandidate, ...] = ()
    chosen: PhysicalCandidate | None = None


class QueryPlanner:
    """Turns parsed SELECT statements into physical plans."""

    def __init__(
        self,
        database: Database,
        registry: TaskRegistry,
        optimizer: QueryOptimizer,
        *,
        config: QueryConfig | None = None,
    ) -> None:
        self.database = database
        self.registry = registry
        self.optimizer = optimizer
        self.config = config if config is not None else QueryConfig()
        self.physical = PhysicalPlanner(optimizer)

    # -- entry points -------------------------------------------------------------------

    def plan(self, statement: SelectStatement, *, query_id: str = "") -> PlannedQuery:
        """Plan a statement; the results table is created by the caller."""
        logical = self.lower(statement)
        chosen, candidates = self.physical.choose(logical)
        top = self.physical.build(chosen.root)
        results_table = self.database.create_results_table(
            top.output_schema, query_id=query_id or None
        )
        sink = ResultSinkOperator(results_table)
        sink.add_child(top)
        return PlannedQuery(
            root=sink,
            output_schema=top.output_schema,
            statement=statement,
            logical=logical,
            candidates=candidates,
            chosen=chosen,
        )

    def explain(self, statement: SelectStatement) -> str:
        """Render the logical plan, every costed candidate and the winner.

        Side-effect free: no results table is created and no operator is
        built, so EXPLAIN can be called on a live engine without cost.
        """
        logical = self.lower(statement)
        default = self.physical.default_tree(logical)
        self.optimizer.estimate_logical_cost(default)
        chosen, candidates = self.physical.choose(logical)
        lines = [
            "== logical plan (cardinalities from current statistics) ==",
            render_tree(default),
            f"== physical candidates ({len(candidates)} enumerated) ==",
        ]
        for candidate in sorted(
            candidates,
            key=lambda c: (round(c.cost.dollars, 9), c.cost.hits, c.cost.local_work),
        ):
            marker = "-> " if candidate is chosen else "   "
            suffix = "   (chosen)" if candidate is chosen else ""
            lines.append(f"{marker}{candidate.describe()}{suffix}")
        lines.append("== chosen physical plan ==")
        lines.append(render_tree(chosen.root))
        return "\n".join(lines)

    # -- phase 1: logical lowering ----------------------------------------------------------

    def lower(self, statement: SelectStatement) -> LogicalPlan:
        """Rewrite a SELECT statement into the logical IR."""
        scans = self._build_scans(statement)
        conjuncts = _split_conjuncts(statement.where)
        local_conjuncts, crowd_filters, join_predicates = self._classify_conjuncts(
            conjuncts, scans
        )

        plan = LogicalPlan(statement=statement)
        for binding, scan in scans.items():
            current = scan
            for predicate in local_conjuncts.get(binding, []):
                node = LogicalFilter(predicate=predicate)
                node.add_child(current)
                current = node
            plan.table_pipelines[binding] = current
        for binding, filters in crowd_filters.items():
            plan.crowd_filters[binding] = [
                LogicalFilter(spec=entry.spec, call=call, entry=entry, negate=negated)
                for entry, call, negated in filters
            ]
        plan.join_predicates = [
            LogicalJoin(entry.spec, call=call, entry=entry, left_binding=left, right_binding=right)
            for entry, call, left, right in join_predicates
        ]
        cross_conjuncts = local_conjuncts.get(None, [])
        if len(scans) > 1 and not join_predicates:
            # No crowd join connects the tables: machine equi-joins may.
            # Two-binding equality conjuncts become LogicalLocalJoin
            # predicates; anything else stays a post-join filter.  Queries
            # with crowd joins are untouched — there the cross-table local
            # conjuncts filter the (already joined) crowd output.
            plan.local_joins, cross_conjuncts = self._promote_local_joins(
                cross_conjuncts, scans
            )
        plan.post_join_filters = [
            LogicalFilter(predicate=predicate) for predicate in cross_conjuncts
        ]

        upper, rewritten_items = self._lower_generates(statement.select_items)
        upper.extend(self._lower_order_by(statement))
        grouping, rewritten_items = self._lower_grouping(statement, rewritten_items)
        upper.extend(grouping)
        if statement.limit is not None:
            upper.append(LogicalLimit(statement.limit))
        upper.append(LogicalProject(tuple(rewritten_items)))
        plan.upper = upper
        plan.select_items = tuple(rewritten_items)
        return plan

    # -- FROM ----------------------------------------------------------------------------------

    def _build_scans(self, statement: SelectStatement) -> dict[str, LogicalScan]:
        if not statement.from_tables:
            raise PlanError("a query needs at least one table in FROM")
        scans: dict[str, LogicalScan] = {}
        for table_ref in statement.from_tables:
            table = self.database.table(table_ref.name)
            if table_ref.binding in scans:
                raise PlanError(f"duplicate table binding {table_ref.binding!r}")
            scans[table_ref.binding] = LogicalScan(
                table, alias=table_ref.alias, binding=table_ref.binding
            )
        return scans

    # -- WHERE classification --------------------------------------------------------------------

    def _classify_conjuncts(
        self, conjuncts: list[Expression], scans: dict[str, LogicalScan]
    ) -> tuple[dict, dict, list]:
        local_conjuncts: dict[str | None, list[Expression]] = {}
        crowd_filters: dict[str, list[tuple[RegisteredTask, FunctionCall, bool]]] = {}
        join_predicates: list[tuple[RegisteredTask, FunctionCall, str, str]] = []
        for conjunct in conjuncts:
            crowd_call, negated = _as_crowd_call(conjunct, self.registry)
            if crowd_call is not None:
                entry = self.registry.require(crowd_call.name)
                bindings = self._bindings_of(crowd_call, scans)
                if entry.is_join_predicate and len(bindings) == 2:
                    if negated:
                        raise PlanError("negated crowd join predicates are not supported")
                    left, right = self._ordered_bindings(bindings, scans)
                    join_predicates.append((entry, crowd_call, left, right))
                    continue
                if len(bindings) > 1:
                    raise PlanError(
                        f"crowd filter {crowd_call.name} references several tables; "
                        "only join predicates may span tables"
                    )
                binding = next(iter(bindings)) if bindings else next(iter(scans))
                crowd_filters.setdefault(binding, []).append((entry, crowd_call, negated))
                continue
            self._require_locally_evaluable(conjunct)
            bindings = self._bindings_of(conjunct, scans)
            if len(bindings) == 1:
                local_conjuncts.setdefault(next(iter(bindings)), []).append(conjunct)
            elif len(bindings) == 0:
                local_conjuncts.setdefault(next(iter(scans)), []).append(conjunct)
            else:
                local_conjuncts.setdefault(None, []).append(conjunct)
        return local_conjuncts, crowd_filters, join_predicates

    def _require_locally_evaluable(self, conjunct: Expression) -> None:
        """Reject predicates that call functions Qurk knows nothing about."""
        for call in find_calls(conjunct):
            if call.implementation is None and call.name not in self.registry:
                raise PlanError(
                    f"function {call.name!r} in WHERE is neither a registered crowd TASK "
                    "nor a locally implemented function"
                )

    def _bindings_of(self, expression: Expression, scans: dict[str, LogicalScan]) -> set[str]:
        bindings: set[str] = set()
        for name in expression.references():
            qualifier = name.rsplit(".", 1)[0] if "." in name else None
            if qualifier and qualifier in scans:
                bindings.add(qualifier)
                continue
            # Unqualified column: find which table defines it.
            owners = [
                b
                for b, scan in scans.items()
                if name in scan.table.schema.qualified(scan.binding)
            ]
            if len(owners) == 1:
                bindings.add(owners[0])
            elif len(owners) > 1:
                raise PlanError(f"column reference {name!r} is ambiguous across tables")
            else:
                raise PlanError(f"unknown column {name!r}")
        return bindings

    @staticmethod
    def _ordered_bindings(bindings: set[str], scans: dict[str, LogicalScan]) -> tuple[str, str]:
        ordered = [binding for binding in scans if binding in bindings]
        return ordered[0], ordered[1]

    # -- machine equi-joins ------------------------------------------------------------------------

    def _promote_local_joins(
        self, conjuncts: list[Expression], scans: dict[str, LogicalScan]
    ) -> tuple[list[LogicalLocalJoin], list[Expression]]:
        """Split cross-table conjuncts into equi-join predicates and leftovers."""
        joins: list[LogicalLocalJoin] = []
        leftovers: list[Expression] = []
        for conjunct in conjuncts:
            join = self._as_local_join(conjunct, scans)
            if join is None:
                leftovers.append(conjunct)
            else:
                joins.append(join)
        return joins, leftovers

    def _as_local_join(
        self, conjunct: Expression, scans: dict[str, LogicalScan]
    ) -> LogicalLocalJoin | None:
        """``a.x = b.y`` (each side touching exactly one table) or ``None``."""
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            return None
        left_bindings = self._bindings_of(conjunct.left, scans)
        right_bindings = self._bindings_of(conjunct.right, scans)
        if len(left_bindings) != 1 or len(right_bindings) != 1:
            return None
        left_binding = next(iter(left_bindings))
        right_binding = next(iter(right_bindings))
        if left_binding == right_binding:
            return None
        left_key, right_key = conjunct.left, conjunct.right
        # Normalize to FROM order so plans are stable under `a.x = b.y`
        # vs `b.y = a.x`.
        first, _ = self._ordered_bindings({left_binding, right_binding}, scans)
        if first != left_binding:
            left_binding, right_binding = right_binding, left_binding
            left_key, right_key = right_key, left_key

        def base_column(key: Expression) -> str | None:
            """Bare column name when statistics/indexes can apply."""
            if not isinstance(key, ColumnRef):
                return None
            return key.name.rsplit(".", 1)[-1]

        return LogicalLocalJoin(
            left_key=left_key,
            right_key=right_key,
            left_binding=left_binding,
            right_binding=right_binding,
            left_table=scans[left_binding].table,
            right_table=scans[right_binding].table,
            left_column=base_column(left_key),
            right_column=base_column(right_key),
        )

    # -- SELECT-list crowd generates ---------------------------------------------------------------------

    def _lower_generates(
        self, select_items: tuple[SelectItem, ...]
    ) -> tuple[list, list[SelectItem]]:
        generate_calls: dict[str, tuple[RegisteredTask, FunctionCall, str]] = {}
        for item in select_items:
            for call in find_calls(item.expression):
                entry = self.registry.lookup(call.name)
                if entry is None or not entry.is_question:
                    continue
                key = str(call)
                if key not in generate_calls:
                    suffix = "" if not generate_calls else f"_{len(generate_calls) + 1}"
                    prefix = f"{entry.spec.name}{suffix}"
                    generate_calls[key] = (entry, call, prefix)
        nodes = [
            LogicalGenerate(entry.spec, call=call, entry=entry, output_prefix=prefix)
            for entry, call, prefix in generate_calls.values()
        ]
        prefixes = {key: prefix for key, (_e, _c, prefix) in generate_calls.items()}
        specs = {key: entry.spec for key, (entry, _c, _p) in generate_calls.items()}
        rewritten = [
            SelectItem(_rewrite_generates(item.expression, prefixes, specs), item.alias)
            for item in select_items
        ]
        return nodes, rewritten

    # -- ORDER BY -----------------------------------------------------------------------------------------

    def _lower_order_by(self, statement: SelectStatement) -> list[LogicalSort]:
        nodes: list[LogicalSort] = []
        for order_item in statement.order_by:
            expression = order_item.expression
            entry = None
            if isinstance(expression, FunctionCall):
                candidate = self.registry.lookup(expression.name)
                if candidate is not None and candidate.is_rank:
                    entry = candidate
            if entry is not None:
                # The TASK's Response type is authoritative by default: a
                # Rating response sorts by per-item ratings, a Comparison
                # response by pairwise comparisons.  Under the optimizer's
                # "cost" sort policy the physical planner enumerates both
                # interfaces for Comparison tasks and keeps the cheaper one.
                nodes.append(
                    LogicalSort(
                        spec=entry.spec,
                        call=expression,
                        entry=entry,
                        ascending=order_item.ascending,
                        items_per_hit=entry.spec.batch_size,
                    )
                )
            else:
                nodes.append(LogicalSort(key=expression, ascending=order_item.ascending))
        return nodes

    # -- GROUP BY / aggregates ---------------------------------------------------------------------------------

    def _lower_grouping(
        self,
        statement: SelectStatement,
        select_items: list[SelectItem],
    ) -> tuple[list[LogicalGroupBy], list[SelectItem]]:
        aggregate_items = [
            item
            for item in select_items
            if isinstance(item.expression, FunctionCall)
            and item.expression.name.lower() in AGGREGATE_FUNCTIONS
        ]
        if not statement.group_by and not aggregate_items:
            return [], select_items
        aggregates = []
        rewritten: list[SelectItem] = []
        for index, item in enumerate(select_items):
            expression = item.expression
            if item in aggregate_items:
                call = expression
                alias = item.alias or f"{call.name.lower()}_{index}"
                argument = call.args[0] if call.args else None
                aggregates.append(AggregateSpec(alias, call.name.lower(), argument))
                rewritten.append(SelectItem(ColumnRef(alias), item.alias or alias))
            else:
                if not isinstance(expression, ColumnRef):
                    raise PlanError(
                        "non-aggregate SELECT items in a grouped query must be plain columns"
                    )
                rewritten.append(item)
        group_columns = list(statement.group_by)
        if not group_columns:
            group_columns = [
                item.expression.name
                for item in select_items
                if isinstance(item.expression, ColumnRef) and item not in aggregate_items
            ]
        return [LogicalGroupBy(group_columns, aggregates)], rewritten


# -- helpers -------------------------------------------------------------------------------------------


def _split_conjuncts(expression: Expression | None) -> list[Expression]:
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "and":
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _as_crowd_call(
    expression: Expression, registry: TaskRegistry
) -> tuple[FunctionCall | None, bool]:
    """Return (call, negated) when a conjunct is a bare crowd UDF call."""
    negated = False
    if isinstance(expression, Not):
        negated = True
        expression = expression.operand
    if isinstance(expression, FunctionCall) and expression.name in registry:
        return expression, negated
    return None, False


def _rewrite_generates(
    expression: Expression,
    prefixes: dict[str, str],
    specs: dict[str, object],
) -> Expression:
    """Rewrite ``findCEO(x).CEO`` into a reference to the generated column."""
    if isinstance(expression, FieldAccess):
        base = expression.base
        key = str(base)
        if isinstance(base, FunctionCall) and key in prefixes:
            return ColumnRef(f"{prefixes[key]}.{expression.field}")
        return FieldAccess(_rewrite_generates(base, prefixes, specs), expression.field)
    if isinstance(expression, FunctionCall):
        key = str(expression)
        if key in prefixes:
            spec = specs[key]
            returns = getattr(spec, "returns", ())
            if len(returns) == 1:
                return ColumnRef(f"{prefixes[key]}.{returns[0].name}")
            raise PlanError(
                f"{expression.name}(...) returns a tuple; select a field such as "
                f"{expression.name}(...).{returns[0].name if returns else 'Field'}"
            )
        rewritten_args = tuple(_rewrite_generates(arg, prefixes, specs) for arg in expression.args)
        return FunctionCall(expression.name, rewritten_args, expression.implementation)
    for node in walk(expression):
        if isinstance(node, (FieldAccess, FunctionCall)) and node is not expression:
            break
    else:
        return expression
    # Generic structural rewrite for composite expressions.
    if hasattr(expression, "left") and hasattr(expression, "right"):
        left = _rewrite_generates(expression.left, prefixes, specs)
        right = _rewrite_generates(expression.right, prefixes, specs)
        return type(expression)(expression.op, left, right)  # type: ignore[call-arg]
    if isinstance(expression, Not):
        return Not(_rewrite_generates(expression.operand, prefixes, specs))
    return expression
