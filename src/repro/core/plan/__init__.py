"""Query planning: the crowd UDF registry, the logical IR and the planners."""

from repro.core.plan.logical import (
    LogicalFilter,
    LogicalGenerate,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.core.plan.physical import PhysicalCandidate, PhysicalPlanner
from repro.core.plan.planner import PlannedQuery, QueryPlanner
from repro.core.plan.registry import RegisteredTask, TaskRegistry

__all__ = [
    "TaskRegistry",
    "RegisteredTask",
    "QueryPlanner",
    "PlannedQuery",
    "PhysicalPlanner",
    "PhysicalCandidate",
    "LogicalNode",
    "LogicalPlan",
    "LogicalScan",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalGenerate",
    "LogicalSort",
    "LogicalProject",
    "LogicalGroupBy",
    "LogicalLimit",
]
