"""Query planning: the crowd UDF registry and the SELECT planner."""

from repro.core.plan.planner import PlannedQuery, QueryPlanner
from repro.core.plan.registry import RegisteredTask, TaskRegistry

__all__ = ["TaskRegistry", "RegisteredTask", "QueryPlanner", "PlannedQuery"]
