"""The logical plan IR: what a query computes, before deciding how.

The paper's Query Optimizer "compiles the query into a query plan and
adaptively optimizes it during query execution".  To do that well the
planner needs a representation that is *stable under physical decisions*:
whether a crowd join runs as pairwise HITs or the two-column Figure 3
interface, or a crowd ORDER BY as comparisons or ratings, must not change
what the plan means.  This module provides that representation:

* :class:`LogicalScan` / :class:`LogicalFilter` / :class:`LogicalJoin` /
  :class:`LogicalGenerate` / :class:`LogicalSort` / :class:`LogicalProject` /
  :class:`LogicalGroupBy` / :class:`LogicalLimit` nodes, each knowing how to
  estimate its own cost and output cardinality (per-node costing — the
  optimizer no longer owns an ``isinstance`` ladder);
* bottom-up cardinality annotation (:func:`annotate_plan`), which stamps
  ``estimated_rows`` / ``estimated_cost`` on every node;
* a structural bridge from physical operator trees back into the IR
  (:func:`from_physical`), so running plans are re-costed through the same
  per-node code path the enumerator uses;
* a compact text rendering (:func:`render_tree`) used by ``EXPLAIN``.

Physical *decisions* (join interface, sort strategy, filter placement) are
carried as optional annotations on the logical nodes: ``None`` means
"undecided — cost the preferred default", a concrete value means the
:class:`~repro.core.plan.physical.PhysicalPlanner` (or a running operator)
has committed to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.operators.aggregate import AggregateSpec, GroupByOperator, LimitOperator
from repro.core.operators.base import Operator
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_generate import CrowdGenerateOperator
from repro.core.operators.crowd_join import CrowdJoinOperator, JoinStrategy
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.operators.project import LocalFilterOperator, ProjectOperator
from repro.core.operators.scan import IndexScanOperator, ScanOperator
from repro.core.operators.sort_local import LocalSortOperator
from repro.core.optimizer.cost_model import CostEstimate
from repro.core.tasks.spec import JoinColumnsResponse, RatingResponse, TaskSpec
from repro.storage.expressions import Expression, FunctionCall
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.lang.ast import SelectItem
    from repro.core.plan.registry import RegisteredTask

__all__ = [
    "LogicalNode",
    "LogicalScan",
    "LogicalIndexScan",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLocalJoin",
    "LogicalGenerate",
    "LogicalSort",
    "LogicalProject",
    "LogicalGroupBy",
    "LogicalLimit",
    "LogicalPlan",
    "annotate_plan",
    "render_tree",
    "from_physical",
]


class LogicalNode:
    """Base class for logical plan nodes.

    Nodes form a tree via :attr:`children`.  After :func:`annotate_plan`
    runs, :attr:`estimated_rows` holds the bottom-up output-cardinality
    estimate and :attr:`estimated_cost` this node's own crowd cost.
    """

    def __init__(self) -> None:
        self.children: list[LogicalNode] = []
        self.estimated_rows: float | None = None
        self.estimated_cost: CostEstimate | None = None

    # -- tree plumbing -------------------------------------------------------------

    def add_child(self, child: "LogicalNode") -> "LogicalNode":
        self.children.append(child)
        return self

    def walk(self) -> Iterable["LogicalNode"]:
        """This node and all descendants, children first."""
        for child in self.children:
            yield from child.walk()
        yield self

    def clone(self) -> "LogicalNode":
        """A deep copy of this subtree (annotations reset, decisions kept)."""
        node = self._clone_shallow()
        for child in self.children:
            node.add_child(child.clone())
        return node

    def _clone_shallow(self) -> "LogicalNode":
        raise NotImplementedError

    # -- costing protocol ----------------------------------------------------------

    def label(self) -> str:
        """Compact description used by EXPLAIN renderings."""
        raise NotImplementedError

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        """Cardinality this node emits given its children's cardinalities.

        The default is the pass-through convention local operators follow:
        the first child's cardinality (leaves return 0).
        """
        return child_rows[0] if child_rows else 0.0

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        """Crowd cost attributable to this node alone (default: free)."""
        return CostEstimate()

    def __repr__(self) -> str:
        rows = "?" if self.estimated_rows is None else f"{self.estimated_rows:g}"
        return f"{type(self).__name__}({self.label()}, ~{rows} rows)"


#: Abstract machine-work units (see :class:`CostEstimate.local_work`): a full
#: scan touches every row once; a pushed-down local filter re-touches its
#: input more cheaply (compiled column kernel); an index scan pays a probe
#: plus a per-match gather that is pricier than a sequential touch.  The
#: constants only need to order access paths sensibly: selective predicates
#: favor the index, unselective ones the scan.
SCAN_WORK_PER_ROW = 1.0
FILTER_WORK_PER_ROW = 0.25
INDEX_MATCH_WORK_PER_ROW = 1.5

#: Matched-fraction guess for range predicates without value distribution
#: statistics (the classic 1/3 selectivity heuristic).
RANGE_SELECTIVITY = 1.0 / 3.0


class LogicalScan(LogicalNode):
    """A base-table scan; the leaf of every logical plan."""

    def __init__(self, table: Table, *, alias: str | None = None, binding: str | None = None):
        super().__init__()
        self.table = table
        self.alias = alias
        self.binding = binding or alias or table.name

    def _clone_shallow(self) -> "LogicalScan":
        return LogicalScan(self.table, alias=self.alias, binding=self.binding)

    def label(self) -> str:
        return f"scan({self.binding})"

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        return float(len(self.table))

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        return CostEstimate(local_work=SCAN_WORK_PER_ROW * len(self.table))


class LogicalIndexScan(LogicalNode):
    """A base-table access through a secondary index on one predicate.

    Replaces a ``filter(column op literal) → scan`` pair when the column
    carries an index that can serve ``op``.  The *output cardinality*
    deliberately follows the same pass-through convention as the local
    filter it replaces (local selectivity never feeds crowd-cost estimates),
    so every crowd dollar/HIT estimate is identical across access paths and
    only ``local_work`` — probe cost plus estimated matches, from catalog
    statistics — separates index scan from scan-then-filter.
    """

    def __init__(
        self,
        table: Table,
        *,
        column: str,
        op: str,
        value: object,
        alias: str | None = None,
        binding: str | None = None,
    ):
        super().__init__()
        self.table = table
        self.column = column
        self.op = op
        self.value = value
        self.alias = alias
        self.binding = binding or alias or table.name

    def _clone_shallow(self) -> "LogicalIndexScan":
        return LogicalIndexScan(
            self.table,
            column=self.column,
            op=self.op,
            value=self.value,
            alias=self.alias,
            binding=self.binding,
        )

    def label(self) -> str:
        return f"index-scan({self.binding}.{self.column} {self.op} {self.value!r})"

    def estimated_matches(self) -> float:
        """Expected matching rows, from catalog statistics.

        Equality predicates assume a uniform distribution over the column's
        distinct values; range predicates fall back to the 1/3 heuristic.
        """
        n = float(len(self.table))
        if self.op == "=":
            distinct = self.table.distinct_count(self.column) or 1
            return n / max(distinct, 1)
        return n * RANGE_SELECTIVITY

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        # Pass-through, matching the filter+scan chain this node replaces —
        # see the class docstring for why.
        return float(len(self.table))

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        n = max(float(len(self.table)), 1.0)
        probe = math.log2(n) + 1.0
        return CostEstimate(
            local_work=probe + INDEX_MATCH_WORK_PER_ROW * self.estimated_matches()
        )


class LogicalFilter(LogicalNode):
    """A selection: either a free local predicate or a crowd yes/no question."""

    def __init__(
        self,
        *,
        predicate: Expression | None = None,
        spec: TaskSpec | None = None,
        call: FunctionCall | None = None,
        entry: "RegisteredTask | None" = None,
        negate: bool = False,
    ):
        super().__init__()
        if (predicate is None) == (spec is None):
            raise ValueError("a LogicalFilter is either local (predicate) or crowd (spec)")
        self.predicate = predicate
        self.spec = spec
        self.call = call
        self.entry = entry
        self.negate = negate

    @property
    def is_crowd(self) -> bool:
        return self.spec is not None

    def _clone_shallow(self) -> "LogicalFilter":
        return LogicalFilter(
            predicate=self.predicate,
            spec=self.spec,
            call=self.call,
            entry=self.entry,
            negate=self.negate,
        )

    def label(self) -> str:
        if self.is_crowd:
            prefix = "NOT " if self.negate else ""
            return f"crowd-filter({prefix}{self.spec.name})"
        return "filter(local)"

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        rows = child_rows[0] if child_rows else 0.0
        if not self.is_crowd:
            return rows  # local selectivity is unknown; pass through (free anyway)
        selectivity = costing.selectivity(self.spec.name)
        if self.negate:
            selectivity = 1.0 - selectivity
        return rows * selectivity

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        rows = child_rows[0] if child_rows else 0.0
        if not self.is_crowd:
            return CostEstimate(local_work=FILTER_WORK_PER_ROW * rows)
        estimate = costing.cost_model.filter_cost(
            self.spec, rows, assignments=costing.assignments_for(self.spec)
        )
        # A trusted learned model answers instead of the crowd: ~zero cost.
        return costing.discount_for_model(self.spec, estimate)


class LogicalJoin(LogicalNode):
    """A crowd-evaluated join of two inputs.

    ``strategy`` is the physical decision (``None`` = undecided; costing then
    assumes the cheaper interface, mirroring what enumeration will pick).
    """

    def __init__(
        self,
        spec: TaskSpec,
        *,
        call: FunctionCall | None = None,
        entry: "RegisteredTask | None" = None,
        left_binding: str = "",
        right_binding: str = "",
        strategy: JoinStrategy | None = None,
        pairs_per_hit: int | None = None,
        left_per_hit: int | None = None,
        right_per_hit: int | None = None,
    ):
        super().__init__()
        self.spec = spec
        self.call = call
        self.entry = entry
        self.left_binding = left_binding
        self.right_binding = right_binding
        self.strategy = strategy
        response = spec.response
        block = response if isinstance(response, JoinColumnsResponse) else None
        self.pairs_per_hit = pairs_per_hit if pairs_per_hit is not None else max(spec.batch_size, 1)
        self.left_per_hit = left_per_hit or (block.left_per_hit if block else 3)
        self.right_per_hit = right_per_hit or (block.right_per_hit if block else 3)

    @property
    def supports_columns(self) -> bool:
        return isinstance(self.spec.response, JoinColumnsResponse)

    def _clone_shallow(self) -> "LogicalJoin":
        return LogicalJoin(
            self.spec,
            call=self.call,
            entry=self.entry,
            left_binding=self.left_binding,
            right_binding=self.right_binding,
            strategy=self.strategy,
            pairs_per_hit=self.pairs_per_hit,
            left_per_hit=self.left_per_hit,
            right_per_hit=self.right_per_hit,
        )

    def label(self) -> str:
        decided = f",{self.strategy.value}" if self.strategy is not None else ""
        return f"crowd-join({self.spec.name}{decided})"

    def _strategy_costs(self, n_left: float, n_right: float, costing) -> dict[JoinStrategy, CostEstimate]:
        assignments = costing.assignments_for(self.spec)
        costs = {
            JoinStrategy.PAIRWISE: costing.cost_model.join_cost_pairwise(
                self.spec,
                n_left,
                n_right,
                assignments=assignments,
                pairs_per_hit=self.pairs_per_hit,
            )
        }
        if self.supports_columns:
            costs[JoinStrategy.COLUMNS] = costing.cost_model.join_cost_columns(
                self.spec,
                n_left,
                n_right,
                assignments=assignments,
                left_per_hit=self.left_per_hit,
                right_per_hit=self.right_per_hit,
            )
        # A trusted learned model answers pair judgements instead of the
        # crowd — every interface shrinks by the same residual, so the
        # strategy choice itself is unchanged but join placement competes
        # on the ~zero escalated cost.
        return {
            strategy: costing.discount_for_model(self.spec, estimate)
            for strategy, estimate in costs.items()
        }

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        n_left = child_rows[0] if child_rows else 0.0
        n_right = child_rows[1] if len(child_rows) > 1 else 0.0
        costs = self._strategy_costs(n_left, n_right, costing)
        if self.strategy is not None:
            return costs.get(self.strategy, costs[JoinStrategy.PAIRWISE])
        # Undecided: assume the interface enumeration will pick — the cheaper
        # one, with COLUMNS winning ties exactly as the enumerator orders them.
        if JoinStrategy.COLUMNS in costs and (
            costs[JoinStrategy.COLUMNS].dollars <= costs[JoinStrategy.PAIRWISE].dollars
        ):
            return costs[JoinStrategy.COLUMNS]
        return costs[JoinStrategy.PAIRWISE]

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        n_left = child_rows[0] if child_rows else 0.0
        n_right = child_rows[1] if len(child_rows) > 1 else 0.0
        selectivity = costing.selectivity(
            self.spec.name, prior=min(1.0 / max(n_right, 1.0), 1.0)
        )
        return max(n_left * n_right * selectivity, 0.0)


#: Machine-work constants for the local hash join: hashing a build row costs
#: more than streaming a probe row past the table, and reusing a base table's
#: existing hash index skips the build entirely (only the probe remains).
HASH_BUILD_WORK_PER_ROW = 2.0
HASH_PROBE_WORK_PER_ROW = 1.0


class LogicalLocalJoin(LogicalNode):
    """A machine-evaluated equi-join of two inputs (no crowd money involved).

    Lowered from ``FROM a, b WHERE a.id = b.id`` when no crowd join predicate
    connects the tables.  ``build_side`` is the physical decision: which
    child is hashed (``None`` = undecided; costing then assumes the cheaper
    side, mirroring what enumeration will pick).  ``left_table`` /
    ``right_table`` carry the base tables when the keys are bare columns, so
    output cardinality comes from catalog ``distinct_count`` statistics and
    the cost model can see whether an existing hash index makes one build
    side free.
    """

    def __init__(
        self,
        *,
        left_key: Expression,
        right_key: Expression,
        left_binding: str = "",
        right_binding: str = "",
        left_table: Table | None = None,
        right_table: Table | None = None,
        left_column: str | None = None,
        right_column: str | None = None,
        build_side: str | None = None,
    ):
        super().__init__()
        self.left_key = left_key
        self.right_key = right_key
        self.left_binding = left_binding
        self.right_binding = right_binding
        self.left_table = left_table
        self.right_table = right_table
        self.left_column = left_column
        self.right_column = right_column
        self.build_side = build_side

    def _clone_shallow(self) -> "LogicalLocalJoin":
        return LogicalLocalJoin(
            left_key=self.left_key,
            right_key=self.right_key,
            left_binding=self.left_binding,
            right_binding=self.right_binding,
            left_table=self.left_table,
            right_table=self.right_table,
            left_column=self.left_column,
            right_column=self.right_column,
            build_side=self.build_side,
        )

    def label(self) -> str:
        decided = f",build={self.build_side}" if self.build_side is not None else ""
        return f"local-join({self.left_key} = {self.right_key}{decided})"

    def _distinct(self, side: str) -> float | None:
        table = self.left_table if side == "left" else self.right_table
        column = self.left_column if side == "left" else self.right_column
        if table is None or column is None:
            return None
        distinct = table.distinct_count(column)
        return float(distinct) if distinct else None

    def index_backed(self, side: str) -> bool:
        """Whether ``side`` has a reusable hash index on its join key."""
        from repro.storage.indexes import HashIndex

        table = self.left_table if side == "left" else self.right_table
        column = self.left_column if side == "left" else self.right_column
        if table is None or column is None:
            return False
        return isinstance(table.index_on(column), HashIndex)

    def estimate_output_rows(self, child_rows: list[float], costing) -> float:
        n_left = child_rows[0] if child_rows else 0.0
        n_right = child_rows[1] if len(child_rows) > 1 else 0.0
        # Classic equi-join estimate: |L|·|R| / max(d(L.key), d(R.key)).
        distincts = [d for d in (self._distinct("left"), self._distinct("right")) if d]
        if distincts:
            return n_left * n_right / max(distincts)
        return min(n_left, n_right)

    def _side_work(self, side: str, build_rows: float, probe_rows: float) -> float:
        build = 0.0 if self.index_backed(side) else HASH_BUILD_WORK_PER_ROW * build_rows
        return build + HASH_PROBE_WORK_PER_ROW * probe_rows

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        n_left = child_rows[0] if child_rows else 0.0
        n_right = child_rows[1] if len(child_rows) > 1 else 0.0
        works = {
            "left": self._side_work("left", n_left, n_right),
            "right": self._side_work("right", n_right, n_left),
        }
        if self.build_side is not None:
            return CostEstimate(local_work=works[self.build_side])
        # Undecided: assume enumeration picks the cheaper side (ties → left,
        # matching the enumerator's axis order).
        return CostEstimate(local_work=min(works["left"], works["right"]))


class LogicalGenerate(LogicalNode):
    """Schema extension: run a Question task once per input tuple."""

    def __init__(
        self,
        spec: TaskSpec,
        *,
        call: FunctionCall | None = None,
        entry: "RegisteredTask | None" = None,
        output_prefix: str | None = None,
    ):
        super().__init__()
        self.spec = spec
        self.call = call
        self.entry = entry
        self.output_prefix = output_prefix or spec.name

    def _clone_shallow(self) -> "LogicalGenerate":
        return LogicalGenerate(
            self.spec, call=self.call, entry=self.entry, output_prefix=self.output_prefix
        )

    def label(self) -> str:
        return f"crowd-generate({self.spec.name})"

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        rows = child_rows[0] if child_rows else 0.0
        # One SpecStats fetch per node per costing pass: the cache hit rate
        # and any other statistic derive from the same snapshot.
        stats = costing.spec_stats(self.spec.name)
        cache_rate = stats.cache_hits / max(stats.tasks_completed, 1)
        return costing.cost_model.generate_cost(
            self.spec,
            rows,
            assignments=costing.assignments_for(self.spec),
            cache_hit_rate=cache_rate,
        )


class LogicalSort(LogicalNode):
    """An ORDER BY step: a crowd-ranked sort or a free local sort."""

    def __init__(
        self,
        *,
        spec: TaskSpec | None = None,
        call: FunctionCall | None = None,
        entry: "RegisteredTask | None" = None,
        key: Expression | None = None,
        ascending: bool = True,
        strategy: SortStrategy | None = None,
        items_per_hit: int | None = None,
    ):
        super().__init__()
        if (spec is None) == (key is None):
            raise ValueError("a LogicalSort is either crowd (spec) or local (key)")
        self.spec = spec
        self.call = call
        self.entry = entry
        self.key = key
        self.ascending = ascending
        self.strategy = strategy
        self.items_per_hit = items_per_hit or (max(spec.batch_size, 1) if spec else 1)

    @property
    def is_crowd(self) -> bool:
        return self.spec is not None

    @property
    def preferred_strategy(self) -> SortStrategy:
        """The strategy the spec's Response type asks for (authoritative default)."""
        if self.spec is not None and isinstance(self.spec.response, RatingResponse):
            return SortStrategy.RATING
        return SortStrategy.COMPARISON

    def _clone_shallow(self) -> "LogicalSort":
        return LogicalSort(
            spec=self.spec,
            call=self.call,
            entry=self.entry,
            key=self.key,
            ascending=self.ascending,
            strategy=self.strategy,
            items_per_hit=self.items_per_hit,
        )

    def label(self) -> str:
        if not self.is_crowd:
            return "sort(local)"
        decided = f",{self.strategy.value}" if self.strategy is not None else ""
        return f"crowd-sort({self.spec.name}{decided})"

    def strategy_cost(self, strategy: SortStrategy, rows: float, costing) -> CostEstimate:
        assignments = costing.assignments_for(self.spec)
        if strategy is SortStrategy.COMPARISON:
            return costing.cost_model.sort_cost_comparison(
                self.spec, rows, assignments=assignments, comparisons_per_hit=self.items_per_hit
            )
        return costing.cost_model.sort_cost_rating(
            self.spec, rows, assignments=assignments, ratings_per_hit=self.items_per_hit
        )

    def estimate_cost(self, child_rows: list[float], costing) -> CostEstimate:
        if not self.is_crowd:
            return CostEstimate()
        rows = child_rows[0] if child_rows else 0.0
        strategy = self.strategy if self.strategy is not None else self.preferred_strategy
        return self.strategy_cost(strategy, rows, costing)


class LogicalProject(LogicalNode):
    """The final projection over (possibly rewritten) SELECT items."""

    def __init__(self, items: "tuple[SelectItem, ...] | list[SelectItem]" = ()):
        super().__init__()
        self.items = tuple(items)

    def _clone_shallow(self) -> "LogicalProject":
        return LogicalProject(self.items)

    def label(self) -> str:
        return "project"


class LogicalGroupBy(LogicalNode):
    """Grouping plus aggregate evaluation (a free local operation)."""

    def __init__(self, group_columns: list[str], aggregates: list[AggregateSpec]):
        super().__init__()
        self.group_columns = list(group_columns)
        self.aggregates = list(aggregates)

    def _clone_shallow(self) -> "LogicalGroupBy":
        return LogicalGroupBy(self.group_columns, self.aggregates)

    def label(self) -> str:
        return "group-by"


class LogicalLimit(LogicalNode):
    """LIMIT n.  Cardinality passes through: the crowd work above a LIMIT is
    bounded by its *input*, and upstream operators cannot stop early anyway."""

    def __init__(self, limit: int):
        super().__init__()
        self.limit = limit

    def _clone_shallow(self) -> "LogicalLimit":
        return LogicalLimit(self.limit)

    def label(self) -> str:
        return f"limit({self.limit})"


class _Passthrough(LogicalNode):
    """Costing stand-in for sinks and any operator the IR has no word for."""

    def __init__(self, name: str = "passthrough"):
        super().__init__()
        self._name = name

    def _clone_shallow(self) -> "_Passthrough":
        return _Passthrough(self._name)

    def label(self) -> str:
        return self._name


@dataclass
class LogicalPlan:
    """The output of lowering: the query's pieces, before physical choices.

    The plan deliberately keeps the *movable* parts apart instead of fixing
    one tree: per-table pipelines (scan plus pushed-down local predicates),
    the crowd filters whose placement the physical planner may move above the
    joins, the join predicates whose order and interface are enumerated, and
    the fixed upper chain (generates, sorts, grouping, limit, projection —
    bottom-up).  :meth:`~repro.core.plan.physical.PhysicalPlanner.choose`
    composes candidate trees out of these pieces.
    """

    statement: object
    table_pipelines: dict[str, LogicalNode] = field(default_factory=dict)
    crowd_filters: dict[str, list[LogicalFilter]] = field(default_factory=dict)
    join_predicates: list[LogicalJoin] = field(default_factory=list)
    #: Machine equi-joins connecting the FROM tables when no crowd join
    #: predicate does (``FROM a, b WHERE a.id = b.id``); the physical planner
    #: enumerates each join's build side.
    local_joins: list[LogicalLocalJoin] = field(default_factory=list)
    post_join_filters: list[LogicalFilter] = field(default_factory=list)
    upper: list[LogicalNode] = field(default_factory=list)
    select_items: tuple = ()

    def crowd_sorts(self) -> list[LogicalSort]:
        """The crowd-ranked sorts of the upper chain, bottom-up."""
        return [n for n in self.upper if isinstance(n, LogicalSort) and n.is_crowd]


# -- annotation and rendering ------------------------------------------------------------


def annotate_plan(root: LogicalNode, costing) -> CostEstimate:
    """Cost a logical plan bottom-up, annotating every node.

    ``costing`` is the optimizer's per-pass costing context (cached spec
    statistics, cost model, redundancy choices).  Returns the plan total.
    """
    total = CostEstimate()

    def visit(node: LogicalNode) -> float:
        nonlocal total
        child_rows = [visit(child) for child in node.children]
        cost = node.estimate_cost(child_rows, costing)
        node.estimated_cost = cost
        total = total.plus(cost)
        rows = node.estimate_output_rows(child_rows, costing)
        node.estimated_rows = rows
        return rows

    visit(root)
    return total


def render_tree(root: LogicalNode) -> str:
    """Indented text rendering with cardinality annotations (for EXPLAIN)."""
    lines: list[str] = []

    def visit(node: LogicalNode, depth: int) -> None:
        rows = "" if node.estimated_rows is None else f"  [~{node.estimated_rows:,.1f} rows]"
        cost = ""
        if node.estimated_cost is not None and node.estimated_cost.dollars > 0:
            cost = f"  (${node.estimated_cost.dollars:,.2f}, {node.estimated_cost.hits:,.0f} HITs)"
        lines.append("  " * depth + node.label() + rows + cost)
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


# -- physical -> logical bridge -----------------------------------------------------------


def from_physical(operator: Operator) -> LogicalNode:
    """Mirror a physical operator tree as logical nodes for re-costing.

    Decisions already taken by the physical plan (join interface, sort
    strategy, batching) are carried over, so re-costing a running plan prices
    exactly the plan that is executing.  This is a structural mapping only —
    all costing lives on the logical nodes.
    """
    if isinstance(operator, ScanOperator):
        return LogicalScan(operator.table, alias=operator.alias, binding=operator.alias)
    if isinstance(operator, IndexScanOperator):
        return LogicalIndexScan(
            operator.table,
            column=operator.column,
            op=operator.op,
            value=operator.value,
            alias=operator.alias,
            binding=operator.alias,
        )

    children = [from_physical(child) for child in operator.children]

    node: LogicalNode
    if isinstance(operator, CrowdFilterOperator):
        node = LogicalFilter(spec=operator.spec, negate=operator.negate)
    elif isinstance(operator, CrowdGenerateOperator):
        node = LogicalGenerate(operator.spec)
    elif isinstance(operator, CrowdJoinOperator):
        node = LogicalJoin(
            operator.spec,
            strategy=operator.strategy,
            pairs_per_hit=operator.pairs_per_hit,
            left_per_hit=operator.left_per_hit,
            right_per_hit=operator.right_per_hit,
        )
    elif isinstance(operator, CrowdSortOperator):
        node = LogicalSort(
            spec=operator.spec,
            strategy=operator.strategy,
            ascending=not operator.descending,
            items_per_hit=operator.items_per_hit,
        )
    elif isinstance(operator, LocalHashJoinOperator):
        node = LogicalLocalJoin(
            left_key=operator.left_key,
            right_key=operator.right_key,
            build_side=operator.build_side,
        )
    elif isinstance(operator, LocalFilterOperator):
        node = LogicalFilter(predicate=operator.predicate)
    elif isinstance(operator, LocalSortOperator):
        node = LogicalSort(key=operator.key, ascending=operator.ascending)
    elif isinstance(operator, GroupByOperator):
        node = LogicalGroupBy(operator.group_columns, operator.aggregates)
    elif isinstance(operator, LimitOperator):
        node = LogicalLimit(operator.limit)
    elif isinstance(operator, ProjectOperator):
        node = LogicalProject()
    else:
        node = _Passthrough(operator.name)

    for child in children:
        node.add_child(child)
    return node
