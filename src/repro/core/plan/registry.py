"""Registry of crowd UDFs available to the planner.

A TASK definition tells Qurk *what to ask the crowd*; to build physical
operators the planner also needs workload-specific glue: how to turn a row
into the payload a worker sees, an optional machine pre-filter for join
pairs, and an optional Task Model.  A :class:`RegisteredTask` bundles the
spec with that glue, and the :class:`TaskRegistry` is consulted by name when
the planner meets a UDF call in a query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.tasks.spec import RatingResponse, TaskSpec, TaskType
from repro.errors import PlanError
from repro.storage.row import Row

__all__ = ["RegisteredTask", "TaskRegistry"]

PayloadFn = Callable[[Row], dict]
PrefilterFn = Callable[[Row, Row], bool]


@dataclass
class RegisteredTask:
    """A TASK definition plus the row-level glue operators need."""

    spec: TaskSpec
    payload: PayloadFn | None = None
    left_payload: PayloadFn | None = None
    right_payload: PayloadFn | None = None
    prefilter: PrefilterFn | None = None
    learnable: bool = True

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_question(self) -> bool:
        return self.spec.task_type is TaskType.QUESTION

    @property
    def is_filter(self) -> bool:
        return self.spec.task_type is TaskType.FILTER

    @property
    def is_join_predicate(self) -> bool:
        return self.spec.task_type is TaskType.JOIN_PREDICATE

    @property
    def is_rank(self) -> bool:
        return self.spec.task_type in (TaskType.RANK, TaskType.RATING)

    @property
    def prefers_rating_sort(self) -> bool:
        return isinstance(self.spec.response, RatingResponse)


class TaskRegistry:
    """Name → :class:`RegisteredTask` lookup used during planning."""

    def __init__(self) -> None:
        self._tasks: dict[str, RegisteredTask] = {}

    def register(
        self,
        spec: TaskSpec,
        *,
        payload: PayloadFn | None = None,
        left_payload: PayloadFn | None = None,
        right_payload: PayloadFn | None = None,
        prefilter: PrefilterFn | None = None,
        learnable: bool = True,
    ) -> RegisteredTask:
        """Register (or replace) a crowd UDF."""
        entry = RegisteredTask(
            spec=spec,
            payload=payload,
            left_payload=left_payload,
            right_payload=right_payload,
            prefilter=prefilter,
            learnable=learnable,
        )
        self._tasks[spec.name.lower()] = entry
        return entry

    def lookup(self, name: str) -> RegisteredTask | None:
        """The registered task called ``name``, or None."""
        return self._tasks.get(name.lower())

    def require(self, name: str) -> RegisteredTask:
        """Like :meth:`lookup` but raises a :class:`PlanError` when missing."""
        entry = self.lookup(name)
        if entry is None:
            known = ", ".join(sorted(self._tasks)) or "<none>"
            raise PlanError(f"unknown crowd UDF {name!r}; registered tasks: {known}")
        return entry

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tasks

    def names(self) -> list[str]:
        """All registered task names, sorted."""
        return sorted(entry.spec.name for entry in self._tasks.values())
