"""The physical planner: enumerate, cost, pick, build.

Given a :class:`~repro.core.plan.logical.LogicalPlan`, the
:class:`PhysicalPlanner` enumerates the physical alternatives the paper's
demo lets the audience explore:

* **join order** — for multi-join queries, every left-deep order in which
  the join predicates keep the joined tables connected;
* **join interface** — pairwise yes/no HITs versus the two-column Figure 3
  interface (only JoinColumns specs can render the latter);
* **sort interface** — pairwise comparisons versus per-item ratings, when
  ``OptimizerConfig.sort_policy`` is ``"cost"`` (under the default
  ``"response"`` policy the TASK's Response type is authoritative);
* **crowd-filter placement** — on the filtered table below the joins, or
  above the joins over the (usually smaller) join result, plus the order in
  which several filters on one table run;
* **access path** — a full table scan versus a secondary-index scan, for
  table pipelines whose local predicate compares an indexed column against
  a literal (hash indexes serve equality, sorted indexes also ranges);
* **local-join build side** — for machine equi-joins (``FROM a, b WHERE
  a.id = b.id`` with no crowd join predicate), which input the hash join
  builds on; a base table with a hash index on its join key makes that
  build free (the operator reuses the index buckets verbatim).

Every candidate is costed through the optimizer's per-node logical costing
and the cost-minimal candidate (dollars, then HITs, then tasks, then local
machine work) is built into a tree of physical operators.  The chosen candidate's cardinality
annotations are stamped onto the physical operators (``planned_input_rows``)
so the adaptive replanner can later detect misestimation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.operators.aggregate import GroupByOperator, LimitOperator
from repro.core.operators.base import Operator
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_generate import CrowdGenerateOperator
from repro.core.operators.crowd_join import CrowdJoinOperator, JoinStrategy
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.join_local import LocalHashJoinOperator
from repro.core.operators.project import LocalFilterOperator, ProjectOperator, ProjectionItem
from repro.core.operators.scan import IndexScanOperator, ScanOperator
from repro.core.operators.sort_local import LocalSortOperator
from repro.core.optimizer.cost_model import CostEstimate
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.plan.logical import (
    LogicalFilter,
    LogicalGenerate,
    LogicalGroupBy,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalLocalJoin,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from repro.errors import PlanError
from repro.storage.expressions import ColumnRef, Comparison, Expression, Literal
from repro.storage.indexes import SortedIndex

__all__ = ["PhysicalCandidate", "PhysicalPlanner"]


@dataclass(frozen=True)
class PhysicalCandidate:
    """One fully-decided physical alternative for a query."""

    root: LogicalNode
    cost: CostEstimate
    decisions: tuple[str, ...]

    def describe(self) -> str:
        parts = ", ".join(self.decisions) or "default"
        return (
            f"${self.cost.dollars:,.2f} / {self.cost.hits:,.0f} HITs"
            f" / {self.cost.local_work:,.0f} work :: {parts}"
        )


class PhysicalPlanner:
    """Enumerates physical plans for a logical plan and builds the winner."""

    #: Upper bound on costed candidates; the axes are enumerated in stable
    #: order (join orders, then interfaces, then sorts, then placements), so
    #: truncation keeps the earliest — default-most — alternatives.
    MAX_CANDIDATES = 64

    def __init__(self, optimizer: QueryOptimizer) -> None:
        self.optimizer = optimizer

    # -- enumeration --------------------------------------------------------------------

    def choose(self, plan: LogicalPlan) -> tuple[PhysicalCandidate, tuple[PhysicalCandidate, ...]]:
        """Enumerate and cost candidates; return (winner, all candidates)."""
        candidates = self.enumerate_candidates(plan)
        chosen = min(
            candidates,
            key=lambda c: (
                round(c.cost.dollars, 9),
                c.cost.hits,
                c.cost.tasks,
                c.cost.local_work,
            ),
        )
        return chosen, tuple(candidates)

    def enumerate_candidates(self, plan: LogicalPlan) -> list[PhysicalCandidate]:
        """All physical alternatives (capped at :attr:`MAX_CANDIDATES`), costed."""
        join_orders = self._join_orders(plan)
        interface_axes = [self._join_interfaces(join) for join in plan.join_predicates]
        sort_axes = [self._sort_strategies(sort) for sort in plan.crowd_sorts()]
        filter_bindings = sorted(plan.crowd_filters)
        placement_axes = [
            self._filter_placements(plan, binding) for binding in filter_bindings
        ]
        access_options = {
            binding: self._access_paths(plan, binding)
            for binding in sorted(plan.table_pipelines)
        }
        # Only bindings with a real alternative become an axis; everything
        # else keeps its default pipeline and its decision strings untouched.
        access_bindings = [b for b, paths in access_options.items() if len(paths) > 1]
        access_axes = [access_options[b] for b in access_bindings]
        build_axes = [["left", "right"] for _ in plan.local_joins]

        combos = itertools.product(
            join_orders, *interface_axes, *sort_axes, *placement_axes, *access_axes, *build_axes
        )
        candidates: list[PhysicalCandidate] = []
        n_joins = len(plan.join_predicates)
        n_sorts = len(sort_axes)
        n_placements = len(placement_axes)
        n_accesses = len(access_bindings)
        for combo in itertools.islice(combos, self.MAX_CANDIDATES):
            order = combo[0]
            interfaces = combo[1 : 1 + n_joins]
            sorts = combo[1 + n_joins : 1 + n_joins + n_sorts]
            placements = dict(
                zip(filter_bindings, combo[1 + n_joins + n_sorts : 1 + n_joins + n_sorts + n_placements])
            )
            accesses = dict(
                zip(
                    access_bindings,
                    combo[
                        1 + n_joins + n_sorts + n_placements : 1
                        + n_joins
                        + n_sorts
                        + n_placements
                        + n_accesses
                    ],
                )
            )
            builds = list(combo[1 + n_joins + n_sorts + n_placements + n_accesses :])
            root, decisions = self._compose(
                plan, order, interfaces, sorts, placements, accesses, builds
            )
            cost = self.optimizer.estimate_logical_cost(root)
            candidates.append(PhysicalCandidate(root=root, cost=cost, decisions=decisions))
        return candidates

    def default_tree(self, plan: LogicalPlan) -> LogicalNode:
        """The canonical undecided tree (declared join order, filters below).

        Used by EXPLAIN to show the logical plan before physical decisions.
        """
        orders = self._join_orders(plan)
        root, _decisions = self._compose(
            plan,
            orders[0],
            [None] * len(plan.join_predicates),
            [None] * len(plan.crowd_sorts()),
            {
                binding: ("below", tuple(filters))
                for binding, filters in plan.crowd_filters.items()
            },
            {},
            [None] * len(plan.local_joins),
        )
        return root

    # -- per-axis options ----------------------------------------------------------------

    def _join_orders(self, plan: LogicalPlan) -> list[tuple[int, ...]]:
        """Valid left-deep join orders as tuples of predicate indices."""
        bindings = set(plan.table_pipelines)
        predicates = plan.join_predicates
        if len(bindings) > 1 and not predicates:
            locally_joined: set[str] = set()
            for local in plan.local_joins:
                locally_joined.update((local.left_binding, local.right_binding))
            if locally_joined == bindings:
                # Machine equi-joins connect every table; the crowd join
                # order axis is empty, build sides are a separate axis.
                return [()]
            missing = ", ".join(sorted(bindings - locally_joined)) or "<none>"
            raise PlanError(
                "joining several tables requires a crowd join predicate or a "
                f"machine equi-join in WHERE linking every table (unjoined: {missing}); "
                "cartesian products are never what you want to pay for"
            )
        if not predicates:
            return [()]
        referenced = set()
        for join in predicates:
            referenced.update((join.left_binding, join.right_binding))
        if referenced != bindings:
            missing = ", ".join(sorted(bindings - referenced)) or "<none>"
            raise PlanError(
                f"tables are not connected by join predicates (unjoined: {missing}); "
                "every FROM table needs a crowd join predicate linking it in"
            )
        orders: list[tuple[int, ...]] = []
        for permutation in itertools.permutations(range(len(predicates))):
            joined: set[str] = set()
            valid = True
            for index in permutation:
                join = predicates[index]
                ends = {join.left_binding, join.right_binding}
                if not joined:
                    joined |= ends
                    continue
                overlap = ends & joined
                if len(overlap) != 1:
                    # Disconnected (0) or a cycle edge (2): not a left-deep step.
                    valid = False
                    break
                joined |= ends
            if valid:
                orders.append(permutation)
        if not orders:
            raise PlanError(
                "join predicates do not form a tree over the FROM tables; "
                "cyclic or disconnected crowd join predicates are not supported"
            )
        return orders

    def _join_interfaces(self, join: LogicalJoin) -> list[JoinStrategy]:
        if join.supports_columns:
            # COLUMNS first so equal-cost ties keep the two-column interface.
            return [JoinStrategy.COLUMNS, JoinStrategy.PAIRWISE]
        return [JoinStrategy.PAIRWISE]

    def _sort_strategies(self, sort: LogicalSort) -> list[SortStrategy]:
        if sort.preferred_strategy is SortStrategy.RATING:
            return [SortStrategy.RATING]
        if self.optimizer.config.sort_policy == "cost":
            # COMPARISON first so equal-cost ties keep the response-preferred
            # interface.
            return [SortStrategy.COMPARISON, SortStrategy.RATING]
        return [SortStrategy.COMPARISON]

    def _filter_placements(
        self, plan: LogicalPlan, binding: str
    ) -> list[tuple[str, tuple[LogicalFilter, ...]]]:
        filters = plan.crowd_filters[binding]
        if len(filters) <= 3:
            orders = [tuple(p) for p in itertools.permutations(filters)]
        else:
            orders = [tuple(filters)]
        placements = ["below"]
        if plan.join_predicates:
            placements.append("above")
        return [(placement, order) for placement in placements for order in orders]

    #: Comparison operators a secondary index can serve (sorted indexes serve
    #: all of them, hash indexes only equality).
    _RANGE_OPS = ("<", "<=", ">", ">=")
    _FLIPPED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

    def _access_paths(
        self, plan: LogicalPlan, binding: str
    ) -> list[tuple[LogicalNode | None, str | None]]:
        """Access-path options for one table pipeline.

        Each option is ``(pipeline template, decision label)``; the first is
        always the default table scan (template ``None``).  Alternatives
        replace one ``filter(column op literal) → scan`` pair with a
        :class:`LogicalIndexScan` leaf, keeping every other local filter in
        its original position.  Labels stay ``None`` when no index applies,
        so queries without usable indexes keep their decision strings
        byte-identical.
        """
        node = plan.table_pipelines[binding]
        filters: list[LogicalFilter] = []
        while isinstance(node, LogicalFilter) and not node.is_crowd and node.children:
            filters.append(node)
            node = node.children[0]
        if not isinstance(node, LogicalScan):
            return [(None, None)]
        scan = node
        options: list[tuple[LogicalNode | None, str | None]] = [(None, None)]
        for position, candidate in enumerate(filters):
            match = self._indexable_comparison(scan, candidate.predicate)
            if match is None:
                continue
            column, op, value = match
            leaf: LogicalNode = LogicalIndexScan(
                scan.table,
                column=column,
                op=op,
                value=value,
                alias=scan.alias,
                binding=scan.binding,
            )
            pipeline = leaf
            for other in reversed([f for i, f in enumerate(filters) if i != position]):
                parent = other.clone()
                parent.children.clear()
                parent.add_child(pipeline)
                pipeline = parent
            options.append(
                (pipeline, f"access[{binding}]: index({column} {op} {value!r})")
            )
        if len(options) > 1:
            options[0] = (None, f"access[{binding}]: table-scan")
        return options

    def _indexable_comparison(
        self, scan: LogicalScan, predicate: Expression | None
    ) -> tuple[str, str, object] | None:
        """``(column, op, literal)`` if an index on ``scan``'s table serves it."""
        if not isinstance(predicate, Comparison):
            return None
        left, op, right = predicate.left, predicate.op, predicate.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            # Normalize ``literal op column`` to ``column op' literal``.
            left, right = right, left
            op = self._FLIPPED_OPS.get(op)
        if op is None or not isinstance(left, ColumnRef) or not isinstance(right, Literal):
            return None
        if right.value is None:
            return None  # ``col = NULL`` never matches; leave it to the filter.
        if op != "=" and op not in self._RANGE_OPS:
            return None
        column = left.name.rsplit(".", 1)[-1]
        prefix = left.name[: -len(column) - 1] if "." in left.name else None
        if prefix is not None and prefix != scan.binding:
            return None
        index = scan.table.index_on(column)
        if index is None:
            return None
        if op in self._RANGE_OPS and not isinstance(index, SortedIndex):
            return None
        return column, op, right.value

    # -- candidate composition ------------------------------------------------------------

    def _compose(
        self,
        plan: LogicalPlan,
        join_order: tuple[int, ...],
        join_strategies,
        sort_strategies,
        filter_choices: dict[str, tuple[str, tuple[LogicalFilter, ...]]],
        access_choices: dict[str, tuple[LogicalNode | None, str | None]],
        build_choices: list[str | None] | None = None,
    ) -> tuple[LogicalNode, tuple[str, ...]]:
        decisions: list[str] = []
        pipelines: dict[str, LogicalNode] = {}
        for binding, node in plan.table_pipelines.items():
            template, label = access_choices.get(binding, (None, None))
            pipelines[binding] = (template or node).clone()
            if label is not None:
                decisions.append(label)

        for binding in sorted(filter_choices):
            placement, order = filter_choices[binding]
            names = "+".join(f.spec.name for f in order)
            if placement == "below":
                for template in order:
                    node = template.clone()
                    node.add_child(pipelines[binding])
                    pipelines[binding] = node
            if plan.join_predicates:
                decisions.append(f"filter[{names}]: {placement} join")
            elif len(order) > 1:
                decisions.append(f"filter order[{binding}]: {names}")

        current: LogicalNode | None = None
        joined: set[str] = set()
        order_labels: list[str] = []
        for index in join_order:
            template = plan.join_predicates[index]
            node = template.clone()
            # join_strategies is indexed by predicate, not by order position.
            strategy = join_strategies[index] if join_strategies else None
            node.strategy = strategy
            left, right = template.left_binding, template.right_binding
            if current is None:
                node.add_child(pipelines[left])
                node.add_child(pipelines[right])
                joined |= {left, right}
            elif left in joined:
                node.add_child(current)
                node.add_child(pipelines[right])
                joined.add(right)
            else:
                node.add_child(pipelines[left])
                node.add_child(current)
                joined.add(left)
            current = node
            order_labels.append(template.spec.name)
            if strategy is not None:
                decisions.append(f"join[{template.spec.name}]: {strategy.value}")
        if len(join_order) > 1:
            decisions.append("join order: " + " -> ".join(order_labels))

        for position, template in enumerate(plan.local_joins):
            node = template.clone()
            side = build_choices[position] if build_choices else None
            node.build_side = side
            left, right = template.left_binding, template.right_binding
            if current is None:
                node.add_child(pipelines[left])
                node.add_child(pipelines[right])
                joined |= {left, right}
            elif left in joined:
                node.add_child(current)
                node.add_child(pipelines[right])
                joined.add(right)
            elif right in joined:
                node.add_child(pipelines[left])
                node.add_child(current)
                joined.add(left)
            else:
                raise PlanError(
                    "machine equi-join predicates do not form a connected chain "
                    "over the FROM tables; reorder them so each one links a new "
                    "table to the already-joined ones"
                )
            current = node
            if side is not None:
                build_child = node.children[0] if side == "left" else node.children[1]
                index_backed = isinstance(build_child, LogicalScan) and node.index_backed(side)
                tag = " (index-backed)" if index_backed else ""
                decisions.append(
                    f"local-join[{template.left_key} = {template.right_key}]: "
                    f"build={side}{tag}"
                )

        if current is None:
            current = next(iter(pipelines.values()))

        for template in plan.post_join_filters:
            node = template.clone()
            node.add_child(current)
            current = node

        for binding in sorted(filter_choices):
            placement, order = filter_choices[binding]
            if placement != "above":
                continue
            for template in order:
                node = template.clone()
                node.add_child(current)
                current = node

        sort_index = 0
        for template in plan.upper:
            node = template.clone()
            if isinstance(node, LogicalSort) and node.is_crowd:
                strategy = sort_strategies[sort_index] if sort_strategies else None
                sort_index += 1
                node.strategy = strategy
                if strategy is not None:
                    decisions.append(f"sort[{node.spec.name}]: {strategy.value}")
            node.add_child(current)
            current = node
        return current, tuple(decisions)

    # -- physical construction -------------------------------------------------------------

    def build(self, root: LogicalNode) -> Operator:
        """Turn a decided (and annotated) logical tree into physical operators."""
        return self._build_node(root)

    def _build_node(self, node: LogicalNode) -> Operator:
        children = [self._build_node(child) for child in node.children]
        operator = self._make_operator(node, children)
        for child in children:
            operator.add_child(child)
        operator.planned_input_rows = (
            node.children[0].estimated_rows if node.children else None
        )
        if isinstance(operator, CrowdJoinOperator) and len(node.children) == 2:
            operator.planned_left_rows = node.children[0].estimated_rows
            operator.planned_right_rows = node.children[1].estimated_rows
        return operator

    def _make_operator(self, node: LogicalNode, children: list[Operator]) -> Operator:
        input_schema = children[0].output_schema if children else None
        if isinstance(node, LogicalScan):
            return ScanOperator(node.table, alias=node.alias)
        if isinstance(node, LogicalIndexScan):
            return IndexScanOperator(
                node.table, node.column, node.op, node.value, alias=node.alias
            )
        if isinstance(node, LogicalFilter):
            if node.is_crowd:
                return CrowdFilterOperator(
                    node.spec,
                    list(node.call.args) if node.call is not None else [],
                    input_schema,
                    negate=node.negate,
                )
            return LocalFilterOperator(node.predicate, input_schema)
        if isinstance(node, LogicalJoin):
            strategy = node.strategy
            if strategy is None:
                choice = self.optimizer.choose_join_strategy(
                    node.spec,
                    int(node.children[0].estimated_rows or 0),
                    int(node.children[1].estimated_rows or 0),
                )
                strategy = choice.strategy
            entry = node.entry
            return CrowdJoinOperator(
                node.spec,
                children[0].output_schema,
                children[1].output_schema,
                strategy=strategy,
                pairs_per_hit=node.pairs_per_hit,
                left_per_hit=node.left_per_hit,
                right_per_hit=node.right_per_hit,
                left_payload=entry.left_payload if entry else None,
                right_payload=entry.right_payload if entry else None,
                prefilter=entry.prefilter if entry else None,
            )
        if isinstance(node, LogicalLocalJoin):
            return LocalHashJoinOperator(
                node.left_key,
                node.right_key,
                children[0].output_schema,
                children[1].output_schema,
                build_side=node.build_side or "left",
            )
        if isinstance(node, LogicalGenerate):
            return CrowdGenerateOperator(
                node.spec,
                list(node.call.args) if node.call is not None else [],
                input_schema,
                output_prefix=node.output_prefix,
            )
        if isinstance(node, LogicalSort):
            if node.is_crowd:
                entry = node.entry
                return CrowdSortOperator(
                    node.spec,
                    input_schema,
                    strategy=node.strategy or node.preferred_strategy,
                    descending=not node.ascending,
                    items_per_hit=node.items_per_hit,
                    payload=entry.payload if entry else None,
                )
            return LocalSortOperator(node.key, input_schema, ascending=node.ascending)
        if isinstance(node, LogicalGroupBy):
            return GroupByOperator(node.group_columns, node.aggregates, input_schema)
        if isinstance(node, LogicalLimit):
            return LimitOperator(node.limit, input_schema)
        if isinstance(node, LogicalProject):
            return _build_projection(node.items)
        raise PlanError(f"cannot build a physical operator for {node.label()}")


def _build_projection(select_items) -> ProjectOperator:
    """The final projection, with de-duplicated output column names."""
    items: list[ProjectionItem] = []
    seen: set[str] = set()
    for item in select_items:
        name = item.alias or _default_output_name(item.expression)
        base = name
        counter = 2
        while name in seen:
            name = f"{base}_{counter}"
            counter += 1
        seen.add(name)
        items.append(ProjectionItem(name, item.expression))
    return ProjectOperator(items)


def _default_output_name(expression: Expression) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    return str(expression)
