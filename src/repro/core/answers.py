"""Answer lists and user-defined aggregates (Section 3 of the paper).

Qurk's data model differs from the plain relational model in one way: because
a HIT is run by several turkers, an attribute produced by the crowd is a
*list* of answers rather than a single value.  The paper deliberately avoids
an uncertainty model; instead, answer lists are reduced with user-defined
aggregates.  This module provides the answer-list container and the built-in
aggregates used by the operators and the query language (``MajorityVote`` is
the default for categorical answers, ``MeanRating`` for numeric ones).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import AggregateError

__all__ = [
    "AnswerList",
    "Aggregate",
    "MajorityVote",
    "WeightedVote",
    "ConfidenceWeightedVote",
    "WeightedFieldwiseMajority",
    "WeightedMeanRating",
    "First",
    "ListAll",
    "MeanRating",
    "MedianRating",
    "FieldwiseMajority",
    "majority_confidence",
    "weighted_confidence",
    "weighted_counterpart",
    "get_aggregate",
    "register_aggregate",
]


@dataclass(frozen=True)
class AnswerList:
    """The answers several workers gave to the same task.

    ``answers`` holds one entry per assignment, in submission order.
    ``worker_ids`` is parallel to ``answers`` and may be empty when worker
    attribution is unavailable (e.g. answers synthesised by the Task Model).
    """

    answers: tuple[Any, ...]
    worker_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.worker_ids and len(self.worker_ids) != len(self.answers):
            raise AggregateError("worker_ids must be empty or parallel to answers")

    @classmethod
    def of(cls, answers: Iterable[Any], worker_ids: Iterable[str] = ()) -> "AnswerList":
        return cls(tuple(answers), tuple(worker_ids))

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self):
        return iter(self.answers)

    def __getitem__(self, index: int) -> Any:
        return self.answers[index]

    def agreement(self) -> float:
        """Fraction of answers equal to the most common answer (1.0 if empty)."""
        if not self.answers:
            return 1.0
        counts = Counter(self._hashable_answers())
        return counts.most_common(1)[0][1] / len(self.answers)

    def _hashable_answers(self) -> list[Any]:
        return [_freeze(a) for a in self.answers]

    def reduce(self, aggregate: "Aggregate") -> Any:
        """Reduce this answer list with ``aggregate``."""
        return aggregate(self)


def _freeze(value: Any) -> Any:
    """Convert an answer into a hashable key for vote counting."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set)):
        return tuple(_freeze(v) for v in value)
    return value


class Aggregate:
    """Base class for user-defined aggregates over answer lists."""

    #: Name used by the query language (``Combiner: MajorityVote``).
    name = "Aggregate"

    def __call__(self, answers: AnswerList) -> Any:
        if not isinstance(answers, AnswerList):
            answers = AnswerList.of(answers)
        if len(answers) == 0:
            raise AggregateError(f"{self.name} cannot reduce an empty answer list")
        return self.reduce(answers)

    def reduce(self, answers: AnswerList) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class MajorityVote(Aggregate):
    """Return the most common answer; ties break toward the earliest answer.

    This is the default combiner for boolean predicates (filters, join
    predicates) and categorical form fields.
    """

    name = "MajorityVote"

    def reduce(self, answers: AnswerList) -> Any:
        counts = Counter()
        first_seen: dict[Any, int] = {}
        originals: dict[Any, Any] = {}
        for position, answer in enumerate(answers):
            key = _freeze(answer)
            counts[key] += 1
            first_seen.setdefault(key, position)
            originals.setdefault(key, answer)
        best = max(counts, key=lambda key: (counts[key], -first_seen[key]))
        return originals[best]


class WeightedVote(Aggregate):
    """Majority vote where each worker's vote is weighted.

    Weights come from a ``{worker_id: weight}`` mapping (e.g. historical
    accuracy from the Statistics Manager).  Unknown workers get
    ``default_weight``.
    """

    name = "WeightedVote"

    def __init__(self, weights: Mapping[str, float], default_weight: float = 1.0):
        self.weights = dict(weights)
        self.default_weight = default_weight

    def reduce(self, answers: AnswerList) -> Any:
        if not answers.worker_ids:
            return MajorityVote().reduce(answers)
        totals: dict[Any, float] = {}
        originals: dict[Any, Any] = {}
        for answer, worker_id in zip(answers.answers, answers.worker_ids):
            key = _freeze(answer)
            weight = self.weights.get(worker_id, self.default_weight)
            totals[key] = totals.get(key, 0.0) + weight
            originals.setdefault(key, answer)
        best = max(totals, key=lambda key: totals[key])
        return originals[best]


class First(Aggregate):
    """Return the first answer received (cheapest possible combiner)."""

    name = "First"

    def reduce(self, answers: AnswerList) -> Any:
        return answers[0]


class ListAll(Aggregate):
    """Return the raw answer list (the paper's default: let the user decide)."""

    name = "ListAll"

    def reduce(self, answers: AnswerList) -> Any:
        return list(answers.answers)


class MeanRating(Aggregate):
    """Arithmetic mean of numeric answers (used by rating-based operators)."""

    name = "MeanRating"

    def reduce(self, answers: AnswerList) -> float:
        values = [self._as_number(a) for a in answers]
        return sum(values) / len(values)

    @staticmethod
    def _as_number(value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise AggregateError(f"MeanRating needs numeric answers, got {value!r}")
        return float(value)


class MedianRating(Aggregate):
    """Median of numeric answers; more robust to spammer ratings than the mean."""

    name = "MedianRating"

    def reduce(self, answers: AnswerList) -> float:
        values = sorted(MeanRating._as_number(a) for a in answers)
        middle = len(values) // 2
        if len(values) % 2 == 1:
            return values[middle]
        return (values[middle - 1] + values[middle]) / 2.0


def _fieldwise_reduce(
    answers: AnswerList, voter: Callable[[AnswerList], Any], *, name: str
) -> dict[str, Any]:
    """Split mapping answers into per-field answer lists and vote each field.

    The one implementation behind :class:`FieldwiseMajority` and
    :class:`WeightedFieldwiseMajority` — only the per-field ``voter``
    differs, so field collection / ordering / missing-field policy can never
    diverge between the weighted and unweighted paths.  Worker attribution
    is preserved field-by-field (voters that ignore it see no difference).
    """
    if not all(isinstance(a, Mapping) for a in answers):
        raise AggregateError(f"{name} needs mapping-valued answers")
    worker_ids = answers.worker_ids or tuple("" for _ in answers.answers)
    fields: set[str] = set()
    for answer in answers:
        fields.update(answer.keys())
    result: dict[str, Any] = {}
    for field_name in sorted(fields):
        votes = [
            (answer[field_name], worker_id)
            for answer, worker_id in zip(answers.answers, worker_ids)
            if field_name in answer
        ]
        field_answers = AnswerList.of(
            (value for value, _ in votes),
            (worker_id for _, worker_id in votes) if answers.worker_ids else (),
        )
        result[field_name] = voter(field_answers)
    return result


class FieldwiseMajority(Aggregate):
    """Majority vote applied independently to each field of form answers.

    Query 1's ``findCEO`` returns ``{"CEO": ..., "Phone": ...}`` per worker;
    reducing field-by-field tolerates a worker who got the CEO right but the
    phone number wrong.
    """

    name = "FieldwiseMajority"

    def reduce(self, answers: AnswerList) -> dict[str, Any]:
        return _fieldwise_reduce(answers, MajorityVote().reduce, name=self.name)


def _resolved_weights(
    answers: AnswerList, weights: Mapping[str, float], default_weight: float
) -> list[float]:
    """Per-answer vote weights, parallel to ``answers.answers``."""
    return [weights.get(worker_id, default_weight) for worker_id in answers.worker_ids]


class ConfidenceWeightedVote(WeightedVote):
    """:class:`WeightedVote` specialised for reputation weights (quality control).

    Each vote counts with its worker's weight (typically the log-odds of the
    worker's posterior accuracy from
    :class:`~repro.crowd.quality.WorkerReputation`).  The only behaviour
    added over the base class is the uniform-weights shortcut: when every
    resolved weight is equal the plain :class:`MajorityVote` runs directly,
    so the degradation to majority voting is bit-exact (same winner, same
    earliest-answer tie-break, no float scaling) — switching quality control
    on cannot change results until reputations diverge.
    """

    name = "ConfidenceWeightedVote"

    def reduce(self, answers: AnswerList) -> Any:
        if answers.worker_ids:
            resolved = _resolved_weights(answers, self.weights, self.default_weight)
            if len(set(resolved)) <= 1:
                return MajorityVote().reduce(answers)
        return super().reduce(answers)


class WeightedFieldwiseMajority(Aggregate):
    """Fieldwise majority with reputation-weighted votes per field.

    The quality-control counterpart of :class:`FieldwiseMajority`: each form
    field is decided independently, weighting every worker's field answer by
    their reputation.  Degrades exactly to :class:`FieldwiseMajority` under
    uniform weights.
    """

    name = "WeightedFieldwiseMajority"

    def __init__(self, weights: Mapping[str, float], default_weight: float = 1.0):
        self.weights = dict(weights)
        self.default_weight = default_weight

    def reduce(self, answers: AnswerList) -> dict[str, Any]:
        voter = ConfidenceWeightedVote(self.weights, self.default_weight)
        return _fieldwise_reduce(answers, voter.reduce, name=self.name)


class WeightedMeanRating(Aggregate):
    """Reputation-weighted mean of numeric answers.

    Degrades exactly to :class:`MeanRating` under uniform weights (the plain
    mean is computed directly in that case, so no float drift sneaks in).
    """

    name = "WeightedMeanRating"

    def __init__(self, weights: Mapping[str, float], default_weight: float = 1.0):
        self.weights = dict(weights)
        self.default_weight = default_weight

    def reduce(self, answers: AnswerList) -> float:
        values = [MeanRating._as_number(a) for a in answers]
        if not answers.worker_ids:
            return sum(values) / len(values)
        resolved = _resolved_weights(answers, self.weights, self.default_weight)
        if len(set(resolved)) <= 1:
            return sum(values) / len(values)
        total_weight = sum(resolved)
        if total_weight <= 0:
            return sum(values) / len(values)
        return sum(value * weight for value, weight in zip(values, resolved)) / total_weight


#: Plain combiner name -> factory for its reputation-weighted counterpart.
_WEIGHTED_COUNTERPARTS: dict[str, Callable[[Mapping[str, float], float], Aggregate]] = {
    "majorityvote": ConfidenceWeightedVote,
    "fieldwisemajority": WeightedFieldwiseMajority,
    "meanrating": WeightedMeanRating,
}


def weighted_counterpart(
    combiner_name: str, weights: Mapping[str, float], default_weight: float = 1.0
) -> Aggregate | None:
    """The reputation-weighted counterpart of a plain combiner, if one exists.

    Returns None for combiners with no weighted analogue (``First``,
    ``ListAll``, ``MedianRating`` — the median is already spammer-robust);
    callers fall back to the plain combiner in that case.
    """
    factory = _WEIGHTED_COUNTERPARTS.get(combiner_name.lower())
    if factory is None:
        return None
    return factory(weights, default_weight)


def majority_confidence(answers: AnswerList) -> float:
    """Simple confidence proxy: agreement of the winning answer.

    Not a calibrated probability (the paper explicitly declines to model
    uncertainty), but useful for adaptive redundancy decisions.
    """
    return answers.agreement()


def weighted_confidence(
    answers: AnswerList, weights: Mapping[str, float], default_weight: float = 1.0
) -> float:
    """Reputation-weighted share of the winning answer (1.0 if empty).

    The early-stopping rule of adaptive redundancy: when the weighted vote
    share of the leading answer clears the confidence threshold, further
    assignments are unlikely to flip the outcome and the task stops early.
    Degrades to plain :meth:`AnswerList.agreement` under uniform weights.
    """
    if not answers.answers:
        return 1.0
    if not answers.worker_ids:
        return answers.agreement()
    resolved = _resolved_weights(answers, weights, default_weight)
    totals: dict[Any, float] = {}
    for answer, weight in zip(answers.answers, resolved):
        key = _freeze(answer)
        totals[key] = totals.get(key, 0.0) + weight
    total = sum(totals.values())
    if total <= 0:
        return answers.agreement()
    return max(totals.values()) / total


_REGISTRY: dict[str, Callable[[], Aggregate]] = {}


def register_aggregate(name: str, factory: Callable[[], Aggregate]) -> None:
    """Register an aggregate under ``name`` for use from the query language."""
    _REGISTRY[name.lower()] = factory


def get_aggregate(name: str) -> Aggregate:
    """Instantiate a registered aggregate by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AggregateError(f"unknown aggregate {name!r}; known: {known}") from None


for _factory in (MajorityVote, First, ListAll, MeanRating, MedianRating, FieldwiseMajority):
    register_aggregate(_factory.name, _factory)
