"""Monetary / latency cost model for crowd operators.

The optimizer compares operator implementations (join interfaces, sort
strategies, batch sizes) by the number of HITs they generate and what those
HITs cost, which is the dimension the paper stresses: a naive cross-product
join is "extraordinary monetary cost".  Latency estimates are rougher — HITs
complete in parallel, so latency grows only slowly with HIT count — but they
let the dashboard show an expected completion time.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.core.tasks.spec import TaskSpec
from repro.crowd.pricing import DEFAULT_PRICING, PricingPolicy

__all__ = ["CostEstimate", "CostModel", "majority_accuracy"]


@functools.lru_cache(maxsize=4096)
def majority_accuracy(single_accuracy: float, assignments: int) -> float:
    """Probability that a majority of ``assignments`` independent workers is right.

    Ties (possible only for even counts) are counted as failures, which makes
    the estimate conservative; the optimizer only considers odd counts.
    Memoized: the adaptive redundancy rule evaluates this once per task on
    the hot path, over a handful of distinct (accuracy, k) pairs.

    Lives in the cost model (rather than the optimizer) because it is the
    accuracy half of pricing redundancy: dollars per HIT come from
    :meth:`CostModel.hit_cost`, accuracy per redundancy level from here, and
    the optimizer trades the two off using *observed* worker accuracy when a
    :class:`~repro.crowd.quality.WorkerReputation` tracker is attached.
    """
    p = min(max(single_accuracy, 0.0), 1.0)
    total = 0.0
    for correct in range(assignments + 1):
        if correct * 2 <= assignments:
            continue
        total += math.comb(assignments, correct) * p**correct * (1 - p) ** (assignments - correct)
    return total


@dataclass(frozen=True)
class CostEstimate:
    """Predicted resources for one crowd operator (or a whole plan).

    ``local_work`` counts abstract machine-side row touches (a table scan is
    ``n``, an index probe ``log n`` plus the matches).  It is *not* money:
    candidate selection orders by (dollars, hits, tasks) first and uses
    local work only as the trailing tie-break, so it differentiates
    access paths of crowd-free pipelines without ever overriding a crowd
    cost difference.
    """

    tasks: float = 0.0
    hits: float = 0.0
    dollars: float = 0.0
    latency_seconds: float = 0.0
    local_work: float = 0.0

    def plus(self, other: "CostEstimate") -> "CostEstimate":
        """Combine two estimates (dollars add; latency takes the pipeline max)."""
        return CostEstimate(
            tasks=self.tasks + other.tasks,
            hits=self.hits + other.hits,
            dollars=self.dollars + other.dollars,
            latency_seconds=max(self.latency_seconds, other.latency_seconds),
            local_work=self.local_work + other.local_work,
        )


class CostModel:
    """Translates task counts into HITs, dollars and rough latency."""

    def __init__(
        self,
        pricing: PricingPolicy = DEFAULT_PRICING,
        *,
        base_hit_latency: float = 300.0,
    ) -> None:
        self.pricing = pricing
        self.base_hit_latency = base_hit_latency

    # -- building blocks ---------------------------------------------------------------

    def hit_cost(self, spec: TaskSpec, assignments: int | None = None) -> float:
        """Dollars for one HIT of ``spec`` (reward + fee, times redundancy)."""
        redundancy = assignments or spec.assignments
        return self.pricing.assignment_cost(spec.price) * redundancy

    def _estimate(self, spec: TaskSpec, tasks: float, tasks_per_hit: float, assignments: int | None) -> CostEstimate:
        tasks = max(tasks, 0.0)
        if tasks == 0:
            return CostEstimate()
        hits = math.ceil(tasks / max(tasks_per_hit, 1))
        dollars = hits * self.hit_cost(spec, assignments)
        # HITs run in parallel on the marketplace, so latency grows slowly
        # (coordination + stragglers) rather than linearly with HIT count.
        latency = self.base_hit_latency * (1.0 + 0.15 * math.log1p(hits))
        return CostEstimate(tasks=tasks, hits=float(hits), dollars=dollars, latency_seconds=latency)

    # -- per-operator estimates ------------------------------------------------------------

    def generate_cost(
        self, spec: TaskSpec, n_rows: float, *, assignments: int | None = None,
        cache_hit_rate: float = 0.0,
    ) -> CostEstimate:
        """Cost of a schema-extension (Question) operator over ``n_rows`` tuples."""
        effective = n_rows * (1.0 - cache_hit_rate)
        return self._estimate(spec, effective, spec.batch_size, assignments)

    def filter_cost(
        self, spec: TaskSpec, n_rows: float, *, assignments: int | None = None,
        batch_size: int | None = None,
    ) -> CostEstimate:
        """Cost of a crowd filter over ``n_rows`` tuples."""
        per_hit = batch_size or spec.batch_size
        return self._estimate(spec, n_rows, per_hit, assignments)

    def join_cost_pairwise(
        self,
        spec: TaskSpec,
        n_left: float,
        n_right: float,
        *,
        assignments: int | None = None,
        pairs_per_hit: int = 1,
        candidate_fraction: float = 1.0,
    ) -> CostEstimate:
        """Cost of a pairwise crowd join (optionally after a machine pre-filter)."""
        pairs = n_left * n_right * candidate_fraction
        return self._estimate(spec, pairs, pairs_per_hit, assignments)

    def join_cost_columns(
        self,
        spec: TaskSpec,
        n_left: float,
        n_right: float,
        *,
        assignments: int | None = None,
        left_per_hit: int = 3,
        right_per_hit: int = 3,
        candidate_fraction: float = 1.0,
    ) -> CostEstimate:
        """Cost of the two-column (Figure 3) join interface."""
        effective_left = n_left * candidate_fraction ** 0.5
        effective_right = n_right * candidate_fraction ** 0.5
        blocks = math.ceil(max(effective_left, 0) / left_per_hit) * math.ceil(
            max(effective_right, 0) / right_per_hit
        )
        if n_left == 0 or n_right == 0:
            return CostEstimate()
        hits = max(blocks, 1)
        dollars = hits * self.hit_cost(spec, assignments)
        latency = self.base_hit_latency * (1.0 + 0.15 * math.log1p(hits))
        return CostEstimate(
            tasks=float(hits), hits=float(hits), dollars=dollars, latency_seconds=latency
        )

    def sort_cost_comparison(
        self, spec: TaskSpec, n_rows: float, *, assignments: int | None = None,
        comparisons_per_hit: int = 1,
    ) -> CostEstimate:
        """Cost of comparison-based crowd sort: n·(n-1)/2 pairwise questions."""
        comparisons = n_rows * max(n_rows - 1, 0) / 2.0
        return self._estimate(spec, comparisons, comparisons_per_hit, assignments)

    def sort_cost_rating(
        self, spec: TaskSpec, n_rows: float, *, assignments: int | None = None,
        ratings_per_hit: int = 1,
    ) -> CostEstimate:
        """Cost of rating-based crowd sort: one rating question per tuple."""
        return self._estimate(spec, n_rows, ratings_per_hit, assignments)
