"""The Query Optimizer (Figure 1).

"The Query Optimizer compiles the query into a query plan and adaptively
optimizes it during query execution.  Query selectivities for HIT-based
operators are not known a priori and user metrics may change mid-query.
Additionally, the optimization function must take into account monetary cost,
the number [of] turkers to assign to each HIT, and the overall query
performance."

Decisions implemented here:

* **redundancy** — the number of assignments per HIT, chosen as the smallest
  odd k whose majority vote reaches the query's target confidence given the
  observed single-worker agreement (re-evaluated during execution, so the
  choice adapts as statistics accumulate);
* **join interface** — pairwise yes/no HITs (optionally batched) versus the
  two-column Figure 3 interface, chosen by comparing cost-model estimates;
* **sort strategy** — comparison-based versus rating-based crowd sort;
* **plan cost estimation** — dollars / HITs / latency for the dashboard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.operators.base import Operator
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_generate import CrowdGenerateOperator
from repro.core.operators.crowd_join import CrowdJoinOperator, JoinStrategy
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.scan import ScanOperator
from repro.core.optimizer.cost_model import CostEstimate, CostModel
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.spec import JoinColumnsResponse, RatingResponse, TaskSpec

__all__ = ["OptimizerConfig", "JoinChoice", "QueryOptimizer", "majority_accuracy"]


def majority_accuracy(single_accuracy: float, assignments: int) -> float:
    """Probability that a majority of ``assignments`` independent workers is right.

    Ties (possible only for even counts) are counted as failures, which makes
    the estimate conservative; the optimizer only considers odd counts.
    """
    p = min(max(single_accuracy, 0.0), 1.0)
    total = 0.0
    for correct in range(assignments + 1):
        if correct * 2 <= assignments:
            continue
        total += math.comb(assignments, correct) * p**correct * (1 - p) ** (assignments - correct)
    return total


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimizer-wide tuning knobs."""

    target_confidence: float = 0.9
    max_assignments: int = 7
    candidate_assignments: tuple[int, ...] = (1, 3, 5, 7)
    default_worker_accuracy: float = 0.85
    adaptive: bool = True


@dataclass(frozen=True)
class JoinChoice:
    """The optimizer's decision for one crowd join."""

    strategy: JoinStrategy
    pairs_per_hit: int = 1
    left_per_hit: int = 3
    right_per_hit: int = 3
    estimate: CostEstimate = CostEstimate()


class QueryOptimizer:
    """Cost-based and adaptive decisions for crowd operators."""

    def __init__(
        self,
        statistics: StatisticsManager,
        cost_model: CostModel | None = None,
        config: OptimizerConfig | None = None,
    ) -> None:
        self.statistics = statistics
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.config = config if config is not None else OptimizerConfig()

    # -- redundancy -------------------------------------------------------------------------

    def estimate_worker_accuracy(self, spec: TaskSpec) -> float:
        """Single-worker accuracy proxy: observed agreement with the majority."""
        stats = self.statistics.spec(spec.name)
        if stats.crowd_tasks >= 3:
            # Agreement with the majority is an optimistic proxy; damp it a little.
            return min(max(stats.mean_agreement, 0.55), 0.99)
        return self.config.default_worker_accuracy

    def choose_assignments(self, spec: TaskSpec, *, target_confidence: float | None = None) -> int:
        """Smallest candidate redundancy whose majority vote meets the target."""
        target = target_confidence if target_confidence is not None else self.config.target_confidence
        accuracy = self.estimate_worker_accuracy(spec)
        for candidate in self.config.candidate_assignments:
            if candidate > self.config.max_assignments:
                break
            if majority_accuracy(accuracy, candidate) >= target:
                return candidate
        return min(max(self.config.candidate_assignments), self.config.max_assignments)

    # -- join interface ----------------------------------------------------------------------

    def choose_join_strategy(
        self,
        spec: TaskSpec,
        n_left: int,
        n_right: int,
        *,
        pairs_per_hit: int | None = None,
        candidate_fraction: float = 1.0,
    ) -> JoinChoice:
        """Pick the cheaper of the pairwise and two-column join interfaces.

        A spec whose Response is a plain yes/no question cannot be rendered as
        the two-column interface, so it always plans as PAIRWISE (batched
        according to its ``batch_size``); only JoinColumns specs compete on
        cost.
        """
        assignments = self.choose_assignments(spec)
        if pairs_per_hit is None:
            pairs_per_hit = max(spec.batch_size, 1)
        response = spec.response
        if not isinstance(response, JoinColumnsResponse):
            estimate = self.cost_model.join_cost_pairwise(
                spec,
                n_left,
                n_right,
                assignments=assignments,
                pairs_per_hit=pairs_per_hit,
                candidate_fraction=candidate_fraction,
            )
            return JoinChoice(
                strategy=JoinStrategy.PAIRWISE, pairs_per_hit=pairs_per_hit, estimate=estimate
            )
        left_per_hit = response.left_per_hit
        right_per_hit = response.right_per_hit
        pairwise = self.cost_model.join_cost_pairwise(
            spec,
            n_left,
            n_right,
            assignments=assignments,
            pairs_per_hit=pairs_per_hit,
            candidate_fraction=candidate_fraction,
        )
        columns = self.cost_model.join_cost_columns(
            spec,
            n_left,
            n_right,
            assignments=assignments,
            left_per_hit=left_per_hit,
            right_per_hit=right_per_hit,
            candidate_fraction=candidate_fraction,
        )
        if columns.dollars <= pairwise.dollars:
            return JoinChoice(
                strategy=JoinStrategy.COLUMNS,
                left_per_hit=left_per_hit,
                right_per_hit=right_per_hit,
                estimate=columns,
            )
        return JoinChoice(
            strategy=JoinStrategy.PAIRWISE, pairs_per_hit=pairs_per_hit, estimate=pairwise
        )

    # -- sort strategy ------------------------------------------------------------------------

    def choose_sort_strategy(self, spec: TaskSpec, n_rows: int) -> SortStrategy:
        """Rating-based sort beyond a small input size; the spec can force rating."""
        if isinstance(spec.response, RatingResponse):
            return SortStrategy.RATING
        comparison = self.cost_model.sort_cost_comparison(spec, n_rows)
        rating = self.cost_model.sort_cost_rating(spec, n_rows)
        return SortStrategy.COMPARISON if comparison.dollars <= rating.dollars else SortStrategy.RATING

    # -- plan-level estimation ---------------------------------------------------------------------

    def estimate_plan_cost(self, root: Operator) -> CostEstimate:
        """Walk a physical plan and estimate its total crowd cost.

        Cardinalities flow bottom-up: scans contribute their table sizes,
        crowd filters apply the (estimated) selectivity of their predicate,
        joins multiply.  The estimate is refreshed by the dashboard while the
        query runs, so it tightens as observed selectivities replace priors.
        """
        total = CostEstimate()

        def visit(operator: Operator) -> float:
            nonlocal total
            child_cards = [visit(child) for child in operator.children]
            if isinstance(operator, ScanOperator):
                return float(len(operator.table))
            if isinstance(operator, CrowdGenerateOperator):
                cardinality = child_cards[0] if child_cards else 0.0
                cache_rate = self.statistics.spec(operator.spec.name).cache_hits / max(
                    self.statistics.spec(operator.spec.name).tasks_completed, 1
                )
                total = total.plus(
                    self.cost_model.generate_cost(
                        operator.spec,
                        cardinality,
                        assignments=self.choose_assignments(operator.spec),
                        cache_hit_rate=cache_rate,
                    )
                )
                return cardinality
            if isinstance(operator, CrowdFilterOperator):
                cardinality = child_cards[0] if child_cards else 0.0
                total = total.plus(
                    self.cost_model.filter_cost(
                        operator.spec,
                        cardinality,
                        assignments=self.choose_assignments(operator.spec),
                    )
                )
                selectivity = self.statistics.estimate_selectivity(operator.spec.name)
                return cardinality * selectivity
            if isinstance(operator, CrowdJoinOperator):
                n_left = child_cards[0] if child_cards else 0.0
                n_right = child_cards[1] if len(child_cards) > 1 else 0.0
                if operator.strategy is JoinStrategy.PAIRWISE:
                    estimate = self.cost_model.join_cost_pairwise(
                        operator.spec,
                        n_left,
                        n_right,
                        assignments=self.choose_assignments(operator.spec),
                        pairs_per_hit=operator.pairs_per_hit,
                    )
                else:
                    estimate = self.cost_model.join_cost_columns(
                        operator.spec,
                        n_left,
                        n_right,
                        assignments=self.choose_assignments(operator.spec),
                        left_per_hit=operator.left_per_hit,
                        right_per_hit=operator.right_per_hit,
                    )
                total = total.plus(estimate)
                selectivity = self.statistics.estimate_selectivity(
                    operator.spec.name, prior=min(1.0 / max(n_right, 1.0), 1.0)
                )
                return max(n_left * n_right * selectivity, 0.0)
            if isinstance(operator, CrowdSortOperator):
                cardinality = child_cards[0] if child_cards else 0.0
                if operator.strategy is SortStrategy.COMPARISON:
                    estimate = self.cost_model.sort_cost_comparison(
                        operator.spec,
                        cardinality,
                        assignments=self.choose_assignments(operator.spec),
                        comparisons_per_hit=operator.items_per_hit,
                    )
                else:
                    estimate = self.cost_model.sort_cost_rating(
                        operator.spec,
                        cardinality,
                        assignments=self.choose_assignments(operator.spec),
                        ratings_per_hit=operator.items_per_hit,
                    )
                total = total.plus(estimate)
                return cardinality
            # Local operators: pass through the (first) child cardinality.
            return child_cards[0] if child_cards else 0.0

        visit(root)
        return total
