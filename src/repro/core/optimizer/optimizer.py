"""The Query Optimizer (Figure 1).

"The Query Optimizer compiles the query into a query plan and adaptively
optimizes it during query execution.  Query selectivities for HIT-based
operators are not known a priori and user metrics may change mid-query.
Additionally, the optimization function must take into account monetary cost,
the number [of] turkers to assign to each HIT, and the overall query
performance."

Decisions implemented here:

* **redundancy** — the number of assignments per HIT, chosen as the smallest
  odd k whose majority vote reaches the query's target confidence given the
  observed single-worker agreement (re-evaluated during execution, so the
  choice adapts as statistics accumulate);
* **join interface** — pairwise yes/no HITs (optionally batched) versus the
  two-column Figure 3 interface, chosen by comparing cost-model estimates;
* **sort strategy** — comparison-based versus rating-based crowd sort;
* **plan cost estimation** — dollars / HITs / latency for the dashboard.

Plan-level costing runs over the logical IR: every logical node prices
itself (:meth:`~repro.core.plan.logical.LogicalNode.estimate_cost`) against a
:class:`CostingPass`, which snapshots each task spec's statistics exactly
once per pass.  Physical plans are costed through the structural bridge in
:func:`repro.core.plan.logical.from_physical`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operators.base import Operator
from repro.core.operators.crowd_join import JoinStrategy
from repro.core.operators.crowd_sort import SortStrategy
from repro.core.optimizer.cost_model import CostEstimate, CostModel, majority_accuracy
from repro.core.optimizer.statistics import SpecStats, StatisticsManager, blend_selectivity
from repro.core.tasks.spec import JoinColumnsResponse, RatingResponse, TaskSpec
from repro.crowd.quality import WorkerReputation
from repro.errors import OptimizerError

__all__ = [
    "OptimizerConfig",
    "JoinChoice",
    "CostingPass",
    "QueryOptimizer",
    "majority_accuracy",
    "MODEL_RESIDUAL_FRACTION",
]


#: How the initial physical plan chooses a crowd sort's interface.
#: ``response`` — the TASK's Response type is authoritative (a Comparison
#: response sorts by pairwise comparisons, a Rating response by ratings);
#: ``cost`` — the physical planner enumerates both interfaces for Comparison
#: tasks and keeps the cost-minimal one.
SORT_POLICIES = ("response", "cost")


@dataclass(frozen=True)
class OptimizerConfig:
    """Optimizer-wide tuning knobs.

    ``candidate_assignments`` must contain odd counts only: majority voting
    over an even worker count wastes the tying assignment (ties count as
    failures), so even values silently degrade accuracy per dollar.
    """

    target_confidence: float = 0.9
    max_assignments: int = 7
    candidate_assignments: tuple[int, ...] = (1, 3, 5, 7)
    default_worker_accuracy: float = 0.85
    adaptive: bool = True
    sort_policy: str = "response"

    def __post_init__(self) -> None:
        if not self.candidate_assignments:
            raise OptimizerError("candidate_assignments must not be empty")
        for candidate in self.candidate_assignments:
            if candidate < 1:
                raise OptimizerError(
                    f"candidate assignment counts must be >= 1, got {candidate}"
                )
            if candidate % 2 == 0:
                raise OptimizerError(
                    f"candidate assignment counts must be odd (majority voting over an "
                    f"even count wastes the tying vote), got {candidate}"
                )
        if self.max_assignments < 1:
            raise OptimizerError(f"max_assignments must be >= 1, got {self.max_assignments}")
        if min(self.candidate_assignments) > self.max_assignments:
            raise OptimizerError(
                f"max_assignments ({self.max_assignments}) excludes every candidate "
                f"assignment count {self.candidate_assignments}"
            )
        if not 0.0 < self.target_confidence <= 1.0:
            raise OptimizerError(
                f"target_confidence must be in (0, 1], got {self.target_confidence}"
            )
        if self.sort_policy not in SORT_POLICIES:
            raise OptimizerError(
                f"sort_policy must be one of {SORT_POLICIES}, got {self.sort_policy!r}"
            )


@dataclass(frozen=True)
class JoinChoice:
    """The optimizer's decision for one crowd join."""

    strategy: JoinStrategy
    pairs_per_hit: int = 1
    left_per_hit: int = 3
    right_per_hit: int = 3
    estimate: CostEstimate = CostEstimate()


#: Residual cost fraction for a spec served by a trusted Task Model: the
#: model answers most tasks for free, but predictions below its confidence
#: threshold still fall through to the crowd, so the optimizer keeps a small
#: non-zero remainder ("~zero", not zero) rather than pretending escalated
#: specs are entirely free.
MODEL_RESIDUAL_FRACTION = 0.05


class CostingPass:
    """One plan-costing pass: cached statistics plus shared knobs.

    Logical nodes cost themselves against this object.  Spec statistics are
    fetched from the :class:`StatisticsManager` exactly once per spec per
    pass — per-node quantities (cache hit rate, selectivity, single-worker
    accuracy) all derive from that one snapshot.
    """

    def __init__(
        self,
        statistics: StatisticsManager,
        cost_model: CostModel,
        config: OptimizerConfig,
        reputation: WorkerReputation | None = None,
        models=None,
    ) -> None:
        self.statistics = statistics
        self.cost_model = cost_model
        self.config = config
        self.reputation = reputation
        # Optional TaskModelRegistry: trusted models escalate — they answer
        # instead of the crowd — so costing discounts their specs to ~zero.
        self.models = models
        self._spec_stats: dict[str, SpecStats] = {}
        self._model_residual: dict[str, float] = {}

    def spec_stats(self, name: str) -> SpecStats:
        """The (cached) statistics snapshot for one task spec."""
        if name not in self._spec_stats:
            self._spec_stats[name] = self.statistics.spec(name)
        return self._spec_stats[name]

    def worker_accuracy(self, spec: TaskSpec) -> float:
        """Single-worker accuracy proxy from the cached snapshot."""
        return _worker_accuracy(self.spec_stats(spec.name), self.config, self.reputation)

    def assignments_for(self, spec: TaskSpec) -> int:
        """Redundancy the adaptive rule would pick for ``spec`` right now."""
        return _pick_assignments(
            self.worker_accuracy(spec), self.config, self.config.target_confidence
        )

    def selectivity(self, name: str, *, prior: float | None = None) -> float:
        """Blended selectivity estimate from the cached statistics snapshot."""
        if prior is None:
            prior = StatisticsManager.DEFAULT_SELECTIVITY_PRIOR
        return blend_selectivity(self.spec_stats(name), prior)

    def model_residual(self, spec: TaskSpec) -> float:
        """Fraction of ``spec``'s crowd cost that survives model escalation.

        1.0 while the crowd answers; :data:`MODEL_RESIDUAL_FRACTION` once a
        trusted learned model answers instead (its holdout posterior cleared
        the trust threshold).  Memoized per pass so every node costing the
        same spec sees one consistent answer.
        """
        if self.models is None:
            return 1.0
        if spec.name not in self._model_residual:
            model = self.models.model_for(spec.name)
            trusted = model is not None and getattr(model, "is_trusted", False)
            self._model_residual[spec.name] = MODEL_RESIDUAL_FRACTION if trusted else 1.0
        return self._model_residual[spec.name]

    def discount_for_model(self, spec: TaskSpec, estimate: CostEstimate) -> CostEstimate:
        """Scale a crowd estimate by the spec's model-escalation residual.

        Dollars, HITs and latency shrink (the model answers synchronously
        and for free); task count and local work stay — each tuple is still
        touched, just not by a human.
        """
        residual = self.model_residual(spec)
        if residual >= 1.0:
            return estimate
        return CostEstimate(
            tasks=estimate.tasks,
            hits=estimate.hits * residual,
            dollars=estimate.dollars * residual,
            latency_seconds=estimate.latency_seconds * residual,
            local_work=estimate.local_work,
        )


def _worker_accuracy(
    stats: SpecStats, config: OptimizerConfig, reputation: WorkerReputation | None = None
) -> float:
    """Single-worker accuracy proxy for the redundancy rule.

    The one heuristic shared by plan-time costing (CostingPass) and the
    runtime redundancy rule, so candidate costs and per-task assignment
    choices can never diverge on the accuracy model.  Signals, best first:

    * the *observed* marketplace accuracy from an attached
      :class:`~repro.crowd.quality.WorkerReputation` tracker (gold probes
      are ground truth) — this is what re-costs redundancy mid-query under
      quality control;
    * the spec's observed agreement with the majority (an optimistic proxy,
      but *per spec* — an easy filter and a hard join have genuinely
      different judgement accuracy);
    * the configured default.

    When both observations exist they are averaged: the reputation estimate
    anchors the optimistic agreement proxy to probed ground truth without
    flattening every spec to one engine-global number.
    """
    spec_signal = stats.mean_agreement if stats.crowd_tasks >= 3 else None
    reputation_signal = reputation.population_accuracy() if reputation is not None else None
    if spec_signal is not None and reputation_signal is not None:
        observed = (spec_signal + reputation_signal) / 2.0
    elif reputation_signal is not None:
        observed = reputation_signal
    elif spec_signal is not None:
        observed = spec_signal
    else:
        return config.default_worker_accuracy
    return min(max(observed, 0.55), 0.99)


def _pick_assignments(accuracy: float, config: OptimizerConfig, target: float) -> int:
    """Smallest candidate redundancy whose majority vote meets ``target``.

    The fallback is the largest *candidate* within ``max_assignments`` —
    never ``max_assignments`` itself, which may be even and would silently
    waste the tying vote the odd-only validation exists to prevent.
    """
    for candidate in config.candidate_assignments:
        if candidate > config.max_assignments:
            break
        if majority_accuracy(accuracy, candidate) >= target:
            return candidate
    return max(c for c in config.candidate_assignments if c <= config.max_assignments)


class QueryOptimizer:
    """Cost-based and adaptive decisions for crowd operators."""

    def __init__(
        self,
        statistics: StatisticsManager,
        cost_model: CostModel | None = None,
        config: OptimizerConfig | None = None,
        *,
        reputation: WorkerReputation | None = None,
        models=None,
    ) -> None:
        self.statistics = statistics
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.config = config if config is not None else OptimizerConfig()
        # With a tracker attached, estimate_worker_accuracy — and so
        # choose_assignments and every plan-costing pass — uses the accuracy
        # observed from gold probes and vote agreement, which re-costs
        # redundancy mid-query as the marketplace reveals its quality.
        self.reputation = reputation
        # Optional TaskModelRegistry for model-escalation-aware costing:
        # specs whose learned model is trusted cost ~zero, closing the
        # paper's Task Model optimizer loop.
        self.models = models

    # -- redundancy -------------------------------------------------------------------------

    def estimate_worker_accuracy(self, spec: TaskSpec) -> float:
        """Single-worker accuracy proxy (observed reputation, then agreement)."""
        return _worker_accuracy(self.statistics.spec(spec.name), self.config, self.reputation)

    def choose_assignments(self, spec: TaskSpec, *, target_confidence: float | None = None) -> int:
        """Smallest candidate redundancy whose majority vote meets the target."""
        target = target_confidence if target_confidence is not None else self.config.target_confidence
        return _pick_assignments(self.estimate_worker_accuracy(spec), self.config, target)

    # -- join interface ----------------------------------------------------------------------

    def choose_join_strategy(
        self,
        spec: TaskSpec,
        n_left: int,
        n_right: int,
        *,
        pairs_per_hit: int | None = None,
        candidate_fraction: float = 1.0,
    ) -> JoinChoice:
        """Pick the cheaper of the pairwise and two-column join interfaces.

        A spec whose Response is a plain yes/no question cannot be rendered as
        the two-column interface, so it always plans as PAIRWISE (batched
        according to its ``batch_size``); only JoinColumns specs compete on
        cost.
        """
        assignments = self.choose_assignments(spec)
        if pairs_per_hit is None:
            pairs_per_hit = max(spec.batch_size, 1)
        response = spec.response
        if not isinstance(response, JoinColumnsResponse):
            estimate = self.cost_model.join_cost_pairwise(
                spec,
                n_left,
                n_right,
                assignments=assignments,
                pairs_per_hit=pairs_per_hit,
                candidate_fraction=candidate_fraction,
            )
            return JoinChoice(
                strategy=JoinStrategy.PAIRWISE, pairs_per_hit=pairs_per_hit, estimate=estimate
            )
        left_per_hit = response.left_per_hit
        right_per_hit = response.right_per_hit
        pairwise = self.cost_model.join_cost_pairwise(
            spec,
            n_left,
            n_right,
            assignments=assignments,
            pairs_per_hit=pairs_per_hit,
            candidate_fraction=candidate_fraction,
        )
        columns = self.cost_model.join_cost_columns(
            spec,
            n_left,
            n_right,
            assignments=assignments,
            left_per_hit=left_per_hit,
            right_per_hit=right_per_hit,
            candidate_fraction=candidate_fraction,
        )
        if columns.dollars <= pairwise.dollars:
            return JoinChoice(
                strategy=JoinStrategy.COLUMNS,
                left_per_hit=left_per_hit,
                right_per_hit=right_per_hit,
                estimate=columns,
            )
        return JoinChoice(
            strategy=JoinStrategy.PAIRWISE, pairs_per_hit=pairs_per_hit, estimate=pairwise
        )

    # -- sort strategy ------------------------------------------------------------------------

    def choose_sort_strategy(self, spec: TaskSpec, n_rows: int) -> SortStrategy:
        """Rating-based sort beyond a small input size; the spec can force rating."""
        if isinstance(spec.response, RatingResponse):
            return SortStrategy.RATING
        comparison = self.cost_model.sort_cost_comparison(spec, n_rows)
        rating = self.cost_model.sort_cost_rating(spec, n_rows)
        return SortStrategy.COMPARISON if comparison.dollars <= rating.dollars else SortStrategy.RATING

    # -- plan-level estimation ---------------------------------------------------------------------

    def costing_pass(self) -> CostingPass:
        """A fresh costing context (statistics snapshotted once per spec)."""
        return CostingPass(
            self.statistics, self.cost_model, self.config, self.reputation, self.models
        )

    def estimate_logical_cost(self, root) -> CostEstimate:
        """Cost a logical plan; annotates every node's rows/cost en route.

        Cardinalities flow bottom-up: scans contribute their table sizes,
        crowd filters apply the (estimated) selectivity of their predicate,
        joins multiply.  Each node prices itself — there is no central
        operator-type dispatch here.
        """
        from repro.core.plan.logical import annotate_plan

        return annotate_plan(root, self.costing_pass())

    def estimate_plan_cost(self, root: Operator) -> CostEstimate:
        """Walk a physical plan and estimate its total crowd cost.

        The physical tree is mirrored into the logical IR (carrying the
        decisions the plan has already committed to) and costed per-node.
        The estimate is refreshed by the dashboard while the query runs, so
        it tightens as observed selectivities replace priors.
        """
        from repro.core.plan.logical import from_physical

        return self.estimate_logical_cost(from_physical(root))
