"""Mid-query adaptive re-optimization (Section 2's adaptive requirement).

"Query selectivities for HIT-based operators are not known a priori", so the
initial physical plan is built from priors that can be badly wrong.  The
:class:`AdaptiveReplanner` is the runtime half of the optimizer: the engine
scheduler consults it at **operator-completion barriers** — whenever one of a
query's operators finishes, the true cardinality flowing into the not-yet-
started plan suffix becomes (partially) known — and it re-costs that suffix
with observed statistics.  When the plan's committed strategy is no longer
cost-minimal *and* the original estimate was demonstrably wrong, it swaps the
pending operator in place:

* **sort interface** — a comparison sort planned for a handful of rows that
  will actually receive many (O(n²) pairs!) is replaced by a rating sort,
  and vice versa;
* **join interface** — pairwise versus the two-column Figure 3 interface,
  re-decided with observed input cardinalities;
* **redundancy** — the adaptive assignment rule already re-evaluates per
  task; the replanner records when its recommendation shifts so the plan
  history shows the change.

Swaps only target operators that have not started (no tasks submitted, no
rows emitted) — crowd work already paid for is never discarded — and only
fire when the observed cardinality differs from the planner's estimate by
:attr:`AdaptiveReplanner.MISESTIMATE_FACTOR`, so well-estimated plans are
left alone.  Every change is returned to the scheduler, which emits a
``replanned`` lifecycle event the dashboard surfaces;
``QueryHandle.plan_history()`` exposes the full record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.operators.base import Operator
from repro.core.operators.crowd_filter import CrowdFilterOperator
from repro.core.operators.crowd_join import CrowdJoinOperator, JoinStrategy
from repro.core.operators.crowd_sort import CrowdSortOperator, SortStrategy
from repro.core.operators.scan import ScanOperator
from repro.core.optimizer.optimizer import QueryOptimizer
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.spec import ComparisonResponse, JoinColumnsResponse

__all__ = ["PlanChange", "AdaptiveReplanner"]


@dataclass(frozen=True)
class PlanChange:
    """One revision of a query's physical plan (or its initial choice)."""

    time: float
    query_id: str
    kind: str  # "plan" | "sort-strategy" | "join-interface" | "redundancy"
    operator: str
    before: str
    after: str
    reason: str = ""
    estimated_savings: float = 0.0

    def describe(self) -> str:
        if self.kind == "plan":
            return f"plan: {self.after}"
        text = f"{self.kind} {self.operator}: {self.before} -> {self.after}"
        if self.reason:
            text += f" ({self.reason})"
        if self.estimated_savings > 0:
            text += f", save ~${self.estimated_savings:,.2f}"
        return text


class AdaptiveReplanner:
    """Re-costs pending plan suffixes at barriers and swaps strategies."""

    #: An operator is reconsidered only when the observed input cardinality
    #: differs from the planner's estimate by at least this factor — plans
    #: whose estimates held up are never churned.
    MISESTIMATE_FACTOR = 2.0

    def __init__(self, optimizer: QueryOptimizer, statistics: StatisticsManager) -> None:
        self.optimizer = optimizer
        self.statistics = statistics
        self._seen_done: dict[str, set[int]] = {}
        self._history: dict[str, list[PlanChange]] = {}
        self._redundancy_seen: dict[tuple[str, int], int] = {}

    # -- history ---------------------------------------------------------------------

    def history(self, query_id: str) -> list[PlanChange]:
        """Every plan decision and revision recorded for one query."""
        return list(self._history.get(query_id, ()))

    def record_initial(self, query_id: str, description: str, time: float) -> None:
        """Record the initial physical plan choice as the first history entry."""
        self._history.setdefault(query_id, []).append(
            PlanChange(
                time=time,
                query_id=query_id,
                kind="plan",
                operator="",
                before="",
                after=description or "default plan",
            )
        )

    def release(self, query_id: str) -> None:
        """Drop a terminal query's barrier/redundancy bookkeeping.

        The plan history stays (it is the query's record); only the
        per-operator working state is pruned, so a long-lived engine does not
        accumulate state for every query it ever ran — and recycled
        ``id(operator)`` values can never collide across queries.
        """
        self._seen_done.pop(query_id, None)
        for key in [k for k in self._redundancy_seen if k[0] == query_id]:
            del self._redundancy_seen[key]

    # -- the barrier hook ---------------------------------------------------------------

    def maybe_replan(self, handle) -> list[PlanChange]:
        """Consult the replanner after one query's local step.

        Cheap no-op unless an operator completed since the previous call (an
        operator-completion barrier).  Returns the changes applied, already
        recorded in the query's history.
        """
        executor = handle.executor
        context = executor.context
        if not context.config.adaptive:
            return []
        query_id = context.query_id
        done_now = {id(op) for op in executor.operators() if op.is_done()}
        seen = self._seen_done.setdefault(query_id, set())
        newly_done = done_now - seen
        seen |= done_now
        if not newly_done:
            return []

        changes: list[PlanChange] = []
        now = context.clock.now
        for operator in list(executor.operators()):
            if not operator.is_done():
                # Redundancy recommendations shift while operators run (the
                # per-task rule applies them); recording is not gated on the
                # operator being swappable.
                redundancy = self._reconsider_redundancy(operator, context, now, query_id)
                if redundancy is not None:
                    changes.append(redundancy)
            if not _is_pending(operator):
                continue
            change = None
            if isinstance(operator, CrowdSortOperator):
                change = self._reconsider_sort(operator, executor, now, query_id)
            elif isinstance(operator, CrowdJoinOperator):
                change = self._reconsider_join(operator, executor, now, query_id)
            if change is not None:
                changes.append(change)
                # The swapped-out operator may be garbage collected and its
                # id() recycled by a later replacement; drop its baseline so
                # a recycled id can never inherit it.
                self._redundancy_seen.pop((query_id, id(operator)), None)
        if changes:
            self._history.setdefault(query_id, []).extend(changes)
        return changes

    # -- per-operator reconsideration -------------------------------------------------------

    def _reconsider_sort(
        self, operator: CrowdSortOperator, executor, now: float, query_id: str
    ) -> PlanChange | None:
        if not isinstance(operator.spec.response, ComparisonResponse):
            # A Rating response cannot run as comparisons (and vice versa the
            # response stays authoritative) — only Comparison tasks, which
            # degrade gracefully to per-item ratings, may switch interfaces.
            return None
        observed = _expected_rows(operator.children[0], self.statistics)
        planned = operator.planned_input_rows
        if not _misestimated(planned, observed, self.MISESTIMATE_FACTOR):
            return None
        assignments = executor.context.assignments_for(operator.spec)
        comparison = self.optimizer.cost_model.sort_cost_comparison(
            operator.spec,
            observed,
            assignments=assignments,
            comparisons_per_hit=operator.items_per_hit,
        )
        rating = self.optimizer.cost_model.sort_cost_rating(
            operator.spec,
            observed,
            assignments=assignments,
            ratings_per_hit=operator.items_per_hit,
        )
        current, alternative = (
            (comparison, rating)
            if operator.strategy is SortStrategy.COMPARISON
            else (rating, comparison)
        )
        if alternative.dollars >= current.dollars:
            return None
        new_strategy = (
            SortStrategy.RATING
            if operator.strategy is SortStrategy.COMPARISON
            else SortStrategy.COMPARISON
        )
        replacement = CrowdSortOperator(
            operator.spec,
            operator.output_schema,
            strategy=new_strategy,
            descending=operator.descending,
            items_per_hit=operator.items_per_hit,
            payload=operator.payload,
        )
        replacement.planned_input_rows = observed
        executor.replace_operator(operator, replacement)
        return PlanChange(
            time=now,
            query_id=query_id,
            kind="sort-strategy",
            operator=operator.spec.name,
            before=operator.strategy.value,
            after=new_strategy.value,
            reason=f"expected ~{planned:,.0f} rows, observing ~{observed:,.0f}",
            estimated_savings=current.dollars - alternative.dollars,
        )

    def _reconsider_join(
        self, operator: CrowdJoinOperator, executor, now: float, query_id: str
    ) -> PlanChange | None:
        if not isinstance(operator.spec.response, JoinColumnsResponse):
            return None  # yes/no join specs can only render pairwise
        n_left = _expected_rows(operator.children[0], self.statistics)
        n_right = _expected_rows(operator.children[1], self.statistics)
        if not (
            _misestimated(operator.planned_left_rows, n_left, self.MISESTIMATE_FACTOR)
            or _misestimated(operator.planned_right_rows, n_right, self.MISESTIMATE_FACTOR)
        ):
            return None
        assignments = executor.context.assignments_for(operator.spec)
        pairwise = self.optimizer.cost_model.join_cost_pairwise(
            operator.spec,
            n_left,
            n_right,
            assignments=assignments,
            pairs_per_hit=operator.pairs_per_hit,
        )
        columns = self.optimizer.cost_model.join_cost_columns(
            operator.spec,
            n_left,
            n_right,
            assignments=assignments,
            left_per_hit=operator.left_per_hit,
            right_per_hit=operator.right_per_hit,
        )
        current, alternative = (
            (pairwise, columns)
            if operator.strategy is JoinStrategy.PAIRWISE
            else (columns, pairwise)
        )
        if alternative.dollars >= current.dollars:
            return None
        new_strategy = (
            JoinStrategy.COLUMNS
            if operator.strategy is JoinStrategy.PAIRWISE
            else JoinStrategy.PAIRWISE
        )
        left_schema = operator.children[0].output_schema
        right_schema = operator.children[1].output_schema
        replacement = CrowdJoinOperator(
            operator.spec,
            left_schema,
            right_schema,
            strategy=new_strategy,
            pairs_per_hit=operator.pairs_per_hit,
            left_per_hit=operator.left_per_hit,
            right_per_hit=operator.right_per_hit,
            left_payload=operator.left_payload,
            right_payload=operator.right_payload,
            prefilter=operator.prefilter,
        )
        replacement.planned_left_rows = n_left
        replacement.planned_right_rows = n_right
        executor.replace_operator(operator, replacement)
        return PlanChange(
            time=now,
            query_id=query_id,
            kind="join-interface",
            operator=operator.spec.name,
            before=operator.strategy.value,
            after=new_strategy.value,
            reason=f"observing ~{n_left:,.0f} x ~{n_right:,.0f} input rows",
            estimated_savings=current.dollars - alternative.dollars,
        )

    def _reconsider_redundancy(
        self, operator: Operator, context, now: float, query_id: str
    ) -> PlanChange | None:
        spec = getattr(operator, "spec", None)
        if spec is None:
            return None
        recommended = context.assignments_for(spec)
        key = (query_id, id(operator))
        if key not in self._redundancy_seen:
            # First consultation establishes the baseline; only subsequent
            # shifts are changes worth recording.
            self._redundancy_seen[key] = recommended
            return None
        previous = self._redundancy_seen[key]
        self._redundancy_seen[key] = recommended
        if recommended == previous:
            return None
        # The per-task assignment rule applies the new redundancy on its own
        # (ExecutionContext.assignments_for); this entry records the shift so
        # the plan history explains the spend trajectory.
        reputation = self.optimizer.reputation
        if reputation is not None and not reputation.is_uniform():
            reason = "observed worker accuracy (gold probes) moved the majority-vote choice"
        else:
            reason = "observed worker agreement moved the majority-vote choice"
        return PlanChange(
            time=now,
            query_id=query_id,
            kind="redundancy",
            operator=spec.name,
            before=str(previous),
            after=str(recommended),
            reason=reason,
        )


# -- helpers ------------------------------------------------------------------------------


def _is_pending(operator: Operator) -> bool:
    """Whether an operator has not yet committed any work (swap-safe)."""
    return (
        not operator.is_done()
        and operator.metrics.tasks_created == 0
        and operator.metrics.rows_out == 0
    )


def _misestimated(planned: float | None, observed: float, factor: float) -> bool:
    if planned is None:
        return False
    low = max(min(planned, observed), 1e-9)
    high = max(planned, observed)
    return high / low >= factor


def _expected_rows(operator: Operator, statistics: StatisticsManager) -> float:
    """Rows ``operator`` will have emitted when it finishes, best estimate.

    Finished subtrees report their exact output; running subtrees blend the
    statistics manager's *observed* selectivities over the base cardinalities,
    which is what makes the replanner's estimates tighter than plan time.
    """
    if operator.is_done():
        return float(operator.metrics.rows_out)
    if isinstance(operator, ScanOperator):
        return float(len(operator.table))
    if isinstance(operator, CrowdFilterOperator):
        rows = _expected_rows(operator.children[0], statistics)
        selectivity = statistics.estimate_selectivity(operator.spec.name)
        if operator.negate:
            selectivity = 1.0 - selectivity
        return rows * selectivity
    if isinstance(operator, CrowdJoinOperator):
        n_left = _expected_rows(operator.children[0], statistics)
        n_right = _expected_rows(operator.children[1], statistics)
        selectivity = statistics.estimate_selectivity(
            operator.spec.name, prior=min(1.0 / max(n_right, 1.0), 1.0)
        )
        return max(n_left * n_right * selectivity, 0.0)
    if operator.children:
        return _expected_rows(operator.children[0], statistics)
    return float(operator.metrics.rows_out)
