"""Per-query monetary budgets.

The dashboard "displays the current budget and estimates for total query
cost" (Section 4.1), and the optimizer "must take into account monetary cost"
(Section 2).  The ledger is the single authority on how much each query may
still spend; the Task Manager asks it to authorise every HIT before posting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceededError

__all__ = ["QueryBudget", "BudgetLedger"]


@dataclass
class QueryBudget:
    """Budget state for one query."""

    query_id: str
    limit: float | None = None
    committed: float = 0.0

    @property
    def remaining(self) -> float | None:
        """Dollars left to commit, or None for unbudgeted queries."""
        if self.limit is None:
            return None
        return max(self.limit - self.committed, 0.0)

    def can_afford(self, amount: float) -> bool:
        """Whether ``amount`` more dollars may be committed."""
        if self.limit is None:
            return True
        return self.committed + amount <= self.limit + 1e-9

    def commit(self, amount: float) -> None:
        """Commit spend (called when a HIT is posted, not when it completes)."""
        self.committed += amount

    def release(self, amount: float) -> None:
        """Return committed-but-unspent dollars (an expired HIT's unfilled slots)."""
        self.committed = max(self.committed - amount, 0.0)


class BudgetLedger:
    """Tracks budgets and committed spend for every registered query."""

    def __init__(self) -> None:
        self._budgets: dict[str, QueryBudget] = {}
        # Optional durability journal (an EngineJournal); every commit and
        # release is an externally-visible money movement, so both are
        # logged when the engine is durable.
        self._journal = None

    def attach_journal(self, journal) -> None:
        self._journal = journal

    def register(self, query_id: str, limit: float | None) -> QueryBudget:
        """Register a query with an optional dollar budget."""
        budget = QueryBudget(query_id=query_id, limit=limit)
        self._budgets[query_id] = budget
        return budget

    def budget(self, query_id: str) -> QueryBudget:
        """Look up (or lazily create an unlimited) budget for a query."""
        return self._budgets.setdefault(query_id, QueryBudget(query_id=query_id))

    def authorize(self, query_id: str, amount: float, *, description: str = "") -> None:
        """Commit ``amount`` for a query or raise :class:`BudgetExceededError`."""
        budget = self.budget(query_id)
        if not budget.can_afford(amount):
            raise BudgetExceededError(
                f"query {query_id}: posting {description or 'work'} for ${amount:.2f} would "
                f"exceed the ${budget.limit:.2f} budget (already committed "
                f"${budget.committed:.2f})",
                spent=budget.committed,
                budget=budget.limit or 0.0,
            )
        budget.commit(amount)
        if self._journal is not None:
            self._journal.record(
                "budget_commit",
                {"query_id": query_id, "amount": amount, "description": description},
            )

    def release(self, query_id: str, amount: float) -> None:
        """Give back committed spend that will never be collected.

        A HIT that expires with unfilled assignment slots only pays for the
        submissions it actually received; the difference flows back here so
        fault re-posts do not double-bill the query.  Without this, every
        expiry would permanently consume budget the platform never charged
        and an expiry storm could push a well-budgeted query into
        ``BUDGET_EXCEEDED`` having spent almost nothing.
        """
        self.budget(query_id).release(amount)
        if self._journal is not None:
            self._journal.record(
                "budget_release", {"query_id": query_id, "amount": amount}
            )

    def would_exceed(self, query_id: str, amount: float) -> bool:
        """Whether committing ``amount`` would exceed the query's budget."""
        return not self.budget(query_id).can_afford(amount)

    def committed(self, query_id: str) -> float:
        """Dollars already committed for a query."""
        return self.budget(query_id).committed

    def remaining(self, query_id: str) -> float | None:
        """Dollars remaining for a query (None when unbudgeted)."""
        return self.budget(query_id).remaining

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "budgets": {
                query_id: {"limit": budget.limit, "committed": budget.committed}
                for query_id, budget in self._budgets.items()
            }
        }

    def load_state_dict(self, state: dict) -> None:
        self._budgets = {
            query_id: QueryBudget(
                query_id=query_id,
                limit=fields["limit"],
                committed=fields["committed"],
            )
            for query_id, fields in state["budgets"].items()
        }
