"""Query optimization: statistics, budgets, cost model and plan tuning."""

from repro.core.optimizer.adaptive import AdaptiveReplanner, PlanChange
from repro.core.optimizer.budget import BudgetLedger, QueryBudget
from repro.core.optimizer.statistics import (
    QueryStats,
    SpecStats,
    StatisticsManager,
    WorkerStats,
)

__all__ = [
    "AdaptiveReplanner",
    "PlanChange",
    "BudgetLedger",
    "QueryBudget",
    "StatisticsManager",
    "SpecStats",
    "WorkerStats",
    "QueryStats",
]
