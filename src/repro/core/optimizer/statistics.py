"""The Statistics Manager (Figure 1).

"The manager takes data from the Statistics Manager to determine the number
of HITs, HIT assignments, and the cost of each task" and "Query selectivities
for HIT-based operators are not known a priori", so they are measured online.
This module accumulates per-task-spec, per-worker and per-query statistics as
task results stream in, and exposes the estimators the optimizer and the
dashboard consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import with the task layer
    from repro.core.tasks.task import TaskResult

__all__ = [
    "SpecStats",
    "WorkerStats",
    "QueryStats",
    "StatisticsManager",
    "blend_selectivity",
]


#: Pseudo-count of prior observations in the selectivity blend, so early
#: estimates do not swing wildly on the first few answers (Section 2).
SELECTIVITY_PSEUDO_COUNT = 4.0


def blend_selectivity(stats: "SpecStats", prior: float) -> float:
    """Blend a selectivity prior with one spec's observed boolean answers.

    The single formula shared by plan-time costing (the optimizer's
    CostingPass works from cached snapshots) and runtime estimation
    (:meth:`StatisticsManager.estimate_selectivity`), so the two can never
    silently diverge.
    """
    pseudo = SELECTIVITY_PSEUDO_COUNT
    return (prior * pseudo + stats.boolean_true) / (pseudo + stats.boolean_total)


@dataclass
class SpecStats:
    """Online statistics for one task spec (one crowd UDF)."""

    tasks_completed: int = 0
    crowd_tasks: int = 0
    cache_hits: int = 0
    model_answers: int = 0
    hits_posted: int = 0
    assignments_received: int = 0
    total_cost: float = 0.0
    total_latency: float = 0.0
    total_agreement: float = 0.0
    boolean_true: int = 0
    boolean_total: int = 0

    @property
    def mean_latency(self) -> float:
        """Mean seconds from task submission to completion (crowd tasks)."""
        return self.total_latency / self.crowd_tasks if self.crowd_tasks else 0.0

    @property
    def mean_cost(self) -> float:
        """Mean dollars per crowd task."""
        return self.total_cost / self.crowd_tasks if self.crowd_tasks else 0.0

    @property
    def mean_agreement(self) -> float:
        """Mean worker agreement on the winning answer."""
        return self.total_agreement / self.crowd_tasks if self.crowd_tasks else 1.0

    @property
    def observed_selectivity(self) -> float | None:
        """Fraction of boolean answers that were True (None before any data)."""
        if not self.boolean_total:
            return None
        return self.boolean_true / self.boolean_total


@dataclass
class WorkerStats:
    """Per-worker quality statistics derived from agreement with the majority."""

    assignments: int = 0
    votes: int = 0
    votes_with_majority: int = 0

    @property
    def agreement_rate(self) -> float:
        """Fraction of this worker's votes that matched the reduced answer."""
        return self.votes_with_majority / self.votes if self.votes else 1.0


@dataclass
class QueryStats:
    """Per-query accounting used by the dashboard and budget enforcement."""

    query_id: str
    budget: float | None = None
    spent: float = 0.0
    hits_posted: int = 0
    tasks_submitted: int = 0
    tasks_completed: int = 0
    cache_hits: int = 0
    model_answers: int = 0
    results_emitted: int = 0
    started_at: float = 0.0
    finished_at: float | None = None
    dollars_saved_cache: float = 0.0
    dollars_saved_model: float = 0.0

    @property
    def remaining_budget(self) -> float | None:
        """Dollars of budget left (None when the query is unbudgeted)."""
        if self.budget is None:
            return None
        return max(self.budget - self.spent, 0.0)

    @property
    def elapsed(self) -> float:
        """Simulated seconds the query has been running (0 before completion data)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


class StatisticsManager:
    """Accumulates statistics from completed tasks and worker votes."""

    #: Selectivity assumed before any observations arrive (uniform prior).
    DEFAULT_SELECTIVITY_PRIOR = 0.5
    #: Latency assumed before any observations (the paper: "several minutes").
    DEFAULT_LATENCY_PRIOR = 300.0

    def __init__(self) -> None:
        self._specs: dict[str, SpecStats] = {}
        self._workers: dict[str, WorkerStats] = {}
        self._queries: dict[str, QueryStats] = {}

    # -- accessors ---------------------------------------------------------------

    def spec(self, name: str) -> SpecStats:
        """Statistics bucket for a task spec (created on first use)."""
        return self._specs.setdefault(name, SpecStats())

    def worker(self, worker_id: str) -> WorkerStats:
        """Statistics bucket for a worker (created on first use)."""
        return self._workers.setdefault(worker_id, WorkerStats())

    def query(self, query_id: str) -> QueryStats:
        """Statistics bucket for a query (created on first use)."""
        return self._queries.setdefault(query_id, QueryStats(query_id=query_id))

    def all_specs(self) -> dict[str, SpecStats]:
        return dict(self._specs)

    def all_queries(self) -> dict[str, QueryStats]:
        return dict(self._queries)

    def worker_weights(self) -> dict[str, float]:
        """Per-worker vote weights for :class:`~repro.core.answers.WeightedVote`."""
        return {worker_id: stats.agreement_rate for worker_id, stats in self._workers.items()}

    # -- recording -----------------------------------------------------------------

    def record_result(self, result: "TaskResult") -> None:
        """Fold one completed task into spec and query statistics."""
        from repro.core.tasks.task import ResultSource

        spec_stats = self.spec(result.task.spec.name)
        query_stats = self.query(result.task.query_id) if result.task.query_id else None

        spec_stats.tasks_completed += 1
        if query_stats is not None:
            query_stats.tasks_completed += 1

        if result.source is ResultSource.CROWD:
            spec_stats.crowd_tasks += 1
            spec_stats.assignments_received += len(result.answers)
            spec_stats.total_cost += result.cost
            spec_stats.total_latency += result.latency
            spec_stats.total_agreement += result.agreement
            if query_stats is not None:
                query_stats.spent += result.cost
        elif result.source is ResultSource.CACHE:
            spec_stats.cache_hits += 1
            if query_stats is not None:
                query_stats.cache_hits += 1
                # The Task Manager computed what this task would have spent
                # (assignment_cost x redundancy); the old mean-cost proxy
                # misattributed whatever the *stored* answer happened to cost.
                query_stats.dollars_saved_cache += result.avoided_cost
        elif result.source is ResultSource.MODEL:
            spec_stats.model_answers += 1
            if query_stats is not None:
                query_stats.model_answers += 1
                query_stats.dollars_saved_model += result.avoided_cost

        if isinstance(result.reduced, bool):
            spec_stats.boolean_total += 1
            spec_stats.boolean_true += int(result.reduced)

    def record_hit_posted(self, spec_name: str, query_ids: "str | Iterable[str]") -> None:
        """Record that a HIT was posted (spend is attributed via results).

        ``query_ids`` is one query id or an iterable of them — a HIT built by
        cross-query batching counts once for the spec but once *per
        participating query* in each query's own view.
        """
        self.spec(spec_name).hits_posted += 1
        if isinstance(query_ids, str):
            query_ids = (query_ids,) if query_ids else ()
        for query_id in query_ids:
            if query_id:
                self.query(query_id).hits_posted += 1

    def record_task_submitted(self, query_id: str) -> None:
        """Record that an operator handed a task to the Task Manager."""
        if query_id:
            self.query(query_id).tasks_submitted += 1

    def record_vote(self, worker_id: str, agreed_with_majority: bool) -> None:
        """Record one worker vote and whether it matched the reduced answer."""
        stats = self.worker(worker_id)
        stats.votes += 1
        stats.votes_with_majority += int(agreed_with_majority)

    def record_worker_assignment(self, worker_id: str) -> None:
        """Record that a worker submitted an assignment."""
        self.worker(worker_id).assignments += 1

    def record_result_emitted(self, query_id: str, count: int = 1) -> None:
        """Record rows emitted into a query's results table."""
        if query_id:
            self.query(query_id).results_emitted += count

    # -- durability -----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Every statistics bucket, as plain field dicts (all JSON scalars).

        Selectivity/latency/cost estimates feed the optimizer and the
        replanner, so a recovered engine must resume from the same
        observations or its plan choices (and fingerprints) would diverge.
        """
        from dataclasses import asdict

        return {
            "specs": {name: asdict(stats) for name, stats in self._specs.items()},
            "workers": {wid: asdict(stats) for wid, stats in self._workers.items()},
            "queries": {qid: asdict(stats) for qid, stats in self._queries.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self._specs = {name: SpecStats(**fields) for name, fields in state["specs"].items()}
        self._workers = {
            wid: WorkerStats(**fields) for wid, fields in state["workers"].items()
        }
        self._queries = {
            qid: QueryStats(**fields) for qid, fields in state["queries"].items()
        }

    # -- estimators -----------------------------------------------------------------

    def estimate_selectivity(self, spec_name: str, prior: float | None = None) -> float:
        """Selectivity estimate blending a prior with online observations.

        Uses a pseudo-count of prior observations so early estimates do not
        swing wildly on the first few answers (adaptive behaviour, Section 2).
        """
        prior = self.DEFAULT_SELECTIVITY_PRIOR if prior is None else prior
        return blend_selectivity(self.spec(spec_name), prior)

    def estimate_latency(self, spec_name: str) -> float:
        """Expected seconds for one crowd task of this spec."""
        stats = self.spec(spec_name)
        if stats.crowd_tasks:
            return stats.mean_latency
        return self.DEFAULT_LATENCY_PRIOR

    def estimate_cost_per_task(self, spec_name: str, fallback: float) -> float:
        """Expected dollars per task, falling back to a cost-model figure."""
        stats = self.spec(spec_name)
        if stats.crowd_tasks:
            return stats.mean_cost
        return fallback
