"""The Task Manager (Figure 1).

"The Task Manager maintains a global queue of tasks that have been enqueued
by all operators, and builds an internal representation of the HIT required
to fulfill a task.  The manager takes data from the Statistics Manager to
determine the number of HITs, HIT assignments, and the cost of each task...
As an optimization, the manager can batch several tasks into a single HIT."

Responsibilities implemented here:

* a global pending queue, grouped by (task spec, kind) **across queries** —
  one posted HIT may carry tasks enqueued by several concurrent queries,
  which is what makes the engine-level scheduler's cross-query batching pay
  off (fewer, fuller HITs under concurrent load);
* answer short-circuiting through the Task Cache and the learned Task Model;
* batching pending tasks into HITs via per-group batching policies;
* per-query budget authorisation before any HIT is posted: a shared HIT's
  cost is split across the participating queries in proportion to the tasks
  each contributed, and a query that cannot afford its share is dropped from
  the batch (and reported via :meth:`TaskManager.take_budget_errors`) without
  blocking the other queries;
* collecting submitted assignments, reducing answer lists with the spec's
  combiner, updating the Statistics Manager / Task Model / Task Cache, and
  delivering :class:`~repro.core.tasks.task.TaskResult` to operator callbacks
  — results route back to the submitting operator (and its query's
  statistics) via each task's ``query_id``, so attribution stays per-query
  even inside shared HITs.
"""

from __future__ import annotations

import itertools
import random
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.core.answers import (
    AnswerList,
    get_aggregate,
    weighted_confidence,
    weighted_counterpart,
)
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.batching import BatchingPolicy, FixedBatching, NoBatching
from repro.core.tasks.hit_compiler import CompiledHIT, HITCompiler
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import ResultSource, Task, TaskKind, TaskResult
from repro.core.tasks.task_cache import TaskCache
from repro.core.tasks.task_model import LearnedTaskModel, TaskModelRegistry
from repro.crowd.hit import HIT, Assignment
from repro.crowd.mturk import MTurkSimulator
from repro.crowd.quality import (
    DEFAULT_AGREEMENT_WEIGHT,
    GoldQuestion,
    GoldStandardPool,
    QualityConfig,
    WorkerReputation,
    agreement_signal,
)
from repro.errors import BudgetExceededError, TaskError

__all__ = ["TaskManagerStats", "TaskManager"]

GroupKey = tuple[str, str]  # (spec name, kind) — shared across queries


@dataclass
class TaskManagerStats:
    """Aggregate counters describing Task Manager activity."""

    tasks_submitted: int = 0
    tasks_completed: int = 0
    cache_answers: int = 0
    model_answers: int = 0
    hits_posted: int = 0
    #: HITs whose task batch mixed two or more queries (cross-query batching).
    cross_query_hits: int = 0
    hit_dollars_committed: float = 0.0
    #: Committed dollars released back when HITs expired with unfilled
    #: (never-paid) assignment slots.
    hit_dollars_refunded: float = 0.0
    tasks_dropped_over_budget: int = 0
    # Fault tolerance: tasks re-posted after their HIT expired, and tasks
    # abandoned after exhausting their attempt cap (owning query -> STALLED).
    tasks_requeued: int = 0
    tasks_exhausted: int = 0
    # Quality control: additional redundancy waves posted, tasks finalized
    # below their full redundancy target, and gold-probe activity.
    wave_continuations: int = 0
    early_stopped_tasks: int = 0
    #: Tasks delivered below their redundancy target because the attempt cap
    #: was spent — the salvaged (already paid-for) answers are used rather
    #: than discarded.
    tasks_degraded: int = 0
    gold_probes_posted: int = 0
    gold_answers_scored: int = 0
    #: HIT waves shrunk (and finalizations taken early) because the owning
    #: query was marked under deadline/budget pressure by the scheduler.
    pressure_waves: int = 0


@dataclass
class _InflightHIT:
    """Bookkeeping for a HIT that has been posted but not fully submitted."""

    compiled: CompiledHIT
    posted_at: float
    cost_committed: float
    processed: bool = False
    #: Assignments actually requested per task in this HIT (None -> each
    #: task's full redundancy, the legacy single-shot behaviour).
    needs: dict[str, int] | None = None
    #: Per-query budget shares authorised for this HIT (for refunds when the
    #: HIT expires with unfilled — and therefore unpaid — assignment slots).
    shares: dict[str, float] = field(default_factory=dict)


@dataclass
class _TaskProgress:
    """Answers accumulated for one task across waves and re-posted HITs."""

    task: Task
    target: int
    answers: list = field(default_factory=list)
    workers: list[str] = field(default_factory=list)
    cost: float = 0.0
    #: Fault re-posts consumed (wave continuations do not count).
    attempts: int = 0

    @property
    def received(self) -> int:
        return len(self.answers)


class TaskManager:
    """Global queue of crowd tasks and the machinery that fulfils them."""

    def __init__(
        self,
        platform: MTurkSimulator,
        statistics: StatisticsManager,
        budget: BudgetLedger,
        *,
        cache: TaskCache | None = None,
        models: TaskModelRegistry | None = None,
        compiler: HITCompiler | None = None,
        default_batching: BatchingPolicy | None = None,
        quality: QualityConfig | None = None,
        reputation: WorkerReputation | None = None,
        gold: GoldStandardPool | None = None,
        max_attempts: int | None = None,
        breaker=None,
    ) -> None:
        self.platform = platform
        self.statistics = statistics
        self.budget = budget
        #: Optional :class:`~repro.crowd.breaker.MarketplaceCircuitBreaker`
        #: guarding the posting choke point (None = always post).
        self.breaker = breaker
        self.cache = cache if cache is not None else TaskCache()
        self.models = models if models is not None else TaskModelRegistry()
        self.compiler = compiler if compiler is not None else HITCompiler()
        self.default_batching = default_batching if default_batching is not None else NoBatching()
        self.quality = quality
        self.reputation = reputation
        self.gold = gold
        # An explicit constructor argument wins; otherwise the quality
        # config's cap, then the default.
        if max_attempts is not None:
            self.max_attempts = max_attempts
        elif quality is not None:
            self.max_attempts = quality.max_attempts
        else:
            self.max_attempts = 3
        self.stats = TaskManagerStats()
        self._pending: dict[GroupKey, deque[Task]] = {}
        # Incremental pending-queue bookkeeping, so the per-pass flush and
        # the scheduler's introspection calls touch only what changed:
        # ``_dirty`` holds the groups that gained tasks since their last
        # flush visit (a visited group's residue cannot become flushable
        # until another task arrives); ``_group_order`` stamps each live
        # group with its creation sequence so a dirty subset still flushes
        # in the exact order a full ``_pending`` iteration would have.
        self._dirty: set[GroupKey] = set()
        self._group_order: dict[GroupKey, int] = {}
        self._group_seq = itertools.count()
        self._pending_total = 0
        self._pending_by_query: Counter = Counter()
        # Groups that (may) hold a query's tasks — lazily pruned, so
        # cancellation scans only the queues the query actually used.
        self._pending_groups_by_query: dict[str, set[GroupKey]] = {}
        self._policies: dict[tuple[str, str], BatchingPolicy] = {}
        self._inflight: dict[str, _InflightHIT] = {}
        # In-flight HITs indexed by (spec, kind) group and by participating
        # query, for salvage / cancellation / introspection paths.
        self._inflight_by_group: dict[GroupKey, set[str]] = {}
        self._inflight_by_query: dict[str, set[str]] = {}
        self._progress: dict[str, _TaskProgress] = {}
        self._submitted_at: dict[str, float] = {}
        self._budget_errors: dict[str, BudgetExceededError] = {}
        self._exhausted_errors: dict[str, TaskError] = {}
        self._cancelled_queries: set[str] = set()
        #: Queries the scheduler marked as under deadline/budget pressure:
        #: their waves shrink to one assignment, any received answer
        #: finalizes, and fault re-posts stop after a single attempt.
        self._pressured: set[str] = set()
        self._delivery_listeners: list = []
        self._error_listeners: list = []
        self._quality_rng = random.Random(quality.seed) if quality is not None else None
        # Optional durability journal (an EngineJournal) recording the
        # externally-visible lifecycle events: HIT posts, settlements and
        # answer deliveries.
        self._journal = None
        platform.on_assignment_submitted(self._on_assignment_submitted)
        platform.on_hit_expired(self._on_hit_expired)

    def attach_journal(self, journal) -> None:
        self._journal = journal

    # -- configuration -------------------------------------------------------------

    def set_batching_policy(self, spec_name: str, kind: TaskKind, policy: BatchingPolicy) -> None:
        """Choose how tasks of one (spec, kind) group are batched into HITs."""
        self._policies[(spec_name, kind.value)] = policy

    def policy_for(self, spec: TaskSpec, kind: TaskKind) -> BatchingPolicy:
        """The batching policy in force for a (spec, kind) group."""
        explicit = self._policies.get((spec.name, kind.value))
        if explicit is not None:
            return explicit
        if spec.batch_size > 1 and kind is not TaskKind.JOIN_BLOCK:
            policy = FixedBatching(spec.batch_size)
            self._policies[(spec.name, kind.value)] = policy
            return policy
        return self.default_batching

    # -- submission ----------------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Accept a task from an operator.

        The task may be answered immediately (cache or model) — in which case
        its callback runs synchronously — or queued for the next HIT batch.
        """
        self.stats.tasks_submitted += 1
        self.statistics.record_task_submitted(task.query_id)
        now = self.platform.clock.now
        self._submitted_at[task.task_id] = now

        cached = self.cache.lookup(task.spec.name, task.cache_key, now=now)
        if cached is not None:
            # The savings are what *this* task would have spent on the
            # crowd — reward + fee, times its redundancy — mirroring the
            # model path's attribution, not the stored answer's own cost.
            avoided = self.platform.pricing.assignment_cost(task.price) * task.assignments
            self.cache.credit_savings(avoided)
            self.stats.cache_answers += 1
            self._submitted_at.pop(task.task_id, None)
            self._deliver(
                TaskResult(
                    task=task,
                    answers=AnswerList.of(()),
                    reduced=cached.reduced,
                    source=ResultSource.CACHE,
                    avoided_cost=avoided,
                )
            )
            return

        model = self.models.model_for(task.spec.name)
        if model is not None and task.kind in (TaskKind.FILTER, TaskKind.JOIN_PAIR):
            prediction = model.predict(task)
            if prediction is not None:
                answer, confidence = prediction
                avoided = self.platform.pricing.assignment_cost(task.price) * task.assignments
                if isinstance(model, LearnedTaskModel):
                    model.record_savings(avoided)
                self.stats.model_answers += 1
                # Cache the escalated answer (at zero cost) so identical
                # follow-up tasks hit the cache instead of re-running
                # predict, and the answer survives restarts via the tier.
                self.cache.store(
                    task.spec.name,
                    task.cache_key,
                    answer,
                    cost=0.0,
                    now=now,
                    confidence=confidence,
                )
                self._submitted_at.pop(task.task_id, None)
                self._deliver(
                    TaskResult(
                        task=task,
                        answers=AnswerList.of(()),
                        reduced=answer,
                        source=ResultSource.MODEL,
                        avoided_cost=avoided,
                    )
                )
                return

        self._push_pending(task)

    # -- pending-queue bookkeeping ------------------------------------------------------

    def _push_pending(self, task: Task) -> None:
        """Queue a task for the next HIT batch, keeping every index current."""
        key: GroupKey = (task.spec.name, task.kind.value)
        queue = self._pending.get(key)
        if queue is None:
            queue = self._pending[key] = deque()
            self._group_order[key] = next(self._group_seq)
        queue.append(task)
        self._dirty.add(key)
        self._pending_total += 1
        self._pending_by_query[task.query_id] += 1
        self._pending_groups_by_query.setdefault(task.query_id, set()).add(key)

    def _pop_pending(self, key: GroupKey) -> Task:
        task = self._pending[key].popleft()
        self._pending_total -= 1
        self._pending_by_query[task.query_id] -= 1
        return task

    def _drop_group(self, key: GroupKey) -> None:
        """Forget an emptied pending group (its order stamp included)."""
        del self._pending[key]
        del self._group_order[key]
        self._dirty.discard(key)

    # -- flushing pending tasks into HITs ----------------------------------------------

    def flush(self, *, force: bool = False, raise_on_budget: bool = True) -> int:
        """Turn pending tasks into HITs.  Returns the number of HITs posted.

        ``force`` flushes partially filled batches; the driver (the engine
        scheduler, or a standalone executor) forces a flush once no query can
        make local progress.

        ``raise_on_budget`` controls how a failed budget authorisation
        surfaces: when True (the legacy/standalone behaviour) a batch whose
        tasks all belong to one query raises :class:`BudgetExceededError`;
        when False every failure is recorded per-query and retrievable via
        :meth:`take_budget_errors`, so one exhausted query never aborts a
        flush serving its neighbours.  Batches mixing several queries never
        raise — the unaffordable query's tasks are dropped and the HIT is
        posted for the remaining queries.
        """
        posted = 0
        if force:
            # A forced flush drains every group, so iterating them all is
            # O(work posted), not wasted scanning.
            keys = list(self._pending)
        elif self._dirty:
            # Only groups that gained tasks since their last visit can have
            # become flushable; order by creation stamp so the subset posts
            # in exactly the order a full `_pending` iteration would.
            keys = sorted(self._dirty, key=self._group_order.__getitem__)
        else:
            return 0
        for key in keys:
            self._dirty.discard(key)
            queue = self._pending.get(key)
            if not queue:
                continue
            spec = queue[0].spec
            kind = queue[0].kind
            policy = self.policy_for(spec, kind)
            while queue and policy.should_flush(len(queue), force=force):
                if self.breaker is not None and not self.breaker.allow_posting():
                    # The marketplace breaker is open (or out of half-open
                    # probes): stop posting, leave everything queued, and
                    # re-mark the group dirty so the next flush retries it.
                    self.breaker.record_blocked()
                    self._dirty.add(key)
                    return posted
                size = min(policy.batch_size(len(queue)), len(queue))
                batch = [self._pop_pending(key) for _ in range(size)]
                posted += self._post_batch(batch, raise_on_budget=raise_on_budget)
            if not queue:
                self._drop_group(key)
        return posted

    def _post_batch(self, batch: list[Task], *, raise_on_budget: bool = True) -> int:
        if not batch:
            raise TaskError("cannot post an empty batch")
        if batch[0].kind is TaskKind.JOIN_BLOCK:
            posted = 0
            for task in batch:
                posted += self._post_tasks(
                    [task], raise_on_budget=raise_on_budget, needs=self._batch_needs([task])
                )
            return posted
        needs = self._batch_needs(batch)
        if needs is None:
            # Single-shot posting (the default): the whole batch shares one
            # HIT whose redundancy is the batch maximum, exactly as before
            # quality control existed.
            return self._post_tasks(batch, raise_on_budget=raise_on_budget, needs=None)
        # Wave mode (or a fault re-post of partially answered tasks): tasks
        # requesting different assignment counts must not share a HIT — every
        # assignment answers the whole HIT, so a mixed batch would overshoot
        # the smaller requests.  Group by requested count instead.
        posted = 0
        groups: dict[int, list[Task]] = {}
        for task in batch:
            groups.setdefault(needs[task.task_id], []).append(task)
        for _need, group in sorted(groups.items()):
            posted += self._post_tasks(
                group,
                raise_on_budget=raise_on_budget,
                needs={task.task_id: needs[task.task_id] for task in group},
            )
        return posted

    def _batch_needs(self, batch: list[Task]) -> dict[str, int] | None:
        """Per-task assignment requests for a batch, or None for single-shot.

        None means every task wants its full redundancy in one HIT — the
        legacy path, where cost attribution also runs on full redundancy.
        Computed once per batch and passed down to :meth:`_post_tasks`, so
        the grouping decision and the posted HIT can never disagree.
        """
        needs = {task.task_id: self._needed_assignments(task) for task in batch}
        if all(needs[task.task_id] == task.assignments for task in batch):
            return None
        return needs

    # -- adaptive redundancy (waves) --------------------------------------------------

    def _needed_assignments(self, task: Task) -> int:
        """How many assignments the next HIT should request for ``task``.

        Missing answers only (a re-posted task does not re-buy the answers it
        already holds); capped at one wave when adaptive redundancy is on.
        With no accumulated progress and no quality control this is exactly
        the task's full redundancy — the legacy behaviour.
        """
        progress = self._progress.get(task.task_id)
        received = progress.received if progress is not None else 0
        remaining = max(task.assignments - received, 1)
        if task.query_id in self._pressured:
            # Under deadline/budget pressure redundancy is shed entirely:
            # one assignment per wave, and any received answer finalizes
            # (see :meth:`_should_finalize`) instead of buying more votes.
            self.stats.pressure_waves += 1
            return 1
        if self.quality is not None and self.quality.adaptive_redundancy:
            return min(self.quality.wave_size, remaining)
        return remaining

    def _cost_shares(
        self, tasks: list[Task], needs: dict[str, int] | None = None
    ) -> tuple[float, float, float, dict[str, float]]:
        """Reward, assignments, total cost and each query's share for a batch.

        Every assignment answers the whole HIT, so the reward and redundancy
        of the posted HIT are the maxima over the batch; the committed cost is
        split across queries in proportion to each task's *own* intrinsic
        cost (price x redundancy), not the batch maxima — a query batching
        cheap low-redundancy tasks next to an expensive neighbour must not be
        billed at the neighbour's rate.  ``needs`` substitutes the wave /
        re-post assignment counts for the tasks' full redundancy.
        """
        reward = max(task.price for task in tasks)
        assignments = max(self._task_need(task, needs) for task in tasks)
        cost = self.platform.pricing.assignment_cost(reward) * assignments
        weights: Counter = Counter()
        for task in tasks:
            weights[task.query_id] += task.price * self._task_need(task, needs)
        total_weight = sum(weights.values())
        shares = {qid: cost * weight / total_weight for qid, weight in weights.items()}
        return reward, assignments, cost, shares

    @staticmethod
    def _task_need(task: Task, needs: dict[str, int] | None) -> int:
        if needs is None:
            return task.assignments
        return needs.get(task.task_id, task.assignments)

    def _pick_gold(self, tasks: list[Task]) -> tuple[GoldQuestion, ...]:
        """Choose the gold probes riding on the next HIT (usually none)."""
        if (
            self._quality_rng is None
            or self.gold is None
            or self.quality is None
            or self.quality.gold_frequency <= 0.0
            or tasks[0].kind is TaskKind.JOIN_BLOCK
        ):
            return ()
        if self._quality_rng.random() >= self.quality.gold_frequency:
            return ()
        question = self.gold.pick(tasks[0].spec.name, self._quality_rng)
        if question is None:
            return ()
        self.stats.gold_probes_posted += 1
        return (question,)

    def _post_tasks(
        self, tasks: list[Task], *, raise_on_budget: bool, needs: dict[str, int] | None
    ) -> int:
        """Authorise, compile and post one batch.  Returns HITs posted (0/1).

        ``needs`` comes from :meth:`_batch_needs` (None = legacy single-shot
        HIT with attribution by full redundancy).
        """
        if self.breaker is not None and not self.breaker.allow_posting():
            # A multi-HIT batch (join blocks, mixed wave sizes) can exhaust
            # the half-open probe budget mid-batch; the remainder goes back
            # on the pending queue rather than slipping past the breaker.
            self.breaker.record_blocked()
            for task in tasks:
                self._push_pending(task)
            return 0
        single_query_batch = len({task.query_id for task in tasks}) == 1
        # Dropping an unaffordable query shifts its slice of the (fixed) HIT
        # cost onto the survivors, so re-check affordability to a fixed point
        # before authorising anything — authorize below must never raise.
        while True:
            reward, assignments, cost, shares = self._cost_shares(tasks, needs)
            unaffordable: set[str] = set()
            for query_id in shares:
                if not self.budget.would_exceed(query_id, shares[query_id]):
                    continue
                budget = self.budget.budget(query_id)
                error = BudgetExceededError(
                    f"query {query_id}: posting a {tasks[0].spec.name} HIT share of "
                    f"${shares[query_id]:.2f} would exceed the ${budget.limit or 0.0:.2f} "
                    f"budget (already committed ${budget.committed:.2f})",
                    spent=budget.committed,
                    budget=budget.limit or 0.0,
                    query_id=query_id,
                )
                if raise_on_budget and single_query_batch:
                    # The batch was already popped from the pending queue and
                    # never comes back — reap its bookkeeping like the drop
                    # path below does, or the stamps leak forever.
                    for task in tasks:
                        self._progress.pop(task.task_id, None)
                        self._submitted_at.pop(task.task_id, None)
                    raise error
                unaffordable.add(query_id)
                self._budget_errors[query_id] = error
                self._notify_error_recorded()
            if not unaffordable:
                break
            dropped = [task for task in tasks if task.query_id in unaffordable]
            self.stats.tasks_dropped_over_budget += len(dropped)
            for task in dropped:
                # A dropped task leaves the pipeline for good (its query is
                # headed for BUDGET_EXCEEDED); reap any accumulated wave
                # progress so a long-lived engine does not leak it.
                self._progress.pop(task.task_id, None)
                self._submitted_at.pop(task.task_id, None)
            tasks = [task for task in tasks if task.query_id not in unaffordable]
            if not tasks:
                return 0
        spec_name = tasks[0].spec.name
        for query_id in shares:
            self.budget.authorize(query_id, shares[query_id], description=f"HIT for {spec_name}")
        # A re-posted (wave / fault) batch bars the workers who already
        # answered any of its tasks — redundancy assumes independent
        # judgements, so one worker must not vote twice on one task.
        excluded: frozenset[str] = frozenset()
        if needs is not None:
            prior_workers: set[str] = set()
            for task in tasks:
                progress = self._progress.get(task.task_id)
                if progress is not None:
                    prior_workers.update(progress.workers)
            excluded = frozenset(prior_workers)
        gold = self._pick_gold(tasks)
        gold_position = None
        if gold and self._quality_rng is not None:
            # Mix the probe in at a seeded-random position — parked at the
            # end it would grade fatigue-prone workers at their worst and
            # bias reputations downward.
            gold_position = self._quality_rng.randrange(len(tasks) + 1)
        compiled = self.compiler.compile(tasks, gold=gold, gold_position=gold_position)
        hit = self.platform.create_hit(
            compiled.content,
            reward=reward,
            max_assignments=assignments,
            requester_annotation=spec_name,
            excluded_workers=excluded,
        )
        self.stats.hits_posted += 1
        if self.breaker is not None:
            self.breaker.record_post()
        if len(shares) > 1:
            self.stats.cross_query_hits += 1
        self.stats.hit_dollars_committed += cost
        self.statistics.record_hit_posted(spec_name, compiled.query_ids())
        self._inflight[hit.hit_id] = _InflightHIT(
            compiled=compiled,
            posted_at=self.platform.clock.now,
            cost_committed=cost,
            needs=needs,
            shares=dict(shares),
        )
        group: GroupKey = (spec_name, tasks[0].kind.value)
        self._inflight_by_group.setdefault(group, set()).add(hit.hit_id)
        for query_id in shares:
            self._inflight_by_query.setdefault(query_id, set()).add(hit.hit_id)
        if self._journal is not None:
            self._journal.record(
                "hit_posted",
                {
                    "hit_id": hit.hit_id,
                    "spec": spec_name,
                    "tasks": len(tasks),
                    "cost": cost,
                    "shares": dict(shares),
                },
            )
        return 1

    def _forget_inflight(self, hit_id: str, inflight: _InflightHIT) -> None:
        """Drop a settled HIT from the in-flight dict and both its indexes."""
        self._inflight.pop(hit_id, None)
        tasks = inflight.compiled.tasks
        if tasks:
            group: GroupKey = (tasks[0].spec.name, tasks[0].kind.value)
            hits = self._inflight_by_group.get(group)
            if hits is not None:
                hits.discard(hit_id)
                if not hits:
                    del self._inflight_by_group[group]
        for query_id in inflight.shares:
            hits = self._inflight_by_query.get(query_id)
            if hits is not None:
                hits.discard(hit_id)
                if not hits:
                    del self._inflight_by_query[query_id]

    # -- completion handling ---------------------------------------------------------

    def _on_assignment_submitted(self, hit: HIT, assignment: Assignment) -> None:
        inflight = self._inflight.get(hit.hit_id)
        if inflight is None or inflight.processed:
            return
        self.statistics.record_worker_assignment(assignment.worker_id)
        if hit.is_fully_submitted:
            inflight.processed = True
            self._process_completed_hit(hit, inflight)
            self._forget_inflight(hit.hit_id, inflight)

    def _process_completed_hit(self, hit: HIT, inflight: _InflightHIT) -> None:
        self._settle_hit(hit, inflight, expired=False)

    def _settle_hit(self, hit: HIT, inflight: _InflightHIT, *, expired: bool) -> None:
        """Fold one finished-or-expired HIT into task progress and act on it.

        The single orchestration shared by the completion and expiry paths:
        score gold probes, merge submissions (and actual spend) into each
        task's progress, then finalize / requeue per task.  The only policy
        difference is what a shortfall means: on an expired HIT (or a task
        every worker skipped) the re-post burns a fault attempt; on a
        completed HIT it is a planned wave continuation.
        """
        submissions = hit.submitted_assignments
        if self._journal is not None:
            self._journal.record(
                "hit_settled",
                {
                    "hit_id": hit.hit_id,
                    "expired": expired,
                    "submissions": len(submissions),
                },
            )
        if self.breaker is not None:
            # Breaker feedback: an expiry is a fault-driven failure, a fully
            # submitted HIT is proof the market is serving.
            if expired:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        if expired:
            self._refund_unfilled_slots(hit, inflight, submissions)
        self._score_gold(inflight.compiled, submissions)
        self._merge_answers(hit, inflight, submissions)
        now = self.platform.clock.now
        for task in inflight.compiled.tasks:
            progress = self._progress.get(task.task_id)
            if progress is None:
                continue
            if progress.received > 0 and self._should_finalize(progress):
                self._finalize(task, progress, hit.hit_id, inflight.posted_at, now)
            elif expired or progress.received == 0:
                # A fault: the HIT expired short, or every worker skipped
                # this item.  Re-post (burning an attempt) instead of
                # silently stranding the query — unless the attempt cap is
                # spent and salvaged answers exist, in which case the
                # paid-for answers become a degraded (below-target) result
                # rather than being thrown away with the query stalled.
                if progress.attempts >= self.max_attempts and progress.received > 0:
                    self.stats.tasks_degraded += 1
                    self._finalize(
                        task, progress, hit.hit_id, inflight.posted_at, now, degraded=True
                    )
                else:
                    self._requeue(task, count_attempt=True)
            else:
                # Confidence not yet reached: buy another redundancy wave.
                self.stats.wave_continuations += 1
                self._requeue(task, count_attempt=False)

    def _merge_answers(
        self, hit: HIT, inflight: _InflightHIT, submissions: list[Assignment]
    ) -> None:
        """Fold one HIT's submissions and actual spend into task progress.

        Spend is attributed the same way commitments were authorised: in
        proportion to each task's intrinsic cost (price x the assignments
        this HIT requested for it).
        """
        compiled = inflight.compiled
        per_task_answers: dict[str, list] = {task.task_id: [] for task in compiled.tasks}
        per_task_workers: dict[str, list[str]] = {task.task_id: [] for task in compiled.tasks}
        for assignment in submissions:
            extracted = compiled.extract_answers(assignment)
            for task_id, answer in extracted.items():
                per_task_answers[task_id].append(answer)
                per_task_workers[task_id].append(assignment.worker_id)

        actual_cost = self.platform.pricing.assignment_cost(hit.reward) * len(submissions)
        total_weight = (
            sum(task.price * self._task_need(task, inflight.needs) for task in compiled.tasks)
            or 1.0
        )
        for task in compiled.tasks:
            progress = self._progress.get(task.task_id)
            if progress is None:
                progress = _TaskProgress(task=task, target=task.assignments)
                self._progress[task.task_id] = progress
            progress.answers.extend(per_task_answers[task.task_id])
            progress.workers.extend(per_task_workers[task.task_id])
            progress.cost += (
                actual_cost * task.price * self._task_need(task, inflight.needs) / total_weight
            )

    def _should_finalize(self, progress: _TaskProgress) -> bool:
        """Whether a task's accumulated answers are enough to deliver."""
        if progress.received >= progress.target:
            return True
        if progress.task.query_id in self._pressured:
            # Pressure mode: the first answer is good enough — finishing
            # before the deadline beats finishing with full redundancy.
            return progress.received > 0
        if self.quality is None or not self.quality.adaptive_redundancy:
            return False
        if progress.received < min(self.quality.wave_size, progress.target):
            return False
        answers = AnswerList.of(progress.answers, progress.workers)
        weights = self._vote_weights(answers) or {}
        return weighted_confidence(answers, weights) >= self.quality.confidence_threshold

    def _finalize(
        self,
        task: Task,
        progress: _TaskProgress,
        hit_id: str,
        posted_at: float,
        now: float,
        *,
        degraded: bool = False,
    ) -> None:
        """Reduce a task's accumulated answers and deliver its result."""
        answers = AnswerList.of(progress.answers, progress.workers)
        reduced = self._reduce(task, answers)
        self._record_votes(answers, reduced)
        if progress.received < progress.target and not degraded:
            self.stats.early_stopped_tasks += 1
        latency = now - self._submitted_at.pop(task.task_id, posted_at)
        result = TaskResult(
            task=task,
            answers=answers,
            reduced=reduced,
            source=ResultSource.CROWD,
            cost=progress.cost,
            latency=latency,
            hit_id=hit_id,
        )
        self.cache.store(
            task.spec.name,
            task.cache_key,
            reduced,
            cost=progress.cost,
            now=now,
            confidence=self._answer_confidence(progress),
        )
        model = self.models.model_for(task.spec.name)
        if model is not None and task.kind in (TaskKind.FILTER, TaskKind.JOIN_PAIR):
            model.observe(task, reduced)
        del self._progress[task.task_id]
        self._deliver(result)

    def _requeue(self, task: Task, *, count_attempt: bool) -> None:
        """Put a task back on the pending queue for another HIT.

        ``count_attempt`` marks fault re-posts (expired / unanswered HITs);
        once a task burns through :attr:`max_attempts` of those it is
        abandoned and the owning query surfaces ``STALLED`` via
        :meth:`take_exhausted_errors` instead of hanging forever.
        """
        if task.query_id in self._cancelled_queries:
            # The owning query is already over (completed, stalled or out of
            # budget); posting fresh HITs for it would spend money nobody is
            # waiting on — and deliver into closed operators.
            self._progress.pop(task.task_id, None)
            self._submitted_at.pop(task.task_id, None)
            return
        progress = self._progress.get(task.task_id)
        if progress is None:
            progress = _TaskProgress(task=task, target=task.assignments)
            self._progress[task.task_id] = progress
        if count_attempt:
            progress.attempts += 1
            # Pressure mode lowers the fault re-post cap to a single attempt:
            # hammering a degraded market cannot beat the deadline anyway.
            cap = 1 if task.query_id in self._pressured else self.max_attempts
            if progress.attempts > cap:
                self.stats.tasks_exhausted += 1
                del self._progress[task.task_id]
                self._submitted_at.pop(task.task_id, None)
                error = TaskError(
                    f"task {task.task_id} ({task.spec.name}) abandoned after "
                    f"{progress.attempts} failed HIT attempts "
                    f"({progress.received} answer(s) collected)"
                )
                if task.query_id:
                    self._exhausted_errors.setdefault(task.query_id, error)
                    self._notify_error_recorded()
                return
            self.stats.tasks_requeued += 1
        self._push_pending(task)

    # -- quality control --------------------------------------------------------------

    def _score_gold(self, compiled: CompiledHIT, submissions: list[Assignment]) -> None:
        """Grade each worker's gold-probe answers against the known truth."""
        if self.reputation is None or not compiled.gold_items:
            return
        for assignment in submissions:
            for item_id, question in compiled.gold_items.items():
                if item_id not in assignment.answers:
                    continue
                correct = question.matches(assignment.answers[item_id])
                self.reputation.record_gold(assignment.worker_id, correct)
                self.stats.gold_answers_scored += 1

    def _vote_weights(self, answers: AnswerList) -> dict[str, float] | None:
        """Reputation vote weights for an answer list (None -> plain voting)."""
        if (
            self.reputation is None
            or self.quality is None
            or not self.quality.weighted_voting
            or not answers.worker_ids
            or self.reputation.is_uniform(answers.worker_ids)
        ):
            return None
        return self.reputation.vote_weights(answers.worker_ids)

    def _answer_confidence(self, progress: _TaskProgress) -> float:
        """Aggregate trust in a finalized answer, for cache admission.

        The mean posterior accuracy (Beta posterior mean, prior included) of
        the workers whose answers were reduced — the ``crowd/quality``
        reputations the admission policy gates on.  Without a reputation
        tracker every answer is fully trusted (legacy behaviour).
        """
        if self.reputation is None or not progress.workers:
            return 1.0
        total = sum(self.reputation.accuracy(worker) for worker in progress.workers)
        return total / len(progress.workers)

    def _reduce(self, task: Task, answers: AnswerList):
        weights = self._vote_weights(answers)
        if task.kind is TaskKind.JOIN_BLOCK:
            return self._majority_pairs(answers, weights)
        if weights is not None:
            weighted = weighted_counterpart(task.spec.combiner, weights)
            if weighted is not None:
                return weighted(answers)
        combiner = get_aggregate(task.spec.combiner)
        return combiner(answers)

    @staticmethod
    def _majority_pairs(
        answers: AnswerList, weights: dict[str, float] | None = None
    ) -> list[tuple[int, int]]:
        """Keep the (left, right) pairs reported by a (weighted) majority."""
        if weights is not None and answers.worker_ids:
            per_answer = [weights.get(worker_id, 1.0) for worker_id in answers.worker_ids]
        else:
            per_answer = [1.0] * len(answers)
        counts: Counter = Counter()
        for answer, weight in zip(answers.answers, per_answer):
            for pair in answer:
                counts[tuple(pair)] += weight
        threshold = sum(per_answer) / 2.0
        return sorted(pair for pair, votes in counts.items() if votes > threshold)

    def _record_votes(self, answers: AnswerList, reduced) -> None:
        if not answers.worker_ids:
            return
        agreement_weight = (
            self.quality.agreement_weight
            if self.quality is not None
            else DEFAULT_AGREEMENT_WEIGHT
        )
        for answer, worker_id in zip(answers.answers, answers.worker_ids):
            self.statistics.record_vote(worker_id, answer == reduced)
            if self.reputation is None:
                continue
            agreed = agreement_signal(answer, reduced)
            if agreed is not None:
                self.reputation.record_agreement(worker_id, agreed, weight=agreement_weight)

    def on_result_delivered(self, callback) -> None:
        """Register a callback fired after every task result delivery.

        The supported observation point for tooling (the chaos harness uses
        it to assert each task is delivered exactly once, the engine
        scheduler to wake the owning query); fired for cache, model and
        crowd results alike, after the task's own callback ran.
        """
        self._delivery_listeners.append(callback)

    def on_error_recorded(self, callback) -> None:
        """Register a callback fired when a budget/exhaustion error lands.

        This is the event-push half of the error plumbing: instead of
        sweeping :meth:`take_budget_errors` / :meth:`take_exhausted_errors`
        after every flush and clock advance, the engine scheduler registers
        here and only drains the queues when something was actually
        recorded.  The callback takes no arguments and must not mutate the
        Task Manager — errors may be recorded mid-flush.
        """
        self._error_listeners.append(callback)

    def _notify_error_recorded(self) -> None:
        for listener in self._error_listeners:
            listener()

    def _deliver(self, result: TaskResult) -> None:
        self.stats.tasks_completed += 1
        self.statistics.record_result(result)
        if self._journal is not None:
            self._journal.record(
                "answer_delivered",
                {
                    "task_id": result.task.task_id,
                    "query_id": result.task.query_id,
                    "source": result.source.value,
                },
            )
        result.task.callback(result)
        for listener in self._delivery_listeners:
            listener(result)

    # -- fault tolerance --------------------------------------------------------------

    def _on_hit_expired(self, hit: HIT) -> None:
        """An in-flight HIT hit its deadline: salvage answers, requeue the rest.

        Whatever the expired HIT did collect is merged into each task's
        progress (and paid for — those assignments were approved), gold
        answers still score reputations, and every task that cannot finalize
        from the salvaged answers is re-posted, burning one attempt.  Without
        this hook an expired HIT stranded its tasks and the owning query
        waited forever.
        """
        inflight = self._inflight.get(hit.hit_id)
        if inflight is None or inflight.processed:
            return
        inflight.processed = True
        self._forget_inflight(hit.hit_id, inflight)
        self._settle_hit(hit, inflight, expired=True)

    def _refund_unfilled_slots(
        self, hit: HIT, inflight: _InflightHIT, submissions: list[Assignment]
    ) -> None:
        """Release the committed budget an expired HIT will never collect.

        The platform only pays for submitted assignments; the committed cost
        covered every requested slot.  Returning the difference (split across
        queries in proportion to their original shares) keeps fault re-posts
        from double-billing — without it, an expiry storm could push a
        well-budgeted query into BUDGET_EXCEEDED while spending nothing.
        """
        if inflight.cost_committed <= 0:
            return
        actual = self.platform.pricing.assignment_cost(hit.reward) * len(submissions)
        unspent = inflight.cost_committed - actual
        if unspent <= 0:
            return
        refund_fraction = unspent / inflight.cost_committed
        for query_id, share in inflight.shares.items():
            self.budget.release(query_id, share * refund_fraction)
        self.stats.hit_dollars_refunded += unspent

    def take_exhausted_errors(self) -> dict[str, TaskError]:
        """Drain attempt-cap failures recorded since the last call, by query.

        The engine scheduler polls this (like :meth:`take_budget_errors`) so
        a query whose task ran out of HIT attempts transitions to ``STALLED``
        promptly — with its partial results intact — instead of hanging until
        the whole marketplace runs dry.
        """
        errors, self._exhausted_errors = self._exhausted_errors, {}
        return errors

    # -- scheduler / executor integration -----------------------------------------------

    def set_pressure(self, query_id: str, pressured: bool = True) -> None:
        """Mark (or clear) a query as under deadline/budget pressure.

        Called by the engine scheduler for queries that opted into
        ``shed_under_pressure``: while marked, the query's waves shrink to a
        single assignment, any received answer finalizes, and fault re-posts
        stop after one attempt — trading redundancy for latency instead of
        stalling at the deadline.
        """
        if pressured:
            self._pressured.add(query_id)
        else:
            self._pressured.discard(query_id)

    def pending_tasks(self, query_id: str | None = None) -> int:
        """Tasks queued but not yet posted in a HIT (optionally one query's).

        O(1) either way: both counts are maintained incrementally as tasks
        enter and leave the pending queues.
        """
        if query_id is None:
            return self._pending_total
        return self._pending_by_query.get(query_id, 0)

    def inflight_hits(self, query_id: str | None = None) -> int:
        """HITs posted and awaiting full submission (optionally one query's)."""
        if query_id is None:
            return len(self._inflight)
        return len(self._inflight_by_query.get(query_id, ()))

    def inflight_hits_for_group(self, spec_name: str, kind: TaskKind) -> list[str]:
        """Ids of in-flight HITs carrying one (spec, kind) group's tasks."""
        return sorted(self._inflight_by_group.get((spec_name, kind.value), ()))

    def has_outstanding_work(self) -> bool:
        """Whether any task is still queued or any HIT is still in flight."""
        return self._pending_total > 0 or bool(self._inflight)

    def take_budget_errors(self) -> dict[str, BudgetExceededError]:
        """Drain budget failures recorded since the last call, keyed by query.

        The engine scheduler polls this after every flush so an exhausted
        query can be transitioned to ``BUDGET_EXCEEDED`` (and its remaining
        pending tasks cancelled) without interrupting concurrent queries that
        may share HITs with it.
        """
        errors, self._budget_errors = self._budget_errors, {}
        return errors

    def cancel_query(self, query_id: str) -> int:
        """Drop a finished/failed query's still-pending tasks.

        Returns the number of tasks removed.  HITs already in flight are left
        alone — their cost is committed and their answers still feed the Task
        Cache and statistics, plus any co-batched queries.  The query is also
        remembered as cancelled, so a later fault (an in-flight HIT expiring)
        can never requeue — and re-bill — work on its behalf.
        """
        self._cancelled_queries.add(query_id)
        self._pressured.discard(query_id)
        removed = 0
        if self._pending_by_query.get(query_id, 0):
            # Only the groups this query actually queued into are touched
            # (the per-query group index), not every pending queue.
            for key in self._pending_groups_by_query.get(query_id, ()):
                queue = self._pending.get(key)
                if queue is None:
                    continue
                kept = deque(task for task in queue if task.query_id != query_id)
                for task in queue:
                    if task.query_id == query_id:
                        self._progress.pop(task.task_id, None)
                        self._submitted_at.pop(task.task_id, None)
                dropped = len(queue) - len(kept)
                removed += dropped
                self._pending_total -= dropped
                if kept:
                    self._pending[key] = kept
                else:
                    self._drop_group(key)
            self._pending_by_query[query_id] = 0
        self._pending_groups_by_query.pop(query_id, None)
        return removed

    # -- durability -----------------------------------------------------------

    def state_dict(self) -> dict:
        """Cumulative counters + the cancellation set + the quality stream.

        Pending queues, in-flight HITs and wave progress are *not*
        captured: snapshots are only taken at quiescence (nothing queued,
        nothing in flight — enforced by the engine's checkpoint), so the
        only live state is what accumulates across queries.
        """
        from dataclasses import asdict

        from repro.storage.snapshot import pack_rng_state

        if self.has_outstanding_work():
            raise TaskError("cannot snapshot the Task Manager with work outstanding")
        return {
            "stats": asdict(self.stats),
            "cancelled_queries": sorted(self._cancelled_queries),
            "quality_rng": (
                pack_rng_state(self._quality_rng.getstate())
                if self._quality_rng is not None
                else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.storage.snapshot import unpack_rng_state

        self.stats = TaskManagerStats(**state["stats"])
        self._cancelled_queries = set(state["cancelled_queries"])
        if state["quality_rng"] is not None:
            if self._quality_rng is None:
                raise TaskError(
                    "snapshot has a quality stream but this engine has quality disabled"
                )
            self._quality_rng.setstate(unpack_rng_state(state["quality_rng"]))
