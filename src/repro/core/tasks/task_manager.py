"""The Task Manager (Figure 1).

"The Task Manager maintains a global queue of tasks that have been enqueued
by all operators, and builds an internal representation of the HIT required
to fulfill a task.  The manager takes data from the Statistics Manager to
determine the number of HITs, HIT assignments, and the cost of each task...
As an optimization, the manager can batch several tasks into a single HIT."

Responsibilities implemented here:

* a global pending queue, grouped by (task spec, kind) **across queries** —
  one posted HIT may carry tasks enqueued by several concurrent queries,
  which is what makes the engine-level scheduler's cross-query batching pay
  off (fewer, fuller HITs under concurrent load);
* answer short-circuiting through the Task Cache and the learned Task Model;
* batching pending tasks into HITs via per-group batching policies;
* per-query budget authorisation before any HIT is posted: a shared HIT's
  cost is split across the participating queries in proportion to the tasks
  each contributed, and a query that cannot afford its share is dropped from
  the batch (and reported via :meth:`TaskManager.take_budget_errors`) without
  blocking the other queries;
* collecting submitted assignments, reducing answer lists with the spec's
  combiner, updating the Statistics Manager / Task Model / Task Cache, and
  delivering :class:`~repro.core.tasks.task.TaskResult` to operator callbacks
  — results route back to the submitting operator (and its query's
  statistics) via each task's ``query_id``, so attribution stays per-query
  even inside shared HITs.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.core.answers import AnswerList, get_aggregate
from repro.core.optimizer.budget import BudgetLedger
from repro.core.optimizer.statistics import StatisticsManager
from repro.core.tasks.batching import BatchingPolicy, FixedBatching, NoBatching
from repro.core.tasks.hit_compiler import CompiledHIT, HITCompiler
from repro.core.tasks.spec import TaskSpec
from repro.core.tasks.task import ResultSource, Task, TaskKind, TaskResult
from repro.core.tasks.task_cache import TaskCache
from repro.core.tasks.task_model import LearnedTaskModel, TaskModelRegistry
from repro.crowd.hit import HIT, Assignment
from repro.crowd.mturk import MTurkSimulator
from repro.errors import BudgetExceededError, TaskError

__all__ = ["TaskManagerStats", "TaskManager"]

GroupKey = tuple[str, str]  # (spec name, kind) — shared across queries


@dataclass
class TaskManagerStats:
    """Aggregate counters describing Task Manager activity."""

    tasks_submitted: int = 0
    tasks_completed: int = 0
    cache_answers: int = 0
    model_answers: int = 0
    hits_posted: int = 0
    #: HITs whose task batch mixed two or more queries (cross-query batching).
    cross_query_hits: int = 0
    hit_dollars_committed: float = 0.0
    tasks_dropped_over_budget: int = 0


@dataclass
class _InflightHIT:
    """Bookkeeping for a HIT that has been posted but not fully submitted."""

    compiled: CompiledHIT
    posted_at: float
    cost_committed: float
    processed: bool = False


class TaskManager:
    """Global queue of crowd tasks and the machinery that fulfils them."""

    def __init__(
        self,
        platform: MTurkSimulator,
        statistics: StatisticsManager,
        budget: BudgetLedger,
        *,
        cache: TaskCache | None = None,
        models: TaskModelRegistry | None = None,
        compiler: HITCompiler | None = None,
        default_batching: BatchingPolicy | None = None,
    ) -> None:
        self.platform = platform
        self.statistics = statistics
        self.budget = budget
        self.cache = cache if cache is not None else TaskCache()
        self.models = models if models is not None else TaskModelRegistry()
        self.compiler = compiler if compiler is not None else HITCompiler()
        self.default_batching = default_batching if default_batching is not None else NoBatching()
        self.stats = TaskManagerStats()
        self._pending: dict[GroupKey, deque[Task]] = {}
        self._policies: dict[tuple[str, str], BatchingPolicy] = {}
        self._inflight: dict[str, _InflightHIT] = {}
        self._submitted_at: dict[str, float] = {}
        self._budget_errors: dict[str, BudgetExceededError] = {}
        platform.on_assignment_submitted(self._on_assignment_submitted)

    # -- configuration -------------------------------------------------------------

    def set_batching_policy(self, spec_name: str, kind: TaskKind, policy: BatchingPolicy) -> None:
        """Choose how tasks of one (spec, kind) group are batched into HITs."""
        self._policies[(spec_name, kind.value)] = policy

    def policy_for(self, spec: TaskSpec, kind: TaskKind) -> BatchingPolicy:
        """The batching policy in force for a (spec, kind) group."""
        explicit = self._policies.get((spec.name, kind.value))
        if explicit is not None:
            return explicit
        if spec.batch_size > 1 and kind is not TaskKind.JOIN_BLOCK:
            policy = FixedBatching(spec.batch_size)
            self._policies[(spec.name, kind.value)] = policy
            return policy
        return self.default_batching

    # -- submission ----------------------------------------------------------------

    def submit(self, task: Task) -> None:
        """Accept a task from an operator.

        The task may be answered immediately (cache or model) — in which case
        its callback runs synchronously — or queued for the next HIT batch.
        """
        self.stats.tasks_submitted += 1
        self.statistics.record_task_submitted(task.query_id)
        self._submitted_at[task.task_id] = self.platform.clock.now

        cached = self.cache.lookup(task.spec.name, task.cache_key)
        if cached is not None:
            self.stats.cache_answers += 1
            self._deliver(
                TaskResult(
                    task=task,
                    answers=AnswerList.of(()),
                    reduced=cached.reduced,
                    source=ResultSource.CACHE,
                )
            )
            return

        model = self.models.model_for(task.spec.name)
        if model is not None and task.kind in (TaskKind.FILTER, TaskKind.JOIN_PAIR):
            prediction = model.predict(task)
            if prediction is not None:
                answer, _confidence = prediction
                avoided = self.platform.pricing.assignment_cost(task.price) * task.assignments
                if isinstance(model, LearnedTaskModel):
                    model.record_savings(avoided)
                self.stats.model_answers += 1
                self._deliver(
                    TaskResult(
                        task=task,
                        answers=AnswerList.of(()),
                        reduced=answer,
                        source=ResultSource.MODEL,
                    )
                )
                return

        key: GroupKey = (task.spec.name, task.kind.value)
        self._pending.setdefault(key, deque()).append(task)

    # -- flushing pending tasks into HITs ----------------------------------------------

    def flush(self, *, force: bool = False, raise_on_budget: bool = True) -> int:
        """Turn pending tasks into HITs.  Returns the number of HITs posted.

        ``force`` flushes partially filled batches; the driver (the engine
        scheduler, or a standalone executor) forces a flush once no query can
        make local progress.

        ``raise_on_budget`` controls how a failed budget authorisation
        surfaces: when True (the legacy/standalone behaviour) a batch whose
        tasks all belong to one query raises :class:`BudgetExceededError`;
        when False every failure is recorded per-query and retrievable via
        :meth:`take_budget_errors`, so one exhausted query never aborts a
        flush serving its neighbours.  Batches mixing several queries never
        raise — the unaffordable query's tasks are dropped and the HIT is
        posted for the remaining queries.
        """
        posted = 0
        for key in list(self._pending):
            queue = self._pending[key]
            if not queue:
                continue
            spec = queue[0].spec
            kind = queue[0].kind
            policy = self.policy_for(spec, kind)
            while queue and policy.should_flush(len(queue), force=force):
                size = policy.batch_size(len(queue))
                batch = [queue.popleft() for _ in range(min(size, len(queue)))]
                posted += self._post_batch(batch, raise_on_budget=raise_on_budget)
            if not queue:
                del self._pending[key]
        return posted

    def _post_batch(self, batch: list[Task], *, raise_on_budget: bool = True) -> int:
        if not batch:
            raise TaskError("cannot post an empty batch")
        if batch[0].kind is TaskKind.JOIN_BLOCK:
            posted = 0
            for task in batch:
                posted += self._post_tasks([task], raise_on_budget=raise_on_budget)
            return posted
        return self._post_tasks(batch, raise_on_budget=raise_on_budget)

    def _cost_shares(self, tasks: list[Task]) -> tuple[float, float, float, dict[str, float]]:
        """Reward, assignments, total cost and each query's share for a batch.

        Every assignment answers the whole HIT, so the reward and redundancy
        of the posted HIT are the maxima over the batch; the committed cost is
        split across queries in proportion to each task's *own* intrinsic
        cost (price x redundancy), not the batch maxima — a query batching
        cheap low-redundancy tasks next to an expensive neighbour must not be
        billed at the neighbour's rate.
        """
        reward = max(task.price for task in tasks)
        assignments = max(task.assignments for task in tasks)
        cost = self.platform.pricing.assignment_cost(reward) * assignments
        weights: Counter = Counter()
        for task in tasks:
            weights[task.query_id] += task.price * task.assignments
        total_weight = sum(weights.values())
        shares = {qid: cost * weight / total_weight for qid, weight in weights.items()}
        return reward, assignments, cost, shares

    def _post_tasks(self, tasks: list[Task], *, raise_on_budget: bool) -> int:
        """Authorise, compile and post one batch.  Returns HITs posted (0/1)."""
        single_query_batch = len({task.query_id for task in tasks}) == 1
        # Dropping an unaffordable query shifts its slice of the (fixed) HIT
        # cost onto the survivors, so re-check affordability to a fixed point
        # before authorising anything — authorize below must never raise.
        while True:
            reward, assignments, cost, shares = self._cost_shares(tasks)
            unaffordable: set[str] = set()
            for query_id in shares:
                if not self.budget.would_exceed(query_id, shares[query_id]):
                    continue
                budget = self.budget.budget(query_id)
                error = BudgetExceededError(
                    f"query {query_id}: posting a {tasks[0].spec.name} HIT share of "
                    f"${shares[query_id]:.2f} would exceed the ${budget.limit or 0.0:.2f} "
                    f"budget (already committed ${budget.committed:.2f})",
                    spent=budget.committed,
                    budget=budget.limit or 0.0,
                    query_id=query_id,
                )
                if raise_on_budget and single_query_batch:
                    raise error
                unaffordable.add(query_id)
                self._budget_errors[query_id] = error
            if not unaffordable:
                break
            self.stats.tasks_dropped_over_budget += sum(
                1 for task in tasks if task.query_id in unaffordable
            )
            tasks = [task for task in tasks if task.query_id not in unaffordable]
            if not tasks:
                return 0
        spec_name = tasks[0].spec.name
        for query_id in shares:
            self.budget.authorize(query_id, shares[query_id], description=f"HIT for {spec_name}")
        compiled = self.compiler.compile(tasks)
        hit = self.platform.create_hit(
            compiled.content,
            reward=reward,
            max_assignments=assignments,
            requester_annotation=spec_name,
        )
        self.stats.hits_posted += 1
        if len(shares) > 1:
            self.stats.cross_query_hits += 1
        self.stats.hit_dollars_committed += cost
        self.statistics.record_hit_posted(spec_name, compiled.query_ids())
        self._inflight[hit.hit_id] = _InflightHIT(
            compiled=compiled,
            posted_at=self.platform.clock.now,
            cost_committed=cost,
        )
        return 1

    # -- completion handling ---------------------------------------------------------

    def _on_assignment_submitted(self, hit: HIT, assignment: Assignment) -> None:
        inflight = self._inflight.get(hit.hit_id)
        if inflight is None or inflight.processed:
            return
        self.statistics.record_worker_assignment(assignment.worker_id)
        if hit.is_fully_submitted:
            inflight.processed = True
            self._process_completed_hit(hit, inflight)
            del self._inflight[hit.hit_id]

    def _process_completed_hit(self, hit: HIT, inflight: _InflightHIT) -> None:
        compiled = inflight.compiled
        submissions = hit.submitted_assignments
        per_task_answers: dict[str, list] = {task.task_id: [] for task in compiled.tasks}
        per_task_workers: dict[str, list[str]] = {task.task_id: [] for task in compiled.tasks}
        for assignment in submissions:
            extracted = compiled.extract_answers(assignment)
            for task_id, answer in extracted.items():
                per_task_answers[task_id].append(answer)
                per_task_workers[task_id].append(assignment.worker_id)

        actual_cost = self.platform.pricing.assignment_cost(hit.reward) * len(submissions)
        # Attribute actual spend the same way commitments were authorised:
        # in proportion to each task's intrinsic cost (price x redundancy).
        total_weight = sum(task.price * task.assignments for task in compiled.tasks) or 1.0
        now = self.platform.clock.now

        for task in compiled.tasks:
            cost_per_task = actual_cost * task.price * task.assignments / total_weight
            answers = AnswerList.of(per_task_answers[task.task_id], per_task_workers[task.task_id])
            if len(answers) == 0:
                # Every worker skipped this item; treat as an unanswered task.
                continue
            reduced = self._reduce(task, answers)
            self._record_votes(answers, reduced)
            latency = now - self._submitted_at.get(task.task_id, inflight.posted_at)
            result = TaskResult(
                task=task,
                answers=answers,
                reduced=reduced,
                source=ResultSource.CROWD,
                cost=cost_per_task,
                latency=latency,
                hit_id=hit.hit_id,
            )
            self.cache.store(
                task.spec.name, task.cache_key, reduced, cost=cost_per_task, now=now
            )
            model = self.models.model_for(task.spec.name)
            if model is not None and task.kind in (TaskKind.FILTER, TaskKind.JOIN_PAIR):
                model.observe(task, reduced)
            self._deliver(result)

    def _reduce(self, task: Task, answers: AnswerList):
        if task.kind is TaskKind.JOIN_BLOCK:
            return self._majority_pairs(answers)
        combiner = get_aggregate(task.spec.combiner)
        return combiner(answers)

    @staticmethod
    def _majority_pairs(answers: AnswerList) -> list[tuple[int, int]]:
        """Keep the (left, right) pairs reported by a majority of workers."""
        counts: Counter = Counter()
        for answer in answers:
            for pair in answer:
                counts[tuple(pair)] += 1
        threshold = len(answers) / 2.0
        return sorted(pair for pair, votes in counts.items() if votes > threshold)

    def _record_votes(self, answers: AnswerList, reduced) -> None:
        if not answers.worker_ids:
            return
        for answer, worker_id in zip(answers.answers, answers.worker_ids):
            self.statistics.record_vote(worker_id, answer == reduced)

    def _deliver(self, result: TaskResult) -> None:
        self.stats.tasks_completed += 1
        self.statistics.record_result(result)
        result.task.callback(result)

    # -- scheduler / executor integration -----------------------------------------------

    def pending_tasks(self, query_id: str | None = None) -> int:
        """Tasks queued but not yet posted in a HIT (optionally one query's)."""
        if query_id is None:
            return sum(len(queue) for queue in self._pending.values())
        return sum(
            1 for queue in self._pending.values() for task in queue if task.query_id == query_id
        )

    def inflight_hits(self) -> int:
        """HITs posted and awaiting full submission."""
        return len(self._inflight)

    def has_outstanding_work(self) -> bool:
        """Whether any task is still queued or any HIT is still in flight."""
        return self.pending_tasks() > 0 or self.inflight_hits() > 0

    def take_budget_errors(self) -> dict[str, BudgetExceededError]:
        """Drain budget failures recorded since the last call, keyed by query.

        The engine scheduler polls this after every flush so an exhausted
        query can be transitioned to ``BUDGET_EXCEEDED`` (and its remaining
        pending tasks cancelled) without interrupting concurrent queries that
        may share HITs with it.
        """
        errors, self._budget_errors = self._budget_errors, {}
        return errors

    def cancel_query(self, query_id: str) -> int:
        """Drop a finished/failed query's still-pending tasks.

        Returns the number of tasks removed.  HITs already in flight are left
        alone — their cost is committed and their answers still feed the Task
        Cache and statistics, plus any co-batched queries.
        """
        removed = 0
        for key in list(self._pending):
            queue = self._pending[key]
            kept = deque(task for task in queue if task.query_id != query_id)
            removed += len(queue) - len(kept)
            if kept:
                self._pending[key] = kept
            else:
                del self._pending[key]
        return removed
