"""The task layer: Task Manager, HIT Compiler, Task Cache and Task Model.

This package implements the middle boxes of Figure 1 — everything between the
query operators and the (simulated) MTurk platform.
"""

from repro.core.tasks.batching import (
    AdaptiveBatching,
    BatchingPolicy,
    FixedBatching,
    NoBatching,
    batches_of,
)
from repro.core.tasks.hit_compiler import CompiledHIT, HITCompiler
from repro.core.tasks.spec import (
    ComparisonResponse,
    FormResponse,
    JoinColumnsResponse,
    Parameter,
    RatingResponse,
    ResponseSpec,
    ReturnField,
    TaskSpec,
    TaskType,
    YesNoResponse,
)
from repro.core.tasks.task import ResultSource, Task, TaskKind, TaskResult, new_task_id
from repro.core.tasks.task_cache import CacheEntry, CacheStats, TaskCache
from repro.core.tasks.task_manager import TaskManager, TaskManagerStats
from repro.core.tasks.task_model import (
    LearnedTaskModel,
    ModelStats,
    TaskModel,
    TaskModelRegistry,
)

__all__ = [
    "TaskSpec",
    "TaskType",
    "ResponseSpec",
    "FormResponse",
    "YesNoResponse",
    "JoinColumnsResponse",
    "ComparisonResponse",
    "RatingResponse",
    "Parameter",
    "ReturnField",
    "Task",
    "TaskKind",
    "TaskResult",
    "ResultSource",
    "new_task_id",
    "TaskCache",
    "CacheEntry",
    "CacheStats",
    "TaskModel",
    "LearnedTaskModel",
    "TaskModelRegistry",
    "ModelStats",
    "HITCompiler",
    "CompiledHIT",
    "BatchingPolicy",
    "NoBatching",
    "FixedBatching",
    "AdaptiveBatching",
    "batches_of",
    "TaskManager",
    "TaskManagerStats",
]
